//! Quickstart: simulate one benchmark on three instruction-queue designs
//! and compare them.
//!
//! ```text
//! cargo run --release --example quickstart [bench] [insts]
//! ```

use chainiq::{run_one, Bench, IqKind, PrescheduleConfig, SegmentedIqConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .map(|s| Bench::from_name(&s).unwrap_or_else(|bad| panic!("unknown benchmark `{bad}`")))
        .unwrap_or(Bench::Swim);
    let insts: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);

    println!("benchmark: {bench}, {insts} committed instructions per run\n");

    let configs: Vec<(&str, IqKind, bool, bool)> = vec![
        ("ideal 32-entry IQ (realizable baseline)", IqKind::Ideal(32), false, false),
        ("ideal 512-entry IQ (unrealizable upper bound)", IqKind::Ideal(512), false, false),
        (
            "segmented 512-entry IQ, 128 chains, HMP+LRP",
            IqKind::Segmented(SegmentedIqConfig::paper(512, Some(128))),
            true,
            true,
        ),
        (
            "prescheduled IQ, 120x12 array + 32 buffer",
            IqKind::Prescheduled(PrescheduleConfig::paper(120)),
            false,
            false,
        ),
    ];

    let mut results = Vec::new();
    for (label, kind, hmp, lrp) in configs {
        let r = run_one(bench.profile(), kind, hmp, lrp, insts, 42);
        println!(
            "{label:52} IPC {:.3}   (bp {:.1}%, L1d miss {:.1}%)",
            r.ipc(),
            100.0 * r.stats.branch_accuracy(),
            100.0 * r.stats.l1d_miss_ratio(),
        );
        results.push((label, r));
    }

    let small = results[0].1.ipc();
    let ideal = results[1].1.ipc();
    let seg = results[2].1.ipc();
    println!();
    println!(
        "the 512-entry window buys {:+.0}% over a 32-entry conventional queue;",
        100.0 * (ideal / small - 1.0)
    );
    println!(
        "the segmented dependence-chain queue keeps {:.0}% of that ideal-queue",
        100.0 * seg / ideal
    );
    println!("performance while clocking like a 32-entry queue (the paper's thesis).");

    if let Some(segstats) = &results[2].1.segmented {
        println!(
            "\nchain machinery: {:.0} chains live on average (peak {}), {} promotions,",
            segstats.chains.mean_live(),
            segstats.chains.peak_live,
            segstats.promotions
        );
        println!(
            "{} pushdowns, {} deadlock-recovery cycles ({:.3}% of cycles)",
            segstats.pushdowns,
            segstats.deadlock_cycles,
            100.0 * segstats.deadlock_cycle_frac()
        );
    }
}
