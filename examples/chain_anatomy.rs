//! Anatomy of a dependence chain: the paper's Figure 1, live.
//!
//! Drives a small segmented queue directly (no pipeline) with the
//! 9-instruction example of Figure 1, prints each instruction's delay
//! value at dispatch — matching the figure exactly — and then steps the
//! queue cycle by cycle, showing instructions promoting toward the issue
//! buffer and issuing as their chains resolve.
//!
//! ```text
//! cargo run --release --example chain_anatomy
//! ```

use chainiq::core::{
    DispatchInfo, FuPool, InstTag, IssueQueue, SegmentedIq, SegmentedIqConfig, SrcOperand,
};
use chainiq::{ArchReg, OpClass};

fn dep(reg: ArchReg, producer: u64) -> SrcOperand {
    SrcOperand { reg, producer: Some(InstTag(producer)), known_ready_at: None }
}

fn main() {
    // Three segments (thresholds 2, 4, 6), as in Figure 1(b); the
    // figure's delay values assume pure dataflow estimates, so the
    // descent refinement is off.
    let mut iq = SegmentedIq::new(SegmentedIqConfig {
        num_segments: 3,
        segment_size: 16,
        promote_width: 8,
        max_chains: None,
        pushdown: false,
        bypass: false,
        two_chain_tracking: true,
        deadlock_recovery: true,
        predicted_load_latency: 4,
        countdown_includes_descent: false,
    });

    let r = ArchReg::int;
    let add = OpClass::IntAlu; // 1-cycle, like the figure's ADD
    let mul = OpClass::FpAdd; // 2-cycle, like the figure's MUL

    // The figure's code sequence. Operands marked `*` are available.
    let program: Vec<(&str, DispatchInfo)> = vec![
        ("i0: add *,*  -> r1", DispatchInfo::compute(InstTag(0), add, r(1), &[])),
        ("i1: mul *,*  -> r2", DispatchInfo::compute(InstTag(1), mul, r(2), &[])),
        ("i2: add r2,* -> r4", DispatchInfo::compute(InstTag(2), add, r(4), &[dep(r(2), 1)])),
        ("i3: mul r4,* -> r6", DispatchInfo::compute(InstTag(3), mul, r(6), &[dep(r(4), 2)])),
        ("i4: mul r6,* -> r8", DispatchInfo::compute(InstTag(4), mul, r(8), &[dep(r(6), 3)])),
        ("i5: add r1,* -> r3", DispatchInfo::compute(InstTag(5), add, r(3), &[dep(r(1), 0)])),
        ("i6: add r3,* -> r5", DispatchInfo::compute(InstTag(6), add, r(5), &[dep(r(3), 5)])),
        ("i7: add r5,* -> r7", DispatchInfo::compute(InstTag(7), add, r(7), &[dep(r(5), 6)])),
        (
            "i8: add r6,r7 -> r9",
            DispatchInfo::compute(InstTag(8), add, r(9), &[dep(r(6), 3), dep(r(7), 7)]),
        ),
    ];

    println!("Figure 1(a): delay values assigned at dispatch\n");
    println!("{:24} delay", "instruction");
    for (text, info) in &program {
        let tag = info.tag;
        iq.dispatch(0, *info).expect("queue has space");
        println!("{:24} {}", text, iq.delay_of(tag).expect("just dispatched"));
    }

    println!("\nFigure 1(b): instructions promote toward segment 0 as delays fall\n");
    let mut fus = FuPool::table1();
    let names: Vec<&str> = program.iter().map(|(t, _)| *t).collect();
    for now in 1..=12u64 {
        iq.tick(now, false);
        let issued = iq.select_issue(now, &mut fus);
        for sel in &issued {
            // Announce fixed-latency completions so dependents wake.
            iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
            iq.on_writeback(sel.tag);
        }
        fus.next_cycle();

        let mut placement = vec![String::new(); 3];
        for (i, _) in names.iter().enumerate() {
            if let Some(seg) = iq.segment_of(InstTag(i as u64)) {
                let d = iq.delay_of(InstTag(i as u64)).unwrap();
                placement[seg].push_str(&format!("i{i}(d{d}) "));
            }
        }
        let issued_str: Vec<String> = issued.iter().map(|s| format!("i{}", s.tag.0)).collect();
        println!(
            "cycle {now:>2}  seg2 [{}]  seg1 [{}]  seg0 [{}]  issued: {}",
            placement[2].trim_end(),
            placement[1].trim_end(),
            placement[0].trim_end(),
            if issued_str.is_empty() { "-".to_string() } else { issued_str.join(" ") },
        );
        if iq.is_empty() {
            println!("\nqueue drained after {now} cycles.");
            break;
        }
    }
}
