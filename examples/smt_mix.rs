//! Run a mix of workloads as SMT threads over one shared segmented
//! queue — the §7 study, interactively.
//!
//! ```text
//! cargo run --release --example smt_mix [bench[,bench...]] [insts]
//! e.g.  cargo run --release --example smt_mix swim,gcc 60000
//! ```

use chainiq::core::{SegmentedIq, SegmentedIqConfig};
use chainiq::{AddressSpace, Bench, IdealIq, SimConfig, SmtPipeline, SyntheticWorkload};

// Keep thread contexts from aliasing onto the same predictor slots.
const STRIDE: u64 = (1 << 40) | 0x94_530;

fn threads(mix: &[Bench], seed: u64) -> Vec<AddressSpace<SyntheticWorkload>> {
    mix.iter()
        .enumerate()
        .map(|(t, b)| {
            AddressSpace::new(
                SyntheticWorkload::from_profile(b.profile(), seed + t as u64),
                t as u64 * STRIDE,
                t as u64 * STRIDE,
            )
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mix: Vec<Bench> = args
        .next()
        .unwrap_or_else(|| "swim,gcc".to_string())
        .split(',')
        .map(|s| {
            Bench::from_name(s.trim()).unwrap_or_else(|bad| panic!("unknown benchmark `{bad}`"))
        })
        .collect();
    let insts: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let names: Vec<&str> = mix.iter().map(|b| b.name()).collect();

    println!("SMT mix: {} ({insts} total committed instructions)\n", names.join(" + "));

    // Ideal shared queue.
    let cfg = SimConfig::default().rob_for_iq(512);
    let mut ideal = SmtPipeline::new(cfg, IdealIq::new(512), threads(&mix, 7));
    let si = ideal.run(insts);

    // Segmented shared queue, comb predictors, 128 chains.
    let mut cfg = SimConfig::default().rob_for_iq(512).with_extra_dispatch_cycle();
    cfg.use_hmp = true;
    cfg.use_lrp = true;
    let mut qc = SegmentedIqConfig::paper(512, Some(128));
    qc.two_chain_tracking = false;
    let mut seg = SmtPipeline::new(cfg, SegmentedIq::new(qc), threads(&mix, 7));
    let ss = seg.run(insts);

    println!("{:24} {:>10} {:>12}", "", "ideal-512", "segmented-512");
    println!("{:24} {:>10.3} {:>12.3}", "aggregate IPC", si.ipc(), ss.ipc());
    for (t, name) in names.iter().enumerate() {
        println!(
            "{:24} {:>10} {:>12}",
            format!("thread {t} ({name}) commits"),
            ideal.committed_of(t),
            seg.committed_of(t),
        );
    }
    let chains = seg.iq().full_stats().chains;
    println!(
        "\nsegmented queue: {:.0} chains live on average (peak {}), retention {:.0}%",
        chains.mean_live(),
        chains.peak_live,
        100.0 * ss.ipc() / si.ipc(),
    );
    println!("chains from independent threads schedule around each other (§7).");
}
