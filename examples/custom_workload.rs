//! Build a custom synthetic workload and study an IQ design decision.
//!
//! Composes a profile from the kernel building blocks (a sparse gather
//! against a serial pointer chase) and sweeps the number of chain wires
//! to find the knee — the experiment you would run before committing a
//! wire budget in a real design.
//!
//! ```text
//! cargo run --release --example custom_workload [insts]
//! ```

use chainiq::{run_one, IqKind, KernelSpec, Phase, Profile, SegmentedIqConfig};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

fn my_workload() -> Profile {
    Profile::new(
        "sparse-solver",
        vec![
            // A sparse matrix-vector kernel: index loads hit, gathers
            // miss a 16 MB table.
            Phase {
                kernel: KernelSpec::Gather { table_bytes: 16 * MB, index_bytes: KB, fp_ops: 4 },
                burst_iterations: 256,
                weight: 3,
            },
            // A linked-list sweep: serially dependent misses.
            Phase {
                kernel: KernelSpec::PointerChase {
                    nodes: 32 * KB,
                    node_bytes: 64,
                    work_per_hop: 3,
                },
                burst_iterations: 64,
                weight: 1,
            },
            // A hot residual update: resident stencil.
            Phase {
                kernel: KernelSpec::Stencil { taps: 3, working_set: 2 * KB, fp_ops: 3 },
                burst_iterations: 128,
                weight: 2,
            },
        ],
    )
}

fn main() {
    let insts: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60_000);

    println!("custom workload: sparse-solver ({insts} committed instructions per run)\n");
    println!("512-entry segmented IQ, HMP+LRP, sweeping the chain-wire budget:\n");
    println!("{:>8}  {:>7}  {:>12}  {:>14}", "chains", "IPC", "wire stalls", "mean chains");

    let mut best_unlimited = 0.0f64;
    for chains in [None, Some(256), Some(128), Some(64), Some(32), Some(16)] {
        let kind = IqKind::Segmented(SegmentedIqConfig::paper(512, chains));
        let r = run_one(my_workload(), kind, true, true, insts, 99);
        let seg = r.segmented.as_ref().expect("segmented run");
        let label = chains.map(|c| c.to_string()).unwrap_or_else(|| "unlim".into());
        if chains.is_none() {
            best_unlimited = r.ipc();
        }
        println!(
            "{label:>8}  {:>7.3}  {:>12}  {:>14.0}",
            r.ipc(),
            seg.chains.wire_stalls,
            seg.chains.mean_live()
        );
    }
    println!(
        "\nread the knee: the smallest wire budget whose IPC still tracks the\n\
         unlimited configuration ({best_unlimited:.3}) is the one to build."
    );
}
