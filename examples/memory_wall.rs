//! The memory wall, and how much window it takes to climb it.
//!
//! The paper's motivation (§1, §5): FP benchmarks are limited by L2
//! misses, and a large instruction window lets the machine overlap many
//! main-memory accesses. This example sweeps the window size for a
//! memory-bound and a branch-bound workload and prints the contrast —
//! plus what fraction of the ideal window each segmented configuration
//! retains.
//!
//! ```text
//! cargo run --release --example memory_wall [insts]
//! ```

use chainiq::{run_one, Bench, IqKind, SegmentedIqConfig};

const SIZES: [usize; 5] = [32, 64, 128, 256, 512];

fn sweep(bench: Bench, insts: u64) -> Vec<(usize, f64, f64)> {
    SIZES
        .iter()
        .map(|&n| {
            let ideal = run_one(bench.profile(), IqKind::Ideal(n), false, false, insts, 7).ipc();
            let seg = run_one(
                bench.profile(),
                IqKind::Segmented(SegmentedIqConfig::paper(n, Some(128))),
                true,
                true,
                insts,
                7,
            )
            .ipc();
            (n, ideal, seg)
        })
        .collect()
}

fn main() {
    let insts: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60_000);

    for (bench, story) in [
        (Bench::Swim, "memory-bound: every load streams past the L2"),
        (Bench::Gcc, "branch-bound: mispredictions cap the useful window"),
    ] {
        println!("== {bench} ({story}) ==");
        println!(
            "{:>8}  {:>10}  {:>14}  {:>9}",
            "IQ size", "ideal IPC", "segmented IPC", "retained"
        );
        let rows = sweep(bench, insts);
        for (n, ideal, seg) in &rows {
            println!("{n:>8}  {ideal:>10.3}  {seg:>14.3}  {:>8.0}%", 100.0 * seg / ideal);
        }
        let (_, first, _) = rows[0];
        let (_, last, _) = rows[rows.len() - 1];
        println!(
            "window scaling 32 -> 512: {:+.0}% for the ideal queue\n",
            100.0 * (last / first - 1.0)
        );
    }

    println!("the segmented queue turns window size into a wiring-local problem:");
    println!("each 32-entry segment clocks like a 32-entry queue regardless of depth.");
}
