//! Negative-path suite: every malformed, stale, or mismatched checkpoint
//! must surface as a typed [`CkptError`] — never a panic, and never a
//! silent restore of wrong state.
//!
//! Two layers of corpus:
//!
//! * **Committed fixtures** under `tests/fixtures/ckpt/` cover the
//!   layout-independent framing failures (truncation, bad magic, format
//!   version bump, whole-file fingerprint damage). They are byte-exact
//!   files a future format revision must still reject the same way;
//!   regenerate them with
//!   `cargo test --test checkpoint_negative -- --ignored regenerate_fixture_corpus`.
//! * **Runtime corruptions** of freshly written images cover the
//!   layout-dependent failures: bit flips anywhere in the payload, wrong
//!   cache keys, component name/version mismatches, trailing bytes and
//!   restores into differently configured machines.

use std::path::PathBuf;

use chainiq::ckpt::{
    fingerprint, restore_section, save_section, CkptError, CkptHeader, ImageReader, ImageWriter,
    Reader, Snapshot, Writer, FORMAT_VERSION, MAGIC,
};
use chainiq::{Bench, IdealIq, Pipeline, SimConfig, SyntheticWorkload};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/ckpt")
}

/// The committed corpus: file name → the bytes it must contain.
fn fixture_corpus() -> Vec<(&'static str, Vec<u8>)> {
    let empty = Vec::new();
    let truncated_header = MAGIC.to_vec();
    let bad_magic = {
        let mut b = b"NOTACKPT".to_vec();
        b.extend_from_slice(&[0u8; 26]);
        b
    };
    let version_bumped = {
        let mut body = MAGIC.to_vec();
        body.extend_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        body.extend_from_slice(&[0u8; 24]); // header fields, content irrelevant
        let fp = fingerprint(&body);
        body.extend_from_slice(&fp.to_le_bytes());
        body
    };
    let bad_file_fingerprint = {
        let header = CkptHeader { workload_fp: 1, config_hash: 2, warmup: 3 };
        let mut bytes = ImageWriter::new(header).finish();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        bytes
    };
    vec![
        ("empty.ckpt", empty),
        ("truncated-header.ckpt", truncated_header),
        ("bad-magic.ckpt", bad_magic),
        ("version-bumped.ckpt", version_bumped),
        ("bad-file-fingerprint.ckpt", bad_file_fingerprint),
    ]
}

/// Writes the corpus to `tests/fixtures/ckpt/`. Run once (with
/// `-- --ignored`) when the corpus needs regenerating; the committed
/// files are the source of truth the other tests read.
#[test]
#[ignore = "writes the committed fixture corpus; run explicitly"]
fn regenerate_fixture_corpus() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in fixture_corpus() {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}

/// The committed files must match what the corpus builder produces —
/// drift here means the format changed without a [`FORMAT_VERSION`] bump
/// or the fixtures were hand-edited.
#[test]
fn committed_fixtures_match_corpus_builder() {
    for (name, expected) in fixture_corpus() {
        let on_disk = std::fs::read(fixture_dir().join(name))
            .unwrap_or_else(|e| panic!("fixture {name} unreadable ({e}); regenerate the corpus"));
        assert_eq!(on_disk, expected, "fixture {name} drifted from its builder");
    }
}

#[test]
fn fixture_corpus_is_rejected_with_typed_errors() {
    let expect: &[(&str, fn(&CkptError) -> bool)] = &[
        ("empty.ckpt", |e| matches!(e, CkptError::Truncated { .. })),
        ("truncated-header.ckpt", |e| matches!(e, CkptError::Truncated { .. })),
        ("bad-magic.ckpt", |e| matches!(e, CkptError::BadMagic)),
        (
            "version-bumped.ckpt",
            |e| matches!(e, CkptError::FormatVersion { found } if *found == FORMAT_VERSION + 1),
        ),
        (
            "bad-file-fingerprint.ckpt",
            |e| matches!(e, CkptError::FingerprintMismatch { context } if context == "file"),
        ),
    ];
    for (name, is_expected) in expect {
        let bytes = std::fs::read(fixture_dir().join(name)).unwrap();
        match ImageReader::parse(&bytes) {
            Err(e) => assert!(is_expected(&e), "fixture {name}: unexpected error {e}"),
            Ok(_) => panic!("fixture {name} parsed successfully; it must be rejected"),
        }
    }
}

/// A small but real machine image to corrupt.
fn sample_image(header: CkptHeader) -> Vec<u8> {
    let workload = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 5);
    let mut sim = Pipeline::new(SimConfig::default().rob_for_iq(64), IdealIq::new(64), workload);
    let _ = sim.run(500);
    let mut image = ImageWriter::new(header);
    image.section(&sim);
    image.finish()
}

fn try_restore(bytes: &[u8], header: CkptHeader) -> Result<(), CkptError> {
    let workload = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 5);
    let mut sim = Pipeline::new(SimConfig::default().rob_for_iq(64), IdealIq::new(64), workload);
    let mut img = ImageReader::parse(bytes)?;
    img.expect_key(header)?;
    img.section(&mut sim)?;
    img.finish()
}

#[test]
fn pristine_sample_image_restores() {
    let header = CkptHeader { workload_fp: 10, config_hash: 20, warmup: 500 };
    let bytes = sample_image(header);
    try_restore(&bytes, header).expect("the uncorrupted image must restore");
}

/// Bit flips at positions spread across the whole image — header,
/// section framing, payload, trailing fingerprint — must all yield a
/// typed error, never a panic and never an `Ok`.
#[test]
fn bit_flips_anywhere_are_rejected() {
    let header = CkptHeader { workload_fp: 10, config_hash: 20, warmup: 500 };
    let pristine = sample_image(header);
    let stride = (pristine.len() / 97).max(1);
    for pos in (0..pristine.len()).step_by(stride) {
        let mut bytes = pristine.clone();
        bytes[pos] ^= 0x40;
        match try_restore(&bytes, header) {
            Err(_) => {}
            Ok(()) => panic!("flip at byte {pos} of {} went undetected", pristine.len()),
        }
    }
}

#[test]
fn truncation_at_any_point_is_rejected() {
    let header = CkptHeader { workload_fp: 10, config_hash: 20, warmup: 500 };
    let pristine = sample_image(header);
    let stride = (pristine.len() / 53).max(1);
    for cut in (0..pristine.len()).step_by(stride) {
        match try_restore(&pristine[..cut], header) {
            Err(_) => {}
            Ok(()) => panic!("truncation to {cut} of {} went undetected", pristine.len()),
        }
    }
}

#[test]
fn wrong_cache_key_is_rejected_per_field() {
    let header = CkptHeader { workload_fp: 10, config_hash: 20, warmup: 500 };
    let bytes = sample_image(header);
    for wrong in [
        CkptHeader { workload_fp: 11, ..header },
        CkptHeader { config_hash: 21, ..header },
        CkptHeader { warmup: 501, ..header },
    ] {
        match try_restore(&bytes, wrong) {
            Err(CkptError::KeyMismatch { .. }) => {}
            other => panic!("expected KeyMismatch for {wrong:?}, got {other:?}"),
        }
    }
}

#[test]
fn restore_into_differently_configured_machine_is_rejected() {
    let header = CkptHeader { workload_fp: 10, config_hash: 20, warmup: 500 };
    let bytes = sample_image(header); // saved from a 64-entry machine
    let workload = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 5);
    let mut sim = Pipeline::new(SimConfig::default().rob_for_iq(128), IdealIq::new(128), workload);
    let mut img = ImageReader::parse(&bytes).unwrap();
    img.expect_key(header).unwrap();
    match img.section(&mut sim) {
        Err(CkptError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt on a config mismatch, got {other:?}"),
    }
}

// Two dummy components sharing a section name at different layout
// versions, to exercise the per-section version gate.
struct DummyV1;
struct DummyV2;

impl Snapshot for DummyV1 {
    const COMPONENT: &'static str = "negative.dummy";
    const VERSION: u16 = 1;
    fn save(&self, w: &mut Writer) {
        w.put_u64(1);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let _ = r.take_u64("dummy payload")?;
        Ok(())
    }
}

impl Snapshot for DummyV2 {
    const COMPONENT: &'static str = "negative.dummy";
    const VERSION: u16 = 2;
    fn save(&self, w: &mut Writer) {
        w.put_u64(2);
    }
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {
        let _ = r.take_u64("dummy payload")?;
        Ok(())
    }
}

#[test]
fn component_version_bump_is_rejected() {
    let mut w = Writer::new();
    save_section(&mut w, &DummyV2);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    match restore_section(&mut r, &mut DummyV1) {
        Err(CkptError::ComponentVersion { component, found, expected }) => {
            assert_eq!(component, "negative.dummy");
            assert_eq!(found, 2);
            assert_eq!(expected, 1);
        }
        other => panic!("expected ComponentVersion, got {other:?}"),
    }
}

#[test]
fn component_name_mismatch_is_rejected() {
    let workload = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 5);
    let mut w = Writer::new();
    save_section(&mut w, &workload);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    match restore_section(&mut r, &mut DummyV1) {
        Err(CkptError::ComponentVersion { .. }) => {}
        other => panic!("expected ComponentVersion on a name mismatch, got {other:?}"),
    }
}

#[test]
fn section_payload_bit_flip_is_a_section_fingerprint_mismatch() {
    let workload = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 5);
    let mut w = Writer::new();
    save_section(&mut w, &workload);
    let mut bytes = w.into_bytes();
    // Flip a byte inside the payload: past the name/version/length
    // framing, before the trailing 8-byte section fingerprint.
    let mid = bytes.len() - 16;
    bytes[mid] ^= 0x01;
    let mut r = Reader::new(&bytes);
    let mut fresh = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 5);
    match restore_section(&mut r, &mut fresh) {
        Err(CkptError::FingerprintMismatch { context }) => assert_ne!(context, "file"),
        other => panic!("expected a section FingerprintMismatch, got {other:?}"),
    }
}

#[test]
fn trailing_bytes_after_last_section_are_rejected() {
    let header = CkptHeader { workload_fp: 10, config_hash: 20, warmup: 500 };
    let workload = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 5);
    let mut image = ImageWriter::new(header);
    image.section(&workload);
    let mut bytes = image.finish();
    // Splice garbage between the last section and the file fingerprint,
    // then re-seal so only the trailing-bytes check can catch it.
    let fp_at = bytes.len() - 8;
    bytes.truncate(fp_at);
    bytes.extend_from_slice(&[0xAB; 5]);
    let fp = fingerprint(&bytes);
    bytes.extend_from_slice(&fp.to_le_bytes());

    let mut img = ImageReader::parse(&bytes).expect("re-sealed image parses");
    let mut fresh = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 5);
    img.section(&mut fresh).expect("the one real section restores");
    match img.finish() {
        Err(CkptError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt on trailing bytes, got {other:?}"),
    }
}
