//! Restore-equals-continuous differential suite for the checkpoint
//! subsystem.
//!
//! The property under test: simulating to a cut point, serializing the
//! machine, restoring the image into a *freshly constructed* machine and
//! continuing must report exactly the statistics of one uninterrupted
//! run. Any divergence means some piece of mutable state escaped the
//! snapshot — the one failure mode a checkpoint cache must never have,
//! because it silently corrupts every warm-started experiment.
//!
//! Component-level suites live next to each component (`chainiq-rng`,
//! `chainiq-workload`, `chainiq-predict`, `chainiq-mem`, `chainiq-core`,
//! `chainiq-baseline`); this file exercises the public seams: the
//! workload generator, the whole-image framing, every queue design under
//! the full pipeline, and the end-to-end cached harness path.

use chainiq::ckpt::{
    restore_section, save_section, CkptHeader, ImageReader, ImageWriter, Reader, Snapshot, Writer,
};
use chainiq::{
    Bench, CkptOutcome, CkptPlan, DistanceConfig, DistanceIq, IdealIq, IqKind, Pipeline,
    PrescheduleConfig, PrescheduledIq, SegmentedIq, SegmentedIqConfig, SimConfig,
    SyntheticWorkload,
};
use chainiq_core::IssueQueue;
use chainiq_devtest::{prop_assert, prop_assert_eq, prop_check};

/// The Table 1 configuration the harness would build for this queue.
fn config_for(capacity: usize, extra_dispatch: bool, use_hmp: bool, use_lrp: bool) -> SimConfig {
    let mut c = SimConfig::default().rob_for_iq(capacity);
    c.extra_dispatch_cycle = extra_dispatch;
    c.use_hmp = use_hmp;
    c.use_lrp = use_lrp;
    c
}

/// Runs one continuous simulation and one snapshot-at-`cut`-then-restore
/// simulation of the same machine, returning both stat renderings.
fn pipeline_digests<Q>(
    make_iq: &dyn Fn() -> Q,
    bench: Bench,
    seed: u64,
    cut: u64,
    total: u64,
    config: SimConfig,
) -> (String, String)
where
    Q: IssueQueue + Snapshot,
{
    let fresh =
        || Pipeline::new(config, make_iq(), SyntheticWorkload::from_profile(bench.profile(), seed));

    let mut continuous = fresh();
    let a = continuous.run(total);

    let mut donor = fresh();
    let _ = donor.run(cut);
    let mut w = Writer::new();
    save_section(&mut w, &donor);
    drop(donor);
    let bytes = w.into_bytes();

    let mut restored = fresh();
    let mut r = Reader::new(&bytes);
    restore_section(&mut r, &mut restored)
        .expect("a snapshot must restore into an identically configured machine");
    let b = restored.run(total);

    (format!("{a:?}"), format!("{b:?}"))
}

prop_check! {
    /// Whole-pipeline differential over every queue design, with random
    /// benchmark, seed, predictor hooks and cut point.
    fn pipeline_restore_equals_continuous(g, cases = 8) {
        let bench = Bench::ALL[g.pick(Bench::ALL.len())];
        let seed = g.any_u64();
        let total = g.u64(1_500..3_000);
        let cut = g.u64(1..total);
        let use_hmp = g.bool();
        let use_lrp = g.bool();
        let (a, b) = match g.pick(4) {
            0 => {
                let cap = [16usize, 64, 256][g.pick(3)];
                let config = config_for(cap, false, use_hmp, use_lrp);
                pipeline_digests(&|| IdealIq::new(cap), bench, seed, cut, total, config)
            }
            1 => {
                let mut qc = SegmentedIqConfig::paper(64, Some(64));
                qc.two_chain_tracking = !use_lrp;
                let config = config_for(qc.capacity(), true, use_hmp, use_lrp);
                pipeline_digests(&|| SegmentedIq::new(qc), bench, seed, cut, total, config)
            }
            2 => {
                let pc = PrescheduleConfig::paper(8);
                let config = config_for(pc.capacity(), true, use_hmp, use_lrp);
                pipeline_digests(&|| PrescheduledIq::new(pc), bench, seed, cut, total, config)
            }
            _ => {
                let dc = DistanceConfig::paper_sized(8);
                let config = config_for(dc.capacity(), true, use_hmp, use_lrp);
                pipeline_digests(&|| DistanceIq::new(dc), bench, seed, cut, total, config)
            }
        };
        prop_assert_eq!(a, b);
    }

    /// The workload generator (profile walker + RNG) restores mid-stream
    /// and continues with the identical instruction sequence.
    fn workload_restore_equals_continuous(g, cases = 24) {
        let bench = Bench::ALL[g.pick(Bench::ALL.len())];
        let seed = g.any_u64();
        let skip = g.usize(0..5_000);

        let mut continuous = SyntheticWorkload::from_profile(bench.profile(), seed);
        for _ in 0..skip {
            let _ = continuous.next();
        }

        let mut w = Writer::new();
        save_section(&mut w, &continuous);
        let bytes = w.into_bytes();
        let mut restored = SyntheticWorkload::from_profile(bench.profile(), seed);
        let mut r = Reader::new(&bytes);
        restore_section(&mut r, &mut restored).expect("workload snapshot must restore");

        for i in 0..200 {
            let a = continuous.next();
            let b = restored.next();
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"), "instruction {} diverged", i);
        }
    }

    /// Whole-image framing: header plus several sections written with
    /// [`ImageWriter`] parse back byte-complete through [`ImageReader`],
    /// and the restored components resume identically.
    fn image_framing_round_trips(g, cases = 16) {
        let bench = Bench::ALL[g.pick(Bench::ALL.len())];
        let seed = g.any_u64();
        let skip = g.usize(0..2_000);
        let header = CkptHeader {
            workload_fp: g.any_u64(),
            config_hash: g.any_u64(),
            warmup: g.u64(0..1_000_000),
        };

        let mut first = SyntheticWorkload::from_profile(bench.profile(), seed);
        let mut second = SyntheticWorkload::from_profile(bench.profile(), seed ^ 1);
        for _ in 0..skip {
            let _ = first.next();
            let _ = second.next();
        }

        let mut image = ImageWriter::new(header);
        image.section(&first);
        image.section(&second);
        let bytes = image.finish();

        let mut img = ImageReader::parse(&bytes).expect("a freshly written image must parse");
        prop_assert_eq!(img.header(), header);
        prop_assert!(img.expect_key(header).is_ok());
        let mut first_r = SyntheticWorkload::from_profile(bench.profile(), seed);
        let mut second_r = SyntheticWorkload::from_profile(bench.profile(), seed ^ 1);
        img.section(&mut first_r).expect("first section must restore");
        img.section(&mut second_r).expect("second section must restore");
        img.finish().expect("no bytes may remain after the last section");

        for _ in 0..50 {
            prop_assert_eq!(format!("{:?}", first.next()), format!("{:?}", first_r.next()));
            prop_assert_eq!(format!("{:?}", second.next()), format!("{:?}", second_r.next()));
        }
    }
}

/// End-to-end cached harness path: a warm-started `run_one_ckpt` reports
/// the same result as a cold `run_one` for every queue design.
#[test]
fn cached_harness_matches_cold_for_every_kind() {
    let dir =
        std::env::temp_dir().join(format!("chainiq-roundtrip-harness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = CkptPlan { dir: dir.clone(), warmup: 800 };
    let kinds = [
        IqKind::Ideal(64),
        IqKind::Segmented(SegmentedIqConfig::paper(64, Some(64))),
        IqKind::Prescheduled(PrescheduleConfig::paper(8)),
        IqKind::Distance(DistanceConfig::paper_sized(8)),
    ];
    for kind in kinds {
        let cold = chainiq::run_one(Bench::Mgrid.profile(), kind, true, false, 2_500, 13);
        let (_, miss) = chainiq::run_one_ckpt(
            Bench::Mgrid.profile(),
            kind,
            true,
            false,
            2_500,
            13,
            Some(&plan),
        );
        assert_eq!(miss, CkptOutcome::MissSaved, "{kind:?}");
        let (warm, hit) = chainiq::run_one_ckpt(
            Bench::Mgrid.profile(),
            kind,
            true,
            false,
            2_500,
            13,
            Some(&plan),
        );
        assert_eq!(hit, CkptOutcome::Hit, "{kind:?}");
        assert_eq!(
            format!("{:?} {:?}", cold.stats, cold.segmented),
            format!("{:?} {:?}", warm.stats, warm.segmented),
            "{kind:?}: warm-started run must match the cold run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
