//! End-to-end integration tests: full pipeline x every queue design x
//! several workloads.

use chainiq::{
    run_one, Bench, IdealIq, IqKind, Pipeline, PrescheduleConfig, SegmentedIqConfig, SimConfig,
    SyntheticWorkload,
};

const SAMPLE: u64 = 8_000;
const SEED: u64 = 1234;

fn every_kind() -> Vec<(&'static str, IqKind)> {
    vec![
        ("ideal-64", IqKind::Ideal(64)),
        ("segmented-64", IqKind::Segmented(SegmentedIqConfig::paper(64, Some(64)))),
        ("segmented-128-unlimited", IqKind::Segmented(SegmentedIqConfig::paper(128, None))),
        ("prescheduled-8", IqKind::Prescheduled(PrescheduleConfig::paper(8))),
    ]
}

#[test]
fn every_design_commits_on_every_benchmark() {
    for bench in Bench::ALL {
        for (label, kind) in every_kind() {
            let r = run_one(bench.profile(), kind, true, true, SAMPLE, SEED);
            assert!(!r.stats.hung, "{bench}/{label} hung");
            assert!(r.stats.committed >= SAMPLE, "{bench}/{label} under-committed");
            assert!(r.ipc() > 0.01, "{bench}/{label} ipc {}", r.ipc());
            assert!(r.ipc() <= 8.0, "{bench}/{label} exceeds machine width");
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let kind = IqKind::Segmented(SegmentedIqConfig::paper(128, Some(64)));
    let a = run_one(Bench::Equake.profile(), kind, true, true, SAMPLE, SEED);
    let b = run_one(Bench::Equake.profile(), kind, true, true, SAMPLE, SEED);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.committed, b.stats.committed);
    assert_eq!(a.stats.mem.l1d, b.stats.mem.l1d);
    let (sa, sb) = (a.segmented.unwrap(), b.segmented.unwrap());
    assert_eq!(sa.chains.allocations, sb.chains.allocations);
    assert_eq!(sa.promotions, sb.promotions);
}

#[test]
fn bigger_ideal_window_never_loses_on_memory_bound_code() {
    let small = run_one(Bench::Swim.profile(), IqKind::Ideal(32), false, false, SAMPLE, SEED);
    let big = run_one(Bench::Swim.profile(), IqKind::Ideal(256), false, false, SAMPLE, SEED);
    assert!(
        big.ipc() > 1.2 * small.ipc(),
        "a 256-entry window must expose swim's memory-level parallelism: {} vs {}",
        big.ipc(),
        small.ipc()
    );
}

#[test]
fn segmented_stays_below_ideal_at_same_size() {
    // The segmented queue adds pipeline depth and restricts issue to
    // segment 0; it cannot beat the single-cycle ideal queue.
    for bench in [Bench::Swim, Bench::Mgrid, Bench::Gcc] {
        let ideal = run_one(bench.profile(), IqKind::Ideal(256), false, false, SAMPLE, SEED);
        let seg = run_one(
            bench.profile(),
            IqKind::Segmented(SegmentedIqConfig::paper(256, Some(128))),
            true,
            true,
            SAMPLE,
            SEED,
        );
        assert!(
            seg.ipc() <= ideal.ipc() * 1.02,
            "{bench}: segmented {} vs ideal {}",
            seg.ipc(),
            ideal.ipc()
        );
        // And it retains a meaningful fraction (the paper band is
        // 55%-98% at 512; small samples are noisier, so be lenient).
        assert!(
            seg.ipc() >= 0.35 * ideal.ipc(),
            "{bench}: segmented {} too far below ideal {}",
            seg.ipc(),
            ideal.ipc()
        );
    }
}

#[test]
fn statistics_are_internally_consistent() {
    let r = run_one(
        Bench::Applu.profile(),
        IqKind::Segmented(SegmentedIqConfig::paper(128, Some(128))),
        true,
        true,
        SAMPLE,
        SEED,
    );
    let s = &r.stats;
    assert!(s.fetched >= s.dispatched, "cannot dispatch more than fetched");
    assert!(s.dispatched >= s.committed, "cannot commit more than dispatched");
    assert!(s.iq.issued >= s.committed, "every committed instruction issued");
    assert!(s.branch_lookups > 0 && s.branch_correct <= s.branch_lookups);
    assert!(s.loads_issued > 0);
    let seg = r.segmented.unwrap();
    assert!(seg.chains.peak_live as u64 >= 1);
    assert!(seg.chains.mean_live() <= seg.chains.peak_live as f64);
}

#[test]
fn generic_pipeline_accepts_boxed_queues() {
    // The harness uses concrete types; the public API also supports
    // dyn-dispatch for runtime-chosen designs.
    let workload = SyntheticWorkload::from_profile(Bench::Twolf.profile(), SEED);
    let boxed: Box<dyn chainiq::IssueQueue> = Box::new(IdealIq::new(64));
    let mut sim = Pipeline::new(SimConfig::default().rob_for_iq(64), boxed, workload);
    let stats = sim.run(2_000);
    assert!(stats.committed >= 2_000);
}

#[test]
fn seeds_change_timing_but_not_sanity() {
    let kind = IqKind::Segmented(SegmentedIqConfig::paper(64, Some(64)));
    let a = run_one(Bench::Gcc.profile(), kind, true, true, SAMPLE, 1);
    let b = run_one(Bench::Gcc.profile(), kind, true, true, SAMPLE, 2);
    assert_ne!(a.stats.cycles, b.stats.cycles, "different seeds, different streams");
    let ratio = a.ipc() / b.ipc();
    assert!((0.5..2.0).contains(&ratio), "seed variance should be bounded: {ratio}");
}

#[test]
fn smt_threads_share_a_segmented_queue() {
    use chainiq::core::{SegmentedIq, SegmentedIqConfig};
    use chainiq::{AddressSpace, SmtPipeline};

    const STRIDE: u64 = (1 << 40) | 0x94_530;
    let workloads: Vec<_> = (0..2u64)
        .map(|t| {
            AddressSpace::new(
                SyntheticWorkload::from_profile(Bench::Ammp.profile(), SEED + t),
                t * STRIDE,
                t * STRIDE,
            )
        })
        .collect();
    let mut cfg = SimConfig::default().rob_for_iq(256).with_extra_dispatch_cycle();
    cfg.use_hmp = true;
    let qc = SegmentedIqConfig::paper(256, Some(128));
    let mut smt = SmtPipeline::new(cfg, SegmentedIq::new(qc), workloads);
    let s = smt.run(SAMPLE);
    assert!(!s.hung);
    assert!(s.committed >= SAMPLE);
    assert!(smt.committed_of(0) > SAMPLE / 10);
    assert!(smt.committed_of(1) > SAMPLE / 10);
}

#[test]
fn circuit_model_ranks_designs_as_the_paper_argues() {
    use chainiq::{QueueGeometry, Technology};
    let tech = Technology::default();
    // The segmented 512 clocks near a 32-entry queue; with the measured
    // retention band (55-98% of ideal IPC) it wins the BIPS comparison.
    let seg = QueueGeometry::segmented(512, 32, 8);
    let mono512 = QueueGeometry::monolithic(512, 8);
    assert!(tech.clock_ghz(seg) > 5.0 * tech.clock_ghz(mono512));
}

#[test]
fn power_model_accounts_a_real_run() {
    use chainiq::EnergyModel;
    let r = run_one(
        Bench::Mgrid.profile(),
        IqKind::Segmented(SegmentedIqConfig::paper(256, Some(128))),
        true,
        true,
        SAMPLE,
        SEED,
    );
    let seg = r.segmented.unwrap();
    let model = EnergyModel::default();
    let e = model.segmented_energy(&seg);
    assert!(e.total_pj() > 0.0);
    assert!(e.copies_pj > 0.0, "promotions must show up as copy energy");
    assert!(e.per_instruction_pj(r.stats.committed) > 0.0);
    // Energy components are all non-negative and sum to the total.
    let sum = e.dispatch_pj
        + e.copies_pj
        + e.cam_pj
        + e.delay_compare_pj
        + e.select_pj
        + e.wires_pj
        + e.clock_pj;
    assert!((sum - e.total_pj()).abs() < 1e-6);
}
