//! Fast, directional versions of the paper's headline experimental
//! claims — the same comparisons the `chainiq-bench` binaries print at
//! full scale, checked at small scale so CI guards the result shapes.

use chainiq::{run_one, Bench, IqKind, PrescheduleConfig, SegmentedIqConfig};

const SAMPLE: u64 = 20_000;
const SEED: u64 = 20020525;

fn seg(entries: usize, chains: Option<usize>) -> IqKind {
    IqKind::Segmented(SegmentedIqConfig::paper(entries, chains))
}

/// Figure 2, column structure: a 512-entry segmented queue retains most
/// of the ideal queue's performance.
#[test]
fn fig2_segmented_within_band_of_ideal() {
    let mut ratios = Vec::new();
    for bench in [Bench::Mgrid, Bench::Swim, Bench::Vortex] {
        let ideal = run_one(bench.profile(), IqKind::Ideal(512), false, false, SAMPLE, SEED);
        let s = run_one(bench.profile(), seg(512, None), false, false, SAMPLE, SEED);
        let ratio = s.ipc() / ideal.ipc();
        assert!((0.4..=1.02).contains(&ratio), "{bench}: ratio {ratio:.2} out of band");
        ratios.push(ratio);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg > 0.6, "average retention {avg:.2} too low");
}

/// Figure 2: swim starves on 64 chain wires in the base configuration,
/// and the left/right predictor recovers much of the loss.
#[test]
fn fig2_swim_is_chain_starved_and_lrp_recovers() {
    let unlimited = run_one(Bench::Swim.profile(), seg(512, None), false, false, SAMPLE, SEED);
    let starved = run_one(Bench::Swim.profile(), seg(512, Some(64)), false, false, SAMPLE, SEED);
    let lrp = run_one(Bench::Swim.profile(), seg(512, Some(64)), false, true, SAMPLE, SEED);
    assert!(
        starved.ipc() < 0.8 * unlimited.ipc(),
        "64 wires must hurt swim: {} vs {}",
        starved.ipc(),
        unlimited.ipc()
    );
    assert!(
        lrp.ipc() > 1.15 * starved.ipc(),
        "LRP must recover chain-starved swim: {} vs {}",
        lrp.ipc(),
        starved.ipc()
    );
}

/// Table 2: the left/right predictor reduces chain usage by roughly half
/// (the paper reports 58% on average).
#[test]
fn table2_lrp_halves_chain_usage() {
    let base = run_one(Bench::Swim.profile(), seg(512, None), false, false, SAMPLE, SEED);
    let lrp = run_one(Bench::Swim.profile(), seg(512, None), false, true, SAMPLE, SEED);
    let b = base.segmented.unwrap().chains.mean_live();
    let l = lrp.segmented.unwrap().chains.mean_live();
    assert!(l < 0.6 * b, "LRP should cut swim's chain usage roughly in half: {l:.0} vs {b:.0}");
}

/// Table 2 / §4.4: the hit/miss predictor suppresses chains where loads
/// hit (mgrid), and cannot help where they all miss (swim).
#[test]
fn table2_hmp_suppresses_hit_load_chains() {
    let mgrid_base = run_one(Bench::Mgrid.profile(), seg(512, None), false, false, SAMPLE, SEED);
    let mgrid_hmp = run_one(Bench::Mgrid.profile(), seg(512, None), true, false, SAMPLE, SEED);
    let mb = mgrid_base.segmented.unwrap().chains.mean_live();
    let mh = mgrid_hmp.segmented.unwrap().chains.mean_live();
    assert!(mh < 0.85 * mb, "HMP should cut mgrid chains: {mh:.0} vs {mb:.0}");

    let swim_base = run_one(Bench::Swim.profile(), seg(512, None), false, false, SAMPLE, SEED);
    let swim_hmp = run_one(Bench::Swim.profile(), seg(512, None), true, false, SAMPLE, SEED);
    let sb = swim_base.segmented.unwrap().chains.mean_live();
    let sh = swim_hmp.segmented.unwrap().chains.mean_live();
    assert!(
        sh > 0.9 * sb,
        "swim's loads all miss, so the HMP must not change its chains: {sh:.0} vs {sb:.0}"
    );
}

/// §6.1: the HMP predicts hits with high accuracy and good coverage.
#[test]
fn s1_hmp_accuracy_and_coverage() {
    let r = run_one(Bench::Mgrid.profile(), seg(512, None), true, false, SAMPLE, SEED);
    assert!(r.stats.hmp.hit_accuracy() > 0.9, "accuracy {:.3}", r.stats.hmp.hit_accuracy());
    assert!(r.stats.hmp.hit_coverage() > 0.7, "coverage {:.3}", r.stats.hmp.hit_coverage());
}

/// Figure 3: gcc gains little from window scaling (its useful window is
/// misprediction-bound), while swim gains a lot.
#[test]
fn fig3_gcc_flat_swim_steep() {
    let gcc_small = run_one(Bench::Gcc.profile(), IqKind::Ideal(32), false, false, SAMPLE, SEED);
    let gcc_big = run_one(Bench::Gcc.profile(), IqKind::Ideal(512), false, false, SAMPLE, SEED);
    let swim_small = run_one(Bench::Swim.profile(), IqKind::Ideal(32), false, false, SAMPLE, SEED);
    let swim_big = run_one(Bench::Swim.profile(), IqKind::Ideal(512), false, false, SAMPLE, SEED);
    let gcc_gain = gcc_big.ipc() / gcc_small.ipc();
    let swim_gain = swim_big.ipc() / swim_small.ipc();
    assert!(gcc_gain < 1.6, "gcc should be nearly flat, gain {gcc_gain:.2}");
    assert!(swim_gain > 2.0, "swim should scale steeply, gain {swim_gain:.2}");
    assert!(swim_gain > gcc_gain * 1.5);
}

/// Figure 3: the prescheduling scheme barely improves with array size
/// (vortex excepted in the paper), while the segmented queue keeps
/// scaling.
#[test]
fn fig3_prescheduled_flat_segmented_scales() {
    let p_small = run_one(
        Bench::Swim.profile(),
        IqKind::Prescheduled(PrescheduleConfig::paper(8)),
        false,
        false,
        SAMPLE,
        SEED,
    );
    let p_big = run_one(
        Bench::Swim.profile(),
        IqKind::Prescheduled(PrescheduleConfig::paper(120)),
        false,
        false,
        SAMPLE,
        SEED,
    );
    let s_big = run_one(Bench::Swim.profile(), seg(512, Some(128)), true, true, SAMPLE, SEED);
    let presched_gain = p_big.ipc() / p_small.ipc();
    assert!(presched_gain < 1.4, "prescheduling shouldn't scale much: {presched_gain:.2}");
    assert!(
        s_big.ipc() > 1.4 * p_big.ipc(),
        "the 512-entry segmented queue must outrun the largest prescheduling array: {} vs {}",
        s_big.ipc(),
        p_big.ipc()
    );
}

/// §4.5: deadlock recovery engages rarely in sane configurations.
#[test]
fn s2_deadlock_recovery_is_rare() {
    let r = run_one(Bench::Applu.profile(), seg(512, Some(128)), true, true, SAMPLE, SEED);
    let frac = r.segmented.unwrap().deadlock_cycle_frac();
    assert!(frac < 0.05, "deadlock recovery in {:.2}% of cycles", 100.0 * frac);
}
