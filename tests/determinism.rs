//! Regression tests pinning bit-for-bit determinism: two identical runs
//! must agree on *every* statistic, not just the headline counters.
//!
//! The simulator's collections are all ordered (`BTreeMap`/`Vec`) —
//! enforced by `chainiq-analyze` rule D1 — so any divergence here means
//! an iteration-order or hidden-input dependence crept back in.
//! `SimStats` does not implement `PartialEq` (it carries derived floats),
//! so the runs are compared through their full `Debug` rendering, which
//! covers every field including the nested memory and queue sections.

use chainiq::core::{SegmentedIq, SegmentedIqConfig};
use chainiq::{
    run_one, AddressSpace, Bench, IqKind, PrescheduleConfig, SimConfig, SmtPipeline,
    SyntheticWorkload,
};

const SAMPLE: u64 = 10_000;
const SEED: u64 = 977;

fn seg_kind() -> IqKind {
    IqKind::Segmented(SegmentedIqConfig::paper(128, Some(64)))
}

#[test]
fn full_stats_identical_across_reruns_segmented() {
    let a = run_one(Bench::Equake.profile(), seg_kind(), true, true, SAMPLE, SEED);
    let b = run_one(Bench::Equake.profile(), seg_kind(), true, true, SAMPLE, SEED);
    assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
    assert_eq!(format!("{:?}", a.segmented), format!("{:?}", b.segmented));
}

#[test]
fn full_stats_identical_across_reruns_prescheduled() {
    let kind = IqKind::Prescheduled(PrescheduleConfig::paper(8));
    let a = run_one(Bench::Gcc.profile(), kind, true, false, SAMPLE, SEED);
    let b = run_one(Bench::Gcc.profile(), kind, true, false, SAMPLE, SEED);
    assert_eq!(format!("{:?}", a.stats), format!("{:?}", b.stats));
}

#[test]
fn full_stats_identical_across_reruns_smt() {
    let run = || {
        const STRIDE: u64 = (1 << 40) | 0x94_530;
        let workloads: Vec<_> = (0..2u64)
            .map(|t| {
                AddressSpace::new(
                    SyntheticWorkload::from_profile(Bench::Ammp.profile(), SEED + t),
                    t * STRIDE,
                    t * STRIDE,
                )
            })
            .collect();
        let mut cfg = SimConfig::default().rob_for_iq(256).with_extra_dispatch_cycle();
        cfg.use_hmp = true;
        let qc = SegmentedIqConfig::paper(256, Some(128));
        let mut smt = SmtPipeline::new(cfg, SegmentedIq::new(qc), workloads);
        let stats = smt.run(SAMPLE);
        (format!("{stats:?}"), smt.committed_of(0), smt.committed_of(1))
    };
    assert_eq!(run(), run());
}
