//! Degenerate-configuration equivalences the paper asserts.

use chainiq::core::{
    DispatchInfo, FuPool, InstTag, IssueQueue, SegmentedIq, SegmentedIqConfig, SrcOperand,
};
use chainiq::{run_one, ArchReg, Bench, IdealIq, IqKind, OpClass};

/// §6.3: "At an IQ size of 32 entries, our scheme degenerates to a single
/// segment, and is thus equivalent to the conventional IQ." (Modulo the
/// extra dispatch-stage cycle charged to the segmented design.)
#[test]
fn single_segment_tracks_ideal_32() {
    for bench in [Bench::Vortex, Bench::Swim, Bench::Gcc] {
        let ideal = run_one(bench.profile(), IqKind::Ideal(32), false, false, 6_000, 3);
        let seg = run_one(
            bench.profile(),
            IqKind::Segmented(SegmentedIqConfig::paper(32, Some(64))),
            true,
            true,
            6_000,
            3,
        );
        let ratio = seg.ipc() / ideal.ipc();
        assert!(
            (0.85..=1.02).contains(&ratio),
            "{bench}: 32-entry segmented should track ideal-32, ratio {ratio:.3}"
        );
    }
}

/// Both designs, driven identically at the unit level, issue the same
/// instructions for a dependence chain (the segmented one later, because
/// it pipelines promotion).
#[test]
fn same_issue_order_for_a_serial_chain() {
    fn drive(iq: &mut dyn IssueQueue) -> Vec<InstTag> {
        let mut fus = FuPool::table1();
        for i in 0..6u64 {
            let srcs: Vec<SrcOperand> = if i == 0 {
                vec![]
            } else {
                vec![SrcOperand {
                    reg: ArchReg::int(i as u8),
                    producer: Some(InstTag(i - 1)),
                    known_ready_at: None,
                }]
            };
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &srcs,
                ),
            )
            .unwrap();
        }
        let mut order = Vec::new();
        for now in 1..40 {
            iq.tick(now, order.len() == 6);
            for sel in iq.select_issue(now, &mut fus) {
                iq.announce_ready(sel.tag, now + 1);
                order.push(sel.tag);
            }
            fus.next_cycle();
        }
        order
    }

    let mut ideal = IdealIq::new(64);
    let mut seg = SegmentedIq::new(SegmentedIqConfig::paper(64, None));
    let a = drive(&mut ideal);
    let b = drive(&mut seg);
    assert_eq!(a, b, "issue order of a serial chain must match");
    assert_eq!(a.len(), 6);
}

/// Disabling every §4 enhancement still yields a correct (if slower)
/// queue: all instructions eventually issue.
#[test]
fn bare_segmented_queue_still_drains() {
    let mut cfg = SegmentedIqConfig::paper(64, None);
    cfg.pushdown = false;
    cfg.bypass = false;
    cfg.countdown_includes_descent = false;
    let mut iq = SegmentedIq::new(cfg);
    let mut fus = FuPool::table1();
    let mut issued = 0;
    // Without bypass everything lands in the 32-slot top segment, so
    // stay below its capacity.
    for i in 0..30u64 {
        iq.dispatch(
            0,
            DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int((i % 20) as u8), &[]),
        )
        .unwrap();
    }
    for now in 1..60 {
        iq.tick(now, issued == 30);
        issued += iq.select_issue(now, &mut fus).len();
        fus.next_cycle();
    }
    assert_eq!(issued, 30);
    assert!(iq.is_empty());
}

/// Chain-count ablation: the same run with fewer chain wires never
/// allocates more chains than wires.
#[test]
fn chain_limit_is_respected_end_to_end() {
    for limit in [16usize, 64, 128] {
        let r = run_one(
            Bench::Swim.profile(),
            IqKind::Segmented(SegmentedIqConfig::paper(256, Some(limit))),
            false,
            false,
            6_000,
            5,
        );
        let seg = r.segmented.unwrap();
        assert!(
            seg.chains.peak_live <= limit,
            "peak {} exceeds the {limit}-wire budget",
            seg.chains.peak_live
        );
    }
}
