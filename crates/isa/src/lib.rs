//! Instruction-set and dynamic-instruction representation for the chainiq
//! simulator.
//!
//! The simulator reproduces *"A Scalable Instruction Queue Design Using
//! Dependence Chains"* (Raasch, Binkert & Reinhardt, ISCA 2002). The paper
//! evaluates on Compaq Alpha binaries; this crate defines the minimal
//! RISC-style *dynamic* instruction representation that the timing model
//! needs: op classes with the paper's Table 1 latencies, architectural
//! registers, and resolved dynamic instructions (with memory addresses and
//! branch outcomes attached, since the workload layer produces fully
//! resolved streams).
//!
//! # Examples
//!
//! ```
//! use chainiq_isa::{Inst, OpClass, ArchReg};
//!
//! // r3 <- r1 + r2, a single-cycle integer ALU op
//! let add = Inst::alu(0x1000, ArchReg::int(3), &[ArchReg::int(1), ArchReg::int(2)]);
//! assert_eq!(add.op, OpClass::IntAlu);
//! assert_eq!(add.exec_latency(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ckpt;
mod inst;
mod op;
mod reg;

pub use inst::{BranchInfo, Inst, MemInfo};
pub use op::{FuKind, OpClass};
pub use reg::{ArchReg, NUM_ARCH_REGS};

/// A point in simulated time, counted in CPU clock cycles from reset.
pub type Cycle = u64;
