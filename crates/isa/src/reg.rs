//! Architectural register identifiers.

use std::fmt;

/// Number of architectural registers visible to the rename stage.
///
/// The namespace is split Alpha-style: indices `0..32` are the integer
/// registers `r0..r31`, indices `32..64` are the floating-point registers
/// `f0..f31`.
pub const NUM_ARCH_REGS: usize = 64;

/// An architectural register name.
///
/// `ArchReg` is a dense index into the unified integer + floating-point
/// namespace, suitable for direct use as a table index (rename map,
/// register information table).
///
/// # Examples
///
/// ```
/// use chainiq_isa::ArchReg;
///
/// let r5 = ArchReg::int(5);
/// let f2 = ArchReg::fp(2);
/// assert!(r5.is_int());
/// assert!(!f2.is_int());
/// assert_ne!(r5.index(), f2.index());
/// assert_eq!(format!("{r5}"), "r5");
/// assert_eq!(format!("{f2}"), "f2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates the integer register `r<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn int(n: u8) -> Self {
        assert!(n < 32, "integer register index {n} out of range");
        ArchReg(n)
    }

    /// Creates the floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn fp(n: u8) -> Self {
        assert!(n < 32, "fp register index {n} out of range");
        ArchReg(32 + n)
    }

    /// Creates a register from its dense index in `0..NUM_ARCH_REGS`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index < NUM_ARCH_REGS, "register index {index} out of range");
        ArchReg(index as u8)
    }

    /// Dense index of this register in `0..NUM_ARCH_REGS`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for integer registers, `false` for floating-point.
    #[must_use]
    pub fn is_int(self) -> bool {
        self.0 < 32
    }

    /// Iterator over every architectural register.
    pub fn all() -> impl Iterator<Item = ArchReg> {
        (0..NUM_ARCH_REGS).map(ArchReg::from_index)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "f{}", self.0 - 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_registers_do_not_alias() {
        for n in 0..32 {
            assert_ne!(ArchReg::int(n).index(), ArchReg::fp(n).index());
        }
    }

    #[test]
    fn round_trips_through_index() {
        for reg in ArchReg::all() {
            assert_eq!(ArchReg::from_index(reg.index()), reg);
        }
    }

    #[test]
    fn all_yields_every_register_once() {
        let regs: Vec<_> = ArchReg::all().collect();
        assert_eq!(regs.len(), NUM_ARCH_REGS);
        let mut seen = [false; NUM_ARCH_REGS];
        for r in regs {
            assert!(!seen[r.index()]);
            seen[r.index()] = true;
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArchReg::int(0).to_string(), "r0");
        assert_eq!(ArchReg::int(31).to_string(), "r31");
        assert_eq!(ArchReg::fp(0).to_string(), "f0");
        assert_eq!(ArchReg::fp(31).to_string(), "f31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_register_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_register_out_of_range_panics() {
        let _ = ArchReg::fp(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_out_of_range_panics() {
        let _ = ArchReg::from_index(NUM_ARCH_REGS);
    }
}
