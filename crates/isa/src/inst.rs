//! Resolved dynamic instructions.

use std::fmt;

use crate::{ArchReg, OpClass};

/// Memory behaviour of a dynamic load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemInfo {
    /// Virtual byte address accessed.
    pub addr: u64,
    /// Access size in bytes (power of two, at most the cache line size).
    pub size: u8,
}

/// Resolved outcome of a dynamic branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Target address when taken.
    pub target: u64,
    /// Whether this is an unconditional transfer (always taken;
    /// predictors only need the target, not the direction).
    pub unconditional: bool,
}

/// One *dynamic* (already resolved) instruction, as produced by the
/// workload layer and consumed by the timing model.
///
/// The timing simulator is trace-style: values are not computed, so a
/// dynamic instruction carries everything timing needs — its dependence
/// footprint (`dest`, `srcs`), its memory address if any, and its branch
/// outcome if any.
///
/// # Examples
///
/// ```
/// use chainiq_isa::{Inst, ArchReg, OpClass};
///
/// let ld = Inst::load(0x4000, ArchReg::int(1), ArchReg::int(2), 0x1_0000);
/// assert_eq!(ld.op, OpClass::Load);
/// assert_eq!(ld.mem.unwrap().addr, 0x1_0000);
/// assert_eq!(ld.srcs(), vec![ArchReg::int(2)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Static program counter (identifies the static instruction for the
    /// PC-indexed predictors).
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the op produces a register value.
    pub dest: Option<ArchReg>,
    /// First source operand.
    pub src1: Option<ArchReg>,
    /// Second source operand.
    pub src2: Option<ArchReg>,
    /// Memory access, for loads and stores.
    pub mem: Option<MemInfo>,
    /// Branch outcome, for control transfers.
    pub branch: Option<BranchInfo>,
}

impl Inst {
    /// Creates a register-to-register computational instruction.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory or branch class (use [`Inst::load`],
    /// [`Inst::store`] or [`Inst::branch`]) or if more than two sources
    /// are supplied.
    #[must_use]
    pub fn compute(pc: u64, op: OpClass, dest: ArchReg, srcs: &[ArchReg]) -> Self {
        assert!(!op.is_mem() && !op.is_branch(), "use the dedicated constructor for {op}");
        assert!(srcs.len() <= 2, "at most two source operands");
        Inst {
            pc,
            op,
            dest: Some(dest),
            src1: srcs.first().copied(),
            src2: srcs.get(1).copied(),
            mem: None,
            branch: None,
        }
    }

    /// Creates a single-cycle integer ALU instruction.
    #[must_use]
    pub fn alu(pc: u64, dest: ArchReg, srcs: &[ArchReg]) -> Self {
        Inst::compute(pc, OpClass::IntAlu, dest, srcs)
    }

    /// Creates a load of `dest` from `addr`, with EA computed from `base`.
    #[must_use]
    pub fn load(pc: u64, dest: ArchReg, base: ArchReg, addr: u64) -> Self {
        Inst {
            pc,
            op: OpClass::Load,
            dest: Some(dest),
            src1: Some(base),
            src2: None,
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// Creates a store of `value` to `addr`, with EA computed from `base`.
    #[must_use]
    pub fn store(pc: u64, value: ArchReg, base: ArchReg, addr: u64) -> Self {
        Inst {
            pc,
            op: OpClass::Store,
            dest: None,
            src1: Some(base),
            src2: Some(value),
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// Creates a conditional branch on `cond` with resolved outcome.
    #[must_use]
    pub fn branch(pc: u64, cond: Option<ArchReg>, taken: bool, target: u64) -> Self {
        Inst {
            pc,
            op: OpClass::Branch,
            dest: None,
            src1: cond,
            src2: None,
            mem: None,
            branch: Some(BranchInfo { taken, target, unconditional: false }),
        }
    }

    /// Creates an unconditional jump to `target`.
    #[must_use]
    pub fn jump(pc: u64, target: u64) -> Self {
        Inst {
            pc,
            op: OpClass::Branch,
            dest: None,
            src1: None,
            src2: None,
            mem: None,
            branch: Some(BranchInfo { taken: true, target, unconditional: true }),
        }
    }

    /// The source operands that are present, in operand order.
    #[must_use]
    pub fn srcs(&self) -> Vec<ArchReg> {
        self.src1.into_iter().chain(self.src2).collect()
    }

    /// Number of source operands.
    #[must_use]
    pub fn num_srcs(&self) -> usize {
        usize::from(self.src1.is_some()) + usize::from(self.src2.is_some())
    }

    /// Execution latency of this instruction on its function unit; see
    /// [`OpClass::exec_latency`].
    #[must_use]
    pub fn exec_latency(&self) -> u32 {
        self.op.exec_latency()
    }

    /// Whether this is a load.
    #[must_use]
    pub fn is_load(&self) -> bool {
        self.op == OpClass::Load
    }

    /// Whether this is a store.
    #[must_use]
    pub fn is_store(&self) -> bool {
        self.op == OpClass::Store
    }

    /// Whether this is a branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.op.is_branch()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}: {}", self.pc, self.op.mnemonic())?;
        if let Some(d) = self.dest {
            write!(f, " {d}")?;
        }
        for (i, s) in self.srcs().iter().enumerate() {
            let sep = if i == 0 && self.dest.is_none() { ' ' } else { ',' };
            write!(f, "{sep}{s}")?;
        }
        if let Some(m) = self.mem {
            write!(f, " [{:#x}]", m.addr)?;
        }
        if let Some(b) = self.branch {
            write!(f, " -> {:#x} ({})", b.target, if b.taken { "T" } else { "N" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_with_zero_one_two_sources() {
        let r = ArchReg::int(1);
        let i0 = Inst::compute(0, OpClass::IntAlu, r, &[]);
        assert_eq!(i0.num_srcs(), 0);
        let i1 = Inst::compute(0, OpClass::IntMul, r, &[ArchReg::int(2)]);
        assert_eq!(i1.num_srcs(), 1);
        let i2 =
            Inst::compute(0, OpClass::FpAdd, ArchReg::fp(0), &[ArchReg::fp(1), ArchReg::fp(2)]);
        assert_eq!(i2.num_srcs(), 2);
        assert_eq!(i2.srcs(), vec![ArchReg::fp(1), ArchReg::fp(2)]);
    }

    #[test]
    #[should_panic(expected = "dedicated constructor")]
    fn compute_rejects_memory_ops() {
        let _ = Inst::compute(0, OpClass::Load, ArchReg::int(1), &[]);
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn compute_rejects_three_sources() {
        let r = ArchReg::int(0);
        let _ = Inst::compute(0, OpClass::IntAlu, r, &[r, r, r]);
    }

    #[test]
    fn load_carries_address_and_base_dependence() {
        let ld = Inst::load(8, ArchReg::int(4), ArchReg::int(5), 0xAB0);
        assert!(ld.is_load());
        assert_eq!(ld.dest, Some(ArchReg::int(4)));
        assert_eq!(ld.srcs(), vec![ArchReg::int(5)]);
        assert_eq!(ld.mem, Some(MemInfo { addr: 0xAB0, size: 8 }));
    }

    #[test]
    fn store_has_no_dest_and_two_sources() {
        let st = Inst::store(8, ArchReg::int(4), ArchReg::int(5), 0xAB0);
        assert!(st.is_store());
        assert_eq!(st.dest, None);
        assert_eq!(st.num_srcs(), 2);
    }

    #[test]
    fn branch_outcomes() {
        let br = Inst::branch(16, Some(ArchReg::int(1)), true, 0x40);
        assert!(br.is_branch());
        let b = br.branch.unwrap();
        assert!(b.taken && !b.unconditional);

        let j = Inst::jump(20, 0x80);
        let b = j.branch.unwrap();
        assert!(b.taken && b.unconditional);
        assert_eq!(j.num_srcs(), 0);
    }

    #[test]
    fn display_is_nonempty_and_mentions_operands() {
        let ld = Inst::load(0x40, ArchReg::int(4), ArchReg::int(5), 0xAB0);
        let s = ld.to_string();
        assert!(s.contains("ld"));
        assert!(s.contains("r4"));
        assert!(s.contains("0xab0"));
    }
}
