//! Operation classes and function-unit kinds, with the latencies of the
//! paper's Table 1.

use std::fmt;

/// The class of a dynamic instruction.
///
/// Latencies follow Table 1 of the paper: integer multiply 3, integer
/// divide 20, all other integer ops 1; FP add/sub 2, FP multiply 4, FP
/// divide 12, FP square root 24. All operations are fully pipelined
/// except divide and square root.
///
/// Memory operations are split SimpleScalar-style: the instruction-queue
/// side of a [`Load`](OpClass::Load)/[`Store`](OpClass::Store) is its
/// *effective-address computation*, a single-cycle integer op; the memory
/// access itself is handled by the load/store queue and the cache
/// hierarchy, so `exec_latency` for memory ops is the EA-calc latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply (3 cycles, pipelined).
    IntMul,
    /// Integer divide (20 cycles, unpipelined).
    IntDiv,
    /// FP add/subtract (2 cycles, pipelined).
    FpAdd,
    /// FP multiply (4 cycles, pipelined).
    FpMul,
    /// FP divide (12 cycles, unpipelined).
    FpDiv,
    /// FP square root (24 cycles, unpipelined).
    FpSqrt,
    /// Memory load: EA calculation in the IQ, access via the LSQ.
    Load,
    /// Memory store: EA calculation in the IQ, access via the LSQ.
    Store,
    /// Conditional or unconditional control transfer.
    Branch,
}

impl OpClass {
    /// Every op class, for exhaustive table-driven tests.
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Execution latency in cycles on the function unit (Table 1).
    ///
    /// For loads and stores this is the effective-address computation
    /// latency; the memory access latency is determined dynamically by the
    /// cache hierarchy.
    #[must_use]
    pub fn exec_latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Load | OpClass::Store | OpClass::Branch => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 20,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::FpSqrt => 24,
        }
    }

    /// Whether the function unit is fully pipelined for this op (Table 1:
    /// everything except divide and square root).
    #[must_use]
    pub fn is_pipelined(self) -> bool {
        !matches!(self, OpClass::IntDiv | OpClass::FpDiv | OpClass::FpSqrt)
    }

    /// Which kind of function unit executes this op.
    #[must_use]
    pub fn fu_kind(self) -> FuKind {
        match self {
            OpClass::IntAlu | OpClass::Branch => FuKind::IntAlu,
            OpClass::IntMul | OpClass::IntDiv => FuKind::IntMul,
            OpClass::FpAdd => FuKind::FpAdd,
            OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => FuKind::FpMul,
            // The EA calculation of a memory op runs on an integer ALU;
            // the cache ports are occupied by the LSQ access itself.
            OpClass::Load => FuKind::IntAlu,
            OpClass::Store => FuKind::IntAlu,
        }
    }

    /// Returns `true` for loads and stores.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Returns `true` for control-transfer instructions.
    #[must_use]
    pub fn is_branch(self) -> bool {
        self == OpClass::Branch
    }

    /// Short assembly-style mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntAlu => "add",
            OpClass::IntMul => "mul",
            OpClass::IntDiv => "div",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::FpSqrt => "fsqrt",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::Branch => "br",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The kind of function unit an op executes on.
///
/// Table 1 provisions eight units of each kind (plus eight data-cache read
/// ports and eight write ports, modelled by the memory hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU (also executes branches and EA calculations).
    IntAlu,
    /// Integer multiply/divide unit.
    IntMul,
    /// FP adder.
    FpAdd,
    /// FP multiply/divide/sqrt unit.
    FpMul,
}

impl FuKind {
    /// Every function-unit kind.
    pub const ALL: [FuKind; 4] = [FuKind::IntAlu, FuKind::IntMul, FuKind::FpAdd, FuKind::FpMul];

    /// Dense index, usable for table lookups.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FuKind::IntAlu => 0,
            FuKind::IntMul => 1,
            FuKind::FpAdd => 2,
            FuKind::FpMul => 3,
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::IntAlu => "int-alu",
            FuKind::IntMul => "int-mul",
            FuKind::FpAdd => "fp-add",
            FuKind::FpMul => "fp-mul",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_latencies() {
        assert_eq!(OpClass::IntAlu.exec_latency(), 1);
        assert_eq!(OpClass::IntMul.exec_latency(), 3);
        assert_eq!(OpClass::IntDiv.exec_latency(), 20);
        assert_eq!(OpClass::FpAdd.exec_latency(), 2);
        assert_eq!(OpClass::FpMul.exec_latency(), 4);
        assert_eq!(OpClass::FpDiv.exec_latency(), 12);
        assert_eq!(OpClass::FpSqrt.exec_latency(), 24);
        assert_eq!(OpClass::Load.exec_latency(), 1);
        assert_eq!(OpClass::Store.exec_latency(), 1);
        assert_eq!(OpClass::Branch.exec_latency(), 1);
    }

    #[test]
    fn only_div_and_sqrt_are_unpipelined() {
        for op in OpClass::ALL {
            let expect = !matches!(op, OpClass::IntDiv | OpClass::FpDiv | OpClass::FpSqrt);
            assert_eq!(op.is_pipelined(), expect, "{op}");
        }
    }

    #[test]
    fn every_op_maps_to_a_unit() {
        for op in OpClass::ALL {
            let k = op.fu_kind();
            assert!(FuKind::ALL.contains(&k));
        }
    }

    #[test]
    fn fu_indices_are_dense_and_unique() {
        let mut seen = [false; 4];
        for k in FuKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mem_and_branch_classification() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(OpClass::Branch.is_branch());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(!OpClass::Load.is_branch());
    }
}
