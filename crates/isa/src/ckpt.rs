//! [`Pack`] impls for the ISA value types, so every component snapshot
//! can embed instructions and registers without re-deriving an encoding.

use chainiq_ckpt::{CkptError, Pack, Reader, Writer};

use crate::{ArchReg, BranchInfo, Inst, MemInfo, OpClass, NUM_ARCH_REGS};

impl Pack for ArchReg {
    fn pack(&self, w: &mut Writer) {
        w.put_u8(self.index() as u8);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let idx = r.take_u8("arch reg")?;
        if usize::from(idx) >= NUM_ARCH_REGS {
            return Err(CkptError::Corrupt { context: format!("arch reg index {idx}") });
        }
        Ok(ArchReg::from_index(usize::from(idx)))
    }
}

impl Pack for OpClass {
    fn pack(&self, w: &mut Writer) {
        let tag = match self {
            OpClass::IntAlu => 0u8,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 5,
            OpClass::FpSqrt => 6,
            OpClass::Load => 7,
            OpClass::Store => 8,
            OpClass::Branch => 9,
        };
        w.put_u8(tag);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(match r.take_u8("op class")? {
            0 => OpClass::IntAlu,
            1 => OpClass::IntMul,
            2 => OpClass::IntDiv,
            3 => OpClass::FpAdd,
            4 => OpClass::FpMul,
            5 => OpClass::FpDiv,
            6 => OpClass::FpSqrt,
            7 => OpClass::Load,
            8 => OpClass::Store,
            9 => OpClass::Branch,
            other => {
                return Err(CkptError::Corrupt { context: format!("op class tag {other}") });
            }
        })
    }
}

impl Pack for MemInfo {
    fn pack(&self, w: &mut Writer) {
        self.addr.pack(w);
        self.size.pack(w);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(MemInfo { addr: Pack::unpack(r)?, size: Pack::unpack(r)? })
    }
}

impl Pack for BranchInfo {
    fn pack(&self, w: &mut Writer) {
        self.taken.pack(w);
        self.target.pack(w);
        self.unconditional.pack(w);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(BranchInfo {
            taken: Pack::unpack(r)?,
            target: Pack::unpack(r)?,
            unconditional: Pack::unpack(r)?,
        })
    }
}

impl Pack for Inst {
    fn pack(&self, w: &mut Writer) {
        self.pc.pack(w);
        self.op.pack(w);
        self.dest.pack(w);
        self.src1.pack(w);
        self.src2.pack(w);
        self.mem.pack(w);
        self.branch.pack(w);
    }
    fn unpack(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(Inst {
            pc: Pack::unpack(r)?,
            op: Pack::unpack(r)?,
            dest: Pack::unpack(r)?,
            src1: Pack::unpack(r)?,
            src2: Pack::unpack(r)?,
            mem: Pack::unpack(r)?,
            branch: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_round_trips() {
        let insts = vec![
            Inst::alu(0x10, ArchReg::int(3), &[ArchReg::int(1), ArchReg::int(2)]),
            Inst::load(0x14, ArchReg::int(4), ArchReg::int(5), 0xAB0),
            Inst::store(0x18, ArchReg::int(4), ArchReg::int(5), 0xAB8),
            Inst::branch(0x1C, Some(ArchReg::int(1)), true, 0x40),
            Inst::jump(0x20, 0x80),
            Inst::compute(0x24, OpClass::FpSqrt, ArchReg::fp(0), &[ArchReg::fp(1)]),
        ];
        let mut w = Writer::new();
        insts.pack(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(Vec::<Inst>::unpack(&mut r).unwrap(), insts);
        assert!(r.is_exhausted());
    }

    #[test]
    fn every_op_class_round_trips() {
        for op in OpClass::ALL {
            let mut w = Writer::new();
            op.pack(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(OpClass::unpack(&mut Reader::new(&bytes)).unwrap(), op);
        }
    }

    #[test]
    fn out_of_range_reg_and_op_are_corrupt() {
        let bytes = [200u8];
        assert!(matches!(
            ArchReg::unpack(&mut Reader::new(&bytes)),
            Err(CkptError::Corrupt { .. })
        ));
        assert!(matches!(
            OpClass::unpack(&mut Reader::new(&bytes)),
            Err(CkptError::Corrupt { .. })
        ));
    }
}
