//! Seedable, algorithm-pinned PRNG for the chainiq workspace.
//!
//! The simulator's synthetic workloads must be a *pure function of
//! (profile, seed)* — the paper's experiments (and every directional CI
//! band derived from them) depend on instruction streams that never
//! change under the repo's feet. External `rand` cannot promise that:
//! `StdRng`'s algorithm is explicitly unstable across versions. This
//! crate pins the generator forever:
//!
//! * seeding: **SplitMix64** expands a 64-bit seed into the 256-bit
//!   state (the initialization recommended by the xoshiro authors);
//! * stream: **xoshiro256\*\*** (Blackman & Vigna), a small, fast,
//!   well-tested generator whose reference algorithm is public domain.
//!
//! Golden-value tests pin the exact output stream; any change to the
//! algorithm is a deliberate, test-visible event.
//!
//! # Examples
//!
//! ```
//! use chainiq_rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range(10..20) >= 10);
//! let _coin: bool = a.gen_bool(0.5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::Range;

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// next output. Used for state expansion and anywhere a one-shot 64-bit
/// mix of a seed is needed (e.g. decorrelating per-test-case seeds).
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xoshiro256\*\* generator, seeded from a single `u64`.
///
/// The API mirrors the subset of `rand` the workload layer used
/// (`seed_from_u64`, `gen_range`, `gen_bool`), so swapping the backend
/// was a type change, not a rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator by expanding `seed` with SplitMix64, as the
    /// xoshiro reference code recommends. Any seed (including 0) yields
    /// a good state.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next raw 64-bit output.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`, using the top 53 bits of one output.
    #[must_use]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform value in `range`, by Lemire's multiply-shift reduction
    /// of one output (bias is O(width / 2^64) — irrelevant for the
    /// simulator's ranges, and the fixed mapping is part of the pinned
    /// stream).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[must_use]
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        let width = range.end.checked_sub(range.start).expect("gen_range: end < start");
        assert!(width > 0, "gen_range: empty range");
        let hi = ((u128::from(self.next_u64()) * u128::from(width)) >> 64) as u64;
        range.start + hi
    }

    /// `true` with probability `p`, by comparing one `f64` draw against
    /// `p`. `p <= 0.0` is always `false`; `p >= 1.0` always `true`
    /// (one output is consumed either way).
    #[must_use]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl chainiq_ckpt::Pack for Rng {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.s.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        Ok(Rng { s: <[u64; 4]>::unpack(r)? })
    }
}

impl chainiq_ckpt::Snapshot for Rng {
    const COMPONENT: &'static str = "rng";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        chainiq_ckpt::Pack::pack(self, w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        *self = chainiq_ckpt::Pack::unpack(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the SplitMix64 sequence to the reference implementation's
    /// output for seed 0 (values cross-checked against the published C
    /// code).
    #[test]
    fn splitmix64_golden_stream() {
        let mut s = 0u64;
        let got: Vec<u64> = (0..4).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(
            got,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ]
        );
    }

    /// Pins the seeded xoshiro256** stream forever. If this test trips,
    /// every workload fingerprint and directional band in the repo moves
    /// with it: re-pin only as a deliberate, documented decision.
    #[test]
    fn xoshiro_golden_stream_seed_1() {
        let mut rng = Rng::seed_from_u64(1);
        let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xB3F2_AF6D_0FC7_10C5,
                0x853B_5596_4736_4CEA,
                0x92F8_9756_082A_4514,
                0x642E_1C7B_C266_A3A7,
                0xB27A_48E2_9A23_3673,
                0x24C1_2312_6FFD_A722,
            ]
        );
    }

    /// Same pin for the experiment seed every `chainiq-bench` binary
    /// uses (`DEFAULT_SEED = 20020525`).
    #[test]
    fn xoshiro_golden_stream_experiment_seed() {
        let mut rng = Rng::seed_from_u64(20_020_525);
        let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x0ECE_E5AF_1029_F34E,
                0x6BAA_2F2F_313A_B0EA,
                0x2572_88E4_C921_2AB3,
                0xA757_C48A_4CF7_3550,
                0x98B6_E122_4DF8_4376,
                0x9754_BA84_40B9_431C,
            ]
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0xDEAD_BEEF);
        let mut b = Rng::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds must decorrelate after SplitMix64 expansion");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "1000 draws must cover 0..8");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let _ = Rng::seed_from_u64(0).gen_range(5..5);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = Rng::seed_from_u64(13);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 rate off: {hits}/10000");
    }

    #[test]
    fn snapshot_restores_the_exact_stream() {
        use chainiq_ckpt::{Reader, Snapshot, Writer};
        let mut a = Rng::seed_from_u64(5);
        for _ in 0..17 {
            let _ = a.next_u64();
        }
        let mut w = Writer::new();
        a.save(&mut w);
        let bytes = w.into_bytes();
        let mut b = Rng::seed_from_u64(0);
        b.restore(&mut Reader::new(&bytes)).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = Rng::seed_from_u64(3);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
