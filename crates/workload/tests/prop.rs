//! Property tests for the synthetic workload generators.

use chainiq_workload::{Bench, KernelSpec, Phase, Profile, SyntheticWorkload};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = KernelSpec> {
    prop_oneof![
        (1u8..4, 1u64..8, 0u8..4, any::<bool>()).prop_map(|(arrays, ws_kb, fp_ops, store)| {
            KernelSpec::Stream {
                arrays,
                working_set: ws_kb << 12,
                stride: 8,
                fp_ops,
                store,
            }
        }),
        (1u8..5, 1u64..8, 0u8..4).prop_map(|(taps, ws_kb, fp_ops)| KernelSpec::Stencil {
            taps,
            working_set: ws_kb << 10,
            fp_ops,
        }),
        (1u64..8, any::<bool>()).prop_map(|(ws_kb, fp_mul)| KernelSpec::Reduction {
            working_set: ws_kb << 10,
            fp_mul,
        }),
        (16u64..512, 0u8..4).prop_map(|(nodes, work)| KernelSpec::PointerChase {
            nodes,
            node_bytes: 64,
            work_per_hop: work,
        }),
        (1u64..64, 0u8..4).prop_map(|(tab_kb, fp_ops)| KernelSpec::Gather {
            table_bytes: tab_kb << 12,
            index_bytes: 1 << 10,
            fp_ops,
        }),
        (0.0f64..1.0, 0.0f64..1.0, 0u8..5, 1u64..32).prop_map(
            |(taken_prob, random_frac, work, ws_kb)| KernelSpec::Branchy {
                taken_prob,
                random_frac,
                work,
                working_set: ws_kb << 10,
            }
        ),
    ]
}

fn profile_strategy() -> impl Strategy<Value = Profile> {
    prop::collection::vec((kernel_strategy(), 1u32..64, 1u32..4), 1..4).prop_map(|phases| {
        Profile::new(
            "prop",
            phases
                .into_iter()
                .map(|(kernel, burst_iterations, weight)| Phase { kernel, burst_iterations, weight })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any profile produces an endless, well-formed stream: every
    /// instruction has consistent operands, memory ops carry addresses,
    /// branches carry outcomes.
    #[test]
    fn arbitrary_profiles_generate_well_formed_streams(profile in profile_strategy(), seed: u64) {
        let mut w = SyntheticWorkload::from_profile(profile, seed);
        for inst in w.by_ref().take(3000) {
            prop_assert!(inst.num_srcs() <= 2);
            if inst.is_load() {
                prop_assert!(inst.mem.is_some());
                prop_assert!(inst.dest.is_some());
            }
            if inst.is_store() {
                prop_assert!(inst.mem.is_some());
                prop_assert!(inst.dest.is_none());
            }
            if inst.is_branch() {
                prop_assert!(inst.branch.is_some());
                prop_assert!(inst.dest.is_none());
            }
            prop_assert!(inst.pc >= 0x1000_0000, "PCs live in the code region");
            if let Some(m) = inst.mem {
                prop_assert!(m.addr >= 0x4000_0000, "data lives in the data region");
            }
        }
        prop_assert_eq!(w.emitted(), 3000);
    }

    /// Streams are a pure function of (profile, seed).
    #[test]
    fn streams_are_deterministic(profile in profile_strategy(), seed: u64) {
        let a: Vec<_> =
            SyntheticWorkload::from_profile(profile.clone(), seed).take(1500).collect();
        let b: Vec<_> = SyntheticWorkload::from_profile(profile, seed).take(1500).collect();
        prop_assert_eq!(a, b);
    }

    /// Static PCs repeat: the dynamic stream reuses a bounded set of
    /// instruction addresses (a real program's static image), which the
    /// PC-indexed predictors rely on.
    #[test]
    fn static_code_footprint_is_bounded(profile in profile_strategy(), seed: u64) {
        let pcs: std::collections::HashSet<u64> = SyntheticWorkload::from_profile(profile, seed)
            .take(5000)
            .map(|i| i.pc)
            .collect();
        prop_assert!(pcs.len() < 400, "static footprint {} too large", pcs.len());
    }

    /// The standard benchmarks yield instruction mixes inside sane
    /// architectural bounds for any seed.
    #[test]
    fn bench_mixes_bounded_for_any_seed(seed: u64) {
        for b in Bench::ALL {
            let mut loads = 0u32;
            let mut branches = 0u32;
            let n = 4000;
            for inst in SyntheticWorkload::from_profile(b.profile(), seed).take(n) {
                loads += u32::from(inst.is_load());
                branches += u32::from(inst.is_branch());
            }
            let lf = f64::from(loads) / n as f64;
            let bf = f64::from(branches) / n as f64;
            prop_assert!((0.05..0.6).contains(&lf), "{b}: load fraction {lf}");
            prop_assert!((0.02..0.45).contains(&bf), "{b}: branch fraction {bf}");
        }
    }
}
