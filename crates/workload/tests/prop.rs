//! Property tests for the synthetic workload generators.

use chainiq_devtest::{prop_assert, prop_assert_eq, prop_check, Gen};
use chainiq_workload::{Bench, KernelSpec, Phase, Profile, SyntheticWorkload};

fn rand_kernel(g: &mut Gen) -> KernelSpec {
    match g.pick(6) {
        0 => KernelSpec::Stream {
            arrays: g.u8(1..4),
            working_set: g.u64(1..8) << 12,
            stride: 8,
            fp_ops: g.u8(0..4),
            store: g.bool(),
        },
        1 => KernelSpec::Stencil {
            taps: g.u8(1..5),
            working_set: g.u64(1..8) << 10,
            fp_ops: g.u8(0..4),
        },
        2 => KernelSpec::Reduction { working_set: g.u64(1..8) << 10, fp_mul: g.bool() },
        3 => KernelSpec::PointerChase {
            nodes: g.u64(16..512),
            node_bytes: 64,
            work_per_hop: g.u8(0..4),
        },
        4 => KernelSpec::Gather {
            table_bytes: g.u64(1..64) << 12,
            index_bytes: 1 << 10,
            fp_ops: g.u8(0..4),
        },
        _ => KernelSpec::Branchy {
            taken_prob: g.f64(0.0..1.0),
            random_frac: g.f64(0.0..1.0),
            work: g.u8(0..5),
            working_set: g.u64(1..32) << 10,
        },
    }
}

fn rand_profile(g: &mut Gen) -> Profile {
    let phases = g.vec(1..4, |g| Phase {
        kernel: rand_kernel(g),
        burst_iterations: g.u32(1..64),
        weight: g.u32(1..4),
    });
    Profile::new("prop", phases)
}

prop_check! {
    /// Any profile produces an endless, well-formed stream: every
    /// instruction has consistent operands, memory ops carry addresses,
    /// branches carry outcomes.
    fn arbitrary_profiles_generate_well_formed_streams(g, cases = 48) {
        let profile = rand_profile(g);
        let seed = g.any_u64();
        let mut w = SyntheticWorkload::from_profile(profile, seed);
        for inst in w.by_ref().take(3000) {
            prop_assert!(inst.num_srcs() <= 2);
            if inst.is_load() {
                prop_assert!(inst.mem.is_some());
                prop_assert!(inst.dest.is_some());
            }
            if inst.is_store() {
                prop_assert!(inst.mem.is_some());
                prop_assert!(inst.dest.is_none());
            }
            if inst.is_branch() {
                prop_assert!(inst.branch.is_some());
                prop_assert!(inst.dest.is_none());
            }
            prop_assert!(inst.pc >= 0x1000_0000, "PCs live in the code region");
            if let Some(m) = inst.mem {
                prop_assert!(m.addr >= 0x4000_0000, "data lives in the data region");
            }
        }
        prop_assert_eq!(w.emitted(), 3000);
    }

    /// Streams are a pure function of (profile, seed).
    fn streams_are_deterministic(g, cases = 48) {
        let profile = rand_profile(g);
        let seed = g.any_u64();
        let a: Vec<_> =
            SyntheticWorkload::from_profile(profile.clone(), seed).take(1500).collect();
        let b: Vec<_> = SyntheticWorkload::from_profile(profile, seed).take(1500).collect();
        prop_assert_eq!(a, b);
    }

    /// Static PCs repeat: the dynamic stream reuses a bounded set of
    /// instruction addresses (a real program's static image), which the
    /// PC-indexed predictors rely on.
    fn static_code_footprint_is_bounded(g, cases = 48) {
        let profile = rand_profile(g);
        let seed = g.any_u64();
        let pcs: std::collections::HashSet<u64> = SyntheticWorkload::from_profile(profile, seed)
            .take(5000)
            .map(|i| i.pc)
            .collect();
        prop_assert!(pcs.len() < 400, "static footprint {} too large", pcs.len());
    }

    /// The standard benchmarks yield instruction mixes inside sane
    /// architectural bounds for any seed.
    fn bench_mixes_bounded_for_any_seed(g, cases = 48) {
        let seed = g.any_u64();
        for b in Bench::ALL {
            let mut loads = 0u32;
            let mut branches = 0u32;
            let n = 4000;
            for inst in SyntheticWorkload::from_profile(b.profile(), seed).take(n) {
                loads += u32::from(inst.is_load());
                branches += u32::from(inst.is_branch());
            }
            let lf = f64::from(loads) / n as f64;
            let bf = f64::from(branches) / n as f64;
            prop_assert!((0.05..0.6).contains(&lf), "{b}: load fraction {lf}");
            prop_assert!((0.02..0.45).contains(&bf), "{b}: branch fraction {bf}");
        }
    }
}
