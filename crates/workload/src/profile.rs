//! Benchmark profiles: named parameterizations of the loop kernels.

use crate::kernels::KernelSpec;

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// One program phase: a kernel run for a burst of iterations, with a
/// weight controlling how often the phase recurs.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// The loop kernel this phase runs.
    pub kernel: KernelSpec,
    /// Loop iterations per burst (one burst per scheduling turn).
    pub burst_iterations: u32,
    /// Relative frequency of this phase in the rotation.
    pub weight: u32,
}

/// A complete synthetic benchmark: a set of weighted phases.
///
/// Construct standard profiles through [`Bench::profile`], or build
/// custom ones directly — see `examples/custom_workload.rs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Human-readable benchmark name.
    pub name: String,
    /// The phases in rotation order.
    pub phases: Vec<Phase>,
}

impl Profile {
    /// Creates a profile from a name and phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any weight or burst length is zero.
    #[must_use]
    pub fn new(name: impl Into<String>, phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a profile needs at least one phase");
        for p in &phases {
            assert!(p.weight > 0, "phase weights must be positive");
            assert!(p.burst_iterations > 0, "burst lengths must be positive");
        }
        Profile { name: name.into(), phases }
    }
}

/// The eight-benchmark SPEC CPU2000 subset of the paper's evaluation
/// (§5): the two integer and five floating-point benchmarks that gain the
/// most from larger instruction queues, plus gcc as the
/// high-misspeculation / low-ILP calibration point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bench {
    /// Molecular dynamics: pointer-chasing neighbour lists + FP work.
    Ammp,
    /// Parabolic/elliptic PDE solver: stencils and streams over big grids.
    Applu,
    /// Earthquake simulation: sparse matrix-vector gathers.
    Equake,
    /// C compiler: branchy integer code, low ILP, small working set.
    Gcc,
    /// Multigrid solver: deep stencils, high queue occupancy.
    Mgrid,
    /// Shallow-water model: pure streaming, >90% L1 miss rate.
    Swim,
    /// Place-and-route: branchy integer code with a moderate data set.
    Twolf,
    /// OO database: predictable branches, modest memory pressure.
    Vortex,
}

impl Bench {
    /// All eight benchmarks, in the paper's (alphabetical) order.
    pub const ALL: [Bench; 8] = [
        Bench::Ammp,
        Bench::Applu,
        Bench::Equake,
        Bench::Gcc,
        Bench::Mgrid,
        Bench::Swim,
        Bench::Twolf,
        Bench::Vortex,
    ];

    /// The benchmark's lowercase name as the paper prints it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Bench::Ammp => "ammp",
            Bench::Applu => "applu",
            Bench::Equake => "equake",
            Bench::Gcc => "gcc",
            Bench::Mgrid => "mgrid",
            Bench::Swim => "swim",
            Bench::Twolf => "twolf",
            Bench::Vortex => "vortex",
        }
    }

    /// Parses a benchmark name (as printed by [`Bench::name`]).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized input back as the error value.
    pub fn from_name(name: &str) -> Result<Bench, String> {
        Bench::ALL.into_iter().find(|b| b.name() == name).ok_or_else(|| name.to_string())
    }

    /// Builds the calibrated synthetic profile for this benchmark.
    ///
    /// The parameters encode the structural properties the paper reports
    /// or implies for each benchmark (see `DESIGN.md` §2); they are the
    /// calibration surface for matching the paper's result *shapes*.
    #[must_use]
    pub fn profile(self) -> Profile {
        match self {
            // Pure streaming over working sets far beyond the 1 MB L2;
            // with an 8-byte stride every line is a primary miss plus
            // seven delayed hits, reproducing swim's >90% L1 miss rate of
            // which only ~20% reach the L2 as primary accesses.
            Bench::Swim => Profile::new(
                "swim",
                vec![
                    Phase {
                        kernel: KernelSpec::Stream {
                            arrays: 3,
                            working_set: 8 * MB,
                            stride: 8,
                            fp_ops: 2,
                            store: true,
                        },
                        burst_iterations: 512,
                        weight: 2,
                    },
                    Phase {
                        kernel: KernelSpec::Stream {
                            arrays: 2,
                            working_set: 8 * MB,
                            stride: 8,
                            fp_ops: 3,
                            store: true,
                        },
                        burst_iterations: 512,
                        weight: 1,
                    },
                ],
            ),
            // Deep stencils with strong line reuse: loads mostly hit, but
            // long FP trees keep queue occupancy and chain demand high;
            // a long-stride sweep adds the L2 misses that a large window
            // overlaps.
            Bench::Mgrid => Profile::new(
                "mgrid",
                vec![
                    Phase {
                        kernel: KernelSpec::Stencil { taps: 4, working_set: KB, fp_ops: 4 },
                        burst_iterations: 256,
                        weight: 3,
                    },
                    Phase {
                        kernel: KernelSpec::Stream {
                            arrays: 2,
                            working_set: 6 * MB,
                            stride: 64,
                            fp_ops: 3,
                            store: false,
                        },
                        burst_iterations: 128,
                        weight: 1,
                    },
                ],
            ),
            // Stencil sweeps mixed with gathers over a multi-megabyte
            // grid, plus a serial reduction phase.
            Bench::Applu => Profile::new(
                "applu",
                vec![
                    Phase {
                        kernel: KernelSpec::Stencil { taps: 3, working_set: KB, fp_ops: 3 },
                        burst_iterations: 256,
                        weight: 2,
                    },
                    Phase {
                        kernel: KernelSpec::Stream {
                            arrays: 2,
                            working_set: 4 * MB,
                            stride: 64,
                            fp_ops: 2,
                            store: true,
                        },
                        burst_iterations: 128,
                        weight: 2,
                    },
                    Phase {
                        kernel: KernelSpec::Reduction { working_set: 2 * KB, fp_mul: false },
                        burst_iterations: 64,
                        weight: 1,
                    },
                ],
            ),
            // Sparse matrix-vector products: sequential index loads plus
            // random gathers into a table larger than the L2.
            Bench::Equake => Profile::new(
                "equake",
                vec![
                    Phase {
                        kernel: KernelSpec::Gather {
                            table_bytes: 8 * MB,
                            index_bytes: KB,
                            fp_ops: 5,
                        },
                        burst_iterations: 256,
                        weight: 3,
                    },
                    Phase {
                        kernel: KernelSpec::Stream {
                            arrays: 2,
                            working_set: 2 * MB,
                            stride: 64,
                            fp_ops: 2,
                            store: false,
                        },
                        burst_iterations: 256,
                        weight: 1,
                    },
                ],
            ),
            // Neighbour-list walks (serial misses) with FP work per node
            // and gathers into a mid-sized table.
            Bench::Ammp => Profile::new(
                "ammp",
                vec![
                    Phase {
                        kernel: KernelSpec::PointerChase {
                            nodes: 48 * KB,
                            node_bytes: 64,
                            work_per_hop: 4,
                        },
                        burst_iterations: 128,
                        weight: 1,
                    },
                    Phase {
                        kernel: KernelSpec::Gather {
                            table_bytes: 4 * MB,
                            index_bytes: KB,
                            fp_ops: 6,
                        },
                        burst_iterations: 256,
                        weight: 4,
                    },
                ],
            ),
            // Branch-dominated integer code with a mostly-resident
            // working set; mispredictions cap the useful window size.
            Bench::Gcc => Profile::new(
                "gcc",
                vec![
                    Phase {
                        kernel: KernelSpec::Branchy {
                            taken_prob: 0.5,
                            random_frac: 0.32,
                            work: 3,
                            working_set: 24 * KB,
                        },
                        burst_iterations: 128,
                        weight: 3,
                    },
                    Phase {
                        kernel: KernelSpec::PointerChase {
                            nodes: 256,
                            node_bytes: 64,
                            work_per_hop: 3,
                        },
                        burst_iterations: 64,
                        weight: 1,
                    },
                ],
            ),
            // Branchy with somewhat better prediction and a data set that
            // spills into the L2.
            Bench::Twolf => Profile::new(
                "twolf",
                vec![
                    Phase {
                        kernel: KernelSpec::Branchy {
                            taken_prob: 0.5,
                            random_frac: 0.18,
                            work: 4,
                            working_set: 40 * KB,
                        },
                        burst_iterations: 128,
                        weight: 3,
                    },
                    Phase {
                        kernel: KernelSpec::Gather {
                            table_bytes: 1536 * KB,
                            index_bytes: KB,
                            fp_ops: 0,
                        },
                        burst_iterations: 128,
                        weight: 1,
                    },
                ],
            ),
            // Highly predictable branches, small pointer structures,
            // caches mostly hit: modest but real window benefit.
            Bench::Vortex => Profile::new(
                "vortex",
                vec![
                    Phase {
                        kernel: KernelSpec::Branchy {
                            taken_prob: 0.5,
                            random_frac: 0.025,
                            work: 5,
                            working_set: 16 * KB,
                        },
                        burst_iterations: 128,
                        weight: 3,
                    },
                    Phase {
                        kernel: KernelSpec::PointerChase {
                            nodes: 256,
                            node_bytes: 64,
                            work_per_hop: 5,
                        },
                        burst_iterations: 64,
                        weight: 1,
                    },
                    Phase {
                        kernel: KernelSpec::Stream {
                            arrays: 1,
                            working_set: 2 * MB,
                            stride: 64,
                            fp_ops: 0,
                            store: true,
                        },
                        burst_iterations: 128,
                        weight: 1,
                    },
                ],
            ),
        }
    }
}

impl std::fmt::Display for Bench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bench_has_a_profile() {
        for b in Bench::ALL {
            let p = b.profile();
            assert!(!p.phases.is_empty(), "{b} has no phases");
            assert_eq!(p.name, b.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Bench::ALL {
            assert_eq!(Bench::from_name(b.name()), Ok(b));
        }
        assert!(Bench::from_name("nonexistent").is_err());
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_panics() {
        let _ = Profile::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_panics() {
        let _ = Profile::new(
            "bad",
            vec![Phase {
                kernel: KernelSpec::Reduction { working_set: 64, fp_mul: false },
                burst_iterations: 8,
                weight: 0,
            }],
        );
    }

    #[test]
    fn swim_is_streaming_dominated() {
        let p = Bench::Swim.profile();
        assert!(p.phases.iter().all(|ph| matches!(ph.kernel, KernelSpec::Stream { .. })));
    }

    #[test]
    fn gcc_contains_random_branches() {
        let p = Bench::Gcc.profile();
        let has_random = p.phases.iter().any(
            |ph| matches!(ph.kernel, KernelSpec::Branchy { random_frac, .. } if random_frac > 0.2),
        );
        assert!(has_random);
    }
}
