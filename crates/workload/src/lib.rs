//! Synthetic SPEC-profile workload generators for the chainiq simulator.
//!
//! The paper evaluates on Alpha binaries of eight SPEC CPU2000 benchmarks
//! (ammp, applu, equake, gcc, mgrid, swim, twolf, vortex). Binaries and
//! reference inputs are unavailable here, so this crate substitutes
//! *synthetic dynamic instruction streams* whose structural properties —
//! instruction mix, dependence-graph shape, memory access patterns
//! (working-set size, stride, indirection), and branch predictability —
//! are chosen per benchmark to reproduce the behaviours the paper's
//! results hinge on (see `DESIGN.md` §2 for the substitution argument).
//!
//! A [`Profile`] is a set of [`Phase`]s, each wrapping a loop *kernel*
//! ([`KernelSpec`]): streaming, stencil, reduction, pointer-chase,
//! gather, or branchy integer code. [`SyntheticWorkload`] interleaves the
//! phases in bursts and yields an endless stream of resolved
//! [`Inst`](chainiq_isa::Inst)s, deterministically from a seed.
//!
//! # Examples
//!
//! ```
//! use chainiq_workload::{Bench, SyntheticWorkload};
//!
//! let mut w = SyntheticWorkload::from_profile(Bench::Swim.profile(), 42);
//! let first_thousand: Vec<_> = w.by_ref().take(1000).collect();
//! assert_eq!(first_thousand.len(), 1000);
//! // The same seed reproduces the same stream.
//! let mut w2 = SyntheticWorkload::from_profile(Bench::Swim.profile(), 42);
//! assert!(first_thousand.iter().eq(w2.by_ref().take(1000).collect::<Vec<_>>().iter()));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod gen;
mod kernels;
mod profile;

pub use gen::{AddressSpace, MixSummary, SyntheticWorkload, VecWorkload};
pub use kernels::KernelSpec;
pub use profile::{Bench, Phase, Profile};
