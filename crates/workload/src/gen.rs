//! The dynamic-stream generator.

use std::collections::VecDeque;

use chainiq_isa::{Inst, OpClass};
use chainiq_rng::Rng;

use crate::kernels::KernelState;
use crate::profile::Profile;

/// Byte spacing between the private memory regions of successive phases.
const REGION_SPACING: u64 = 1 << 28;
/// PC spacing between the static code of successive phases.
const PC_SPACING: u64 = 1 << 16;
/// Lowest PC used by generated code.
const PC_BASE: u64 = 0x1000_0000;
/// Lowest data address used by generated code.
const DATA_BASE: u64 = 0x4000_0000;

/// An endless, deterministic stream of resolved dynamic instructions for
/// one [`Profile`].
///
/// Phases are scheduled in a weighted rotation; each turn runs one
/// *burst* of loop iterations of the phase's kernel. See the
/// [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    name: String,
    kernels: Vec<KernelState>,
    /// Rotation of phase indices (a phase with weight w appears w times).
    rotation: Vec<usize>,
    rotation_pos: usize,
    burst_iterations: Vec<u32>,
    rng: Rng,
    buffer: VecDeque<Inst>,
    emitted: u64,
}

impl SyntheticWorkload {
    /// Creates a generator for `profile`, seeded for reproducibility.
    #[must_use]
    pub fn from_profile(profile: Profile, seed: u64) -> Self {
        let mut kernels = Vec::new();
        let mut rotation = Vec::new();
        let mut burst_iterations = Vec::new();
        for (idx, phase) in profile.phases.iter().enumerate() {
            let pc_base = PC_BASE + idx as u64 * PC_SPACING;
            let region = DATA_BASE + idx as u64 * REGION_SPACING;
            kernels.push(KernelState::new(phase.kernel, pc_base, region));
            burst_iterations.push(phase.burst_iterations);
            for _ in 0..phase.weight {
                rotation.push(idx);
            }
        }
        SyntheticWorkload {
            name: profile.name,
            kernels,
            rotation,
            rotation_pos: 0,
            burst_iterations,
            rng: Rng::seed_from_u64(seed),
            buffer: VecDeque::new(),
            emitted: 0,
        }
    }

    /// The profile name this stream was generated from.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Dynamic instructions yielded so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn refill(&mut self) {
        let phase = self.rotation[self.rotation_pos];
        self.rotation_pos = (self.rotation_pos + 1) % self.rotation.len();
        let iters = self.burst_iterations[phase];
        let mut batch = Vec::new();
        for i in 0..iters {
            self.kernels[phase].emit_iteration(i + 1 < iters, &mut batch, &mut self.rng);
        }
        self.buffer.extend(batch);
    }
}

impl Iterator for SyntheticWorkload {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        while self.buffer.is_empty() {
            self.refill();
        }
        self.emitted += 1;
        self.buffer.pop_front()
    }
}

/// A finite workload replaying a fixed instruction sequence — handy for
/// unit tests and the paper's Figure 1 worked example.
///
/// # Examples
///
/// ```
/// use chainiq_isa::{Inst, ArchReg};
/// use chainiq_workload::VecWorkload;
///
/// let seq = vec![Inst::alu(0, ArchReg::int(1), &[])];
/// let mut w = VecWorkload::new(seq.clone());
/// assert_eq!(w.next(), Some(seq[0]));
/// assert_eq!(w.next(), None);
/// ```
#[derive(Debug, Clone)]
pub struct VecWorkload {
    insts: std::vec::IntoIter<Inst>,
}

impl VecWorkload {
    /// Wraps a fixed sequence.
    #[must_use]
    pub fn new(insts: Vec<Inst>) -> Self {
        VecWorkload { insts: insts.into_iter() }
    }

    /// Repeats `body` `times` times, so short kernels can fill a window.
    #[must_use]
    pub fn repeated(body: &[Inst], times: usize) -> Self {
        let mut v = Vec::with_capacity(body.len() * times);
        for _ in 0..times {
            v.extend_from_slice(body);
        }
        VecWorkload::new(v)
    }
}

impl Iterator for VecWorkload {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        self.insts.next()
    }
}

/// Relocates a workload into a private address space — used to run
/// several workloads as SMT threads without false sharing of code or
/// data addresses.
///
/// Program counters (and branch targets) shift by `pc_offset`; data
/// addresses by `data_offset`.
///
/// # Examples
///
/// ```
/// use chainiq_workload::{AddressSpace, Bench, SyntheticWorkload};
///
/// let t1 = AddressSpace::new(
///     SyntheticWorkload::from_profile(Bench::Swim.profile(), 1),
///     0x0100_0000_0000,
///     0x0100_0000_0000,
/// );
/// let first = t1.take(1).next().unwrap();
/// assert!(first.pc >= 0x0100_0000_0000);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace<W> {
    inner: W,
    pc_offset: u64,
    data_offset: u64,
}

impl<W> AddressSpace<W> {
    /// Wraps `inner`, shifting code by `pc_offset` and data by
    /// `data_offset`.
    #[must_use]
    pub fn new(inner: W, pc_offset: u64, data_offset: u64) -> Self {
        AddressSpace { inner, pc_offset, data_offset }
    }
}

impl<W: Iterator<Item = Inst>> Iterator for AddressSpace<W> {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        let mut inst = self.inner.next()?;
        inst.pc += self.pc_offset;
        if let Some(m) = &mut inst.mem {
            m.addr += self.data_offset;
        }
        if let Some(b) = &mut inst.branch {
            b.target += self.pc_offset;
        }
        Some(inst)
    }
}

/// Instruction-mix summary of a stream prefix, for calibration tests and
/// the workload benches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MixSummary {
    /// Total instructions summarized.
    pub total: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional + unconditional branches.
    pub branches: u64,
    /// FP arithmetic ops.
    pub fp_ops: u64,
    /// Integer arithmetic ops.
    pub int_ops: u64,
    /// Fraction of branches resolved taken.
    pub taken_frac: f64,
}

impl MixSummary {
    /// Summarizes the first `n` instructions of `stream`.
    pub fn measure(stream: &mut impl Iterator<Item = Inst>, n: u64) -> MixSummary {
        let mut s = MixSummary::default();
        let mut taken = 0u64;
        for inst in stream.take(n as usize) {
            s.total += 1;
            match inst.op {
                OpClass::Load => s.loads += 1,
                OpClass::Store => s.stores += 1,
                OpClass::Branch => {
                    s.branches += 1;
                    if inst.branch.map(|b| b.taken).unwrap_or(false) {
                        taken += 1;
                    }
                }
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => {
                    s.fp_ops += 1;
                }
                OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => s.int_ops += 1,
            }
        }
        s.taken_frac = if s.branches == 0 { 0.0 } else { taken as f64 / s.branches as f64 };
        s
    }

    /// Loads as a fraction of all instructions.
    #[must_use]
    pub fn load_frac(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.loads as f64 / self.total as f64
        }
    }

    /// Branches as a fraction of all instructions.
    #[must_use]
    pub fn branch_frac(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.branches as f64 / self.total as f64
        }
    }
}

impl chainiq_ckpt::Snapshot for SyntheticWorkload {
    const COMPONENT: &'static str = "workload.synthetic";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.name.pack(w);
        self.kernels.pack(w);
        self.rotation.pack(w);
        self.rotation_pos.pack(w);
        self.burst_iterations.pack(w);
        self.rng.pack(w);
        self.buffer.pack(w);
        self.emitted.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        self.name = Pack::unpack(r)?;
        self.kernels = Pack::unpack(r)?;
        let rotation: Vec<usize> = Pack::unpack(r)?;
        let rotation_pos: usize = Pack::unpack(r)?;
        if rotation.is_empty() || rotation_pos >= rotation.len() {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!(
                    "workload rotation position {rotation_pos} in rotation of {}",
                    rotation.len()
                ),
            });
        }
        if rotation.iter().any(|&idx| idx >= self.kernels.len()) {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "workload rotation indexes a missing phase".to_string(),
            });
        }
        self.rotation = rotation;
        self.rotation_pos = rotation_pos;
        self.burst_iterations = Pack::unpack(r)?;
        if self.burst_iterations.len() != self.kernels.len() {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "workload burst table does not match phase count".to_string(),
            });
        }
        self.rng = Pack::unpack(r)?;
        self.buffer = Pack::unpack(r)?;
        self.emitted = Pack::unpack(r)?;
        Ok(())
    }
}

impl chainiq_ckpt::Snapshot for VecWorkload {
    const COMPONENT: &'static str = "workload.vec";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.insts.as_slice().to_vec().pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        let remaining: Vec<Inst> = chainiq_ckpt::Pack::unpack(r)?;
        self.insts = remaining.into_iter();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Bench;

    #[test]
    fn stream_is_infinite_and_deterministic() {
        let a: Vec<Inst> =
            SyntheticWorkload::from_profile(Bench::Equake.profile(), 9).take(5000).collect();
        let b: Vec<Inst> =
            SyntheticWorkload::from_profile(Bench::Equake.profile(), 9).take(5000).collect();
        assert_eq!(a.len(), 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ_for_random_kernels() {
        let a: Vec<Inst> =
            SyntheticWorkload::from_profile(Bench::Gcc.profile(), 1).take(5000).collect();
        let b: Vec<Inst> =
            SyntheticWorkload::from_profile(Bench::Gcc.profile(), 2).take(5000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn phases_use_disjoint_memory_regions() {
        let insts: Vec<Inst> =
            SyntheticWorkload::from_profile(Bench::Swim.profile(), 3).take(20_000).collect();
        // Two phases: region bases differ by REGION_SPACING.
        let mut in_first = false;
        let mut in_second = false;
        for i in insts.iter().filter_map(|i| i.mem) {
            if i.addr < DATA_BASE + REGION_SPACING {
                in_first = true;
            } else {
                in_second = true;
            }
        }
        assert!(in_first && in_second);
    }

    #[test]
    fn every_bench_mix_is_sane() {
        for b in Bench::ALL {
            let mut w = SyntheticWorkload::from_profile(b.profile(), 7);
            let mix = MixSummary::measure(&mut w, 30_000);
            assert_eq!(mix.total, 30_000);
            assert!(mix.load_frac() > 0.05, "{b}: load fraction {}", mix.load_frac());
            assert!(mix.load_frac() < 0.6, "{b}: load fraction {}", mix.load_frac());
            assert!(mix.branch_frac() > 0.02, "{b}: branch fraction {}", mix.branch_frac());
            assert!(mix.branch_frac() < 0.45, "{b}: branch fraction {}", mix.branch_frac());
        }
    }

    #[test]
    fn fp_benchmarks_have_fp_work() {
        for b in [Bench::Swim, Bench::Mgrid, Bench::Applu, Bench::Equake, Bench::Ammp] {
            let mut w = SyntheticWorkload::from_profile(b.profile(), 7);
            let mix = MixSummary::measure(&mut w, 30_000);
            assert!(mix.fp_ops > 0, "{b} should contain FP ops");
        }
    }

    #[test]
    fn int_benchmarks_have_little_fp() {
        for b in [Bench::Gcc, Bench::Twolf, Bench::Vortex] {
            let mut w = SyntheticWorkload::from_profile(b.profile(), 7);
            let mix = MixSummary::measure(&mut w, 30_000);
            assert!(
                (mix.fp_ops as f64) < 0.05 * mix.total as f64,
                "{b} should be integer-dominated"
            );
        }
    }

    #[test]
    fn branchy_benchmarks_are_branch_dense() {
        let mut gcc = SyntheticWorkload::from_profile(Bench::Gcc.profile(), 7);
        let gcc_mix = MixSummary::measure(&mut gcc, 30_000);
        let mut swim = SyntheticWorkload::from_profile(Bench::Swim.profile(), 7);
        let swim_mix = MixSummary::measure(&mut swim, 30_000);
        assert!(gcc_mix.branch_frac() > 2.0 * swim_mix.branch_frac());
    }

    #[test]
    fn vec_workload_repeats() {
        let body = vec![Inst::alu(0, chainiq_isa::ArchReg::int(1), &[])];
        let w = VecWorkload::repeated(&body, 5);
        assert_eq!(w.count(), 5);
    }

    #[test]
    fn snapshot_restores_the_exact_stream() {
        use chainiq_ckpt::{Reader, Snapshot, Writer};
        let mut cont = SyntheticWorkload::from_profile(Bench::Equake.profile(), 9);
        let _ = cont.by_ref().take(1000).count();
        let mut w = Writer::new();
        cont.save(&mut w);
        let bytes = w.into_bytes();
        // Restore into a generator for a *different* profile/seed: every
        // piece of mutable state must be overwritten.
        let mut restored = SyntheticWorkload::from_profile(Bench::Gcc.profile(), 1);
        restored.restore(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.emitted(), 1000);
        let a: Vec<Inst> = cont.take(2000).collect();
        let b: Vec<Inst> = restored.take(2000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn vec_workload_snapshot_resumes_mid_stream() {
        use chainiq_ckpt::{Reader, Snapshot, Writer};
        let body = vec![
            Inst::alu(0, chainiq_isa::ArchReg::int(1), &[]),
            Inst::load(4, chainiq_isa::ArchReg::int(2), chainiq_isa::ArchReg::int(1), 0x100),
        ];
        let mut cont = VecWorkload::repeated(&body, 10);
        let _ = cont.by_ref().take(7).count();
        let mut w = Writer::new();
        cont.save(&mut w);
        let bytes = w.into_bytes();
        let mut restored = VecWorkload::new(Vec::new());
        restored.restore(&mut Reader::new(&bytes)).unwrap();
        let a: Vec<Inst> = cont.collect();
        let b: Vec<Inst> = restored.collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 13);
    }

    #[test]
    fn emitted_counts_yields() {
        let mut w = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 1);
        let _ = w.by_ref().take(123).count();
        assert_eq!(w.emitted(), 123);
    }
}
