//! Loop kernels: the building blocks of synthetic benchmark profiles.

use chainiq_isa::{Inst, OpClass};
use chainiq_rng::Rng;

/// Declarative description of one loop kernel.
///
/// Each kernel models a code shape that appears in the paper's benchmark
/// subset and stresses a different part of the machine:
///
/// * [`Stream`](KernelSpec::Stream) — unit/short-stride array traversal
///   with independent iterations: memory-level parallelism limited only
///   by the window (swim, applu).
/// * [`Stencil`](KernelSpec::Stencil) — multi-tap neighbourhood reads
///   with heavy line reuse and deep FP reduction trees per point (mgrid).
/// * [`Reduction`](KernelSpec::Reduction) — a loop-carried accumulator:
///   serial FP chain, little ILP regardless of window size.
/// * [`PointerChase`](KernelSpec::PointerChase) — serially dependent
///   loads (ammp's neighbour lists).
/// * [`Gather`](KernelSpec::Gather) — index load then data-dependent
///   indirect load into a large table (equake's sparse structures).
/// * [`Branchy`](KernelSpec::Branchy) — short integer ops guarded by
///   partially random conditional branches over a small working set
///   (gcc, twolf, vortex).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelSpec {
    /// Independent-iteration array streaming.
    Stream {
        /// Number of distinct arrays read each iteration.
        arrays: u8,
        /// Bytes per array before the cursor wraps.
        working_set: u64,
        /// Byte stride between iterations.
        stride: u64,
        /// FP ops combining the loaded values each iteration.
        fp_ops: u8,
        /// Whether each iteration ends with a store.
        store: bool,
    },
    /// Multi-tap stencil with line reuse.
    Stencil {
        /// Number of neighbouring loads per point.
        taps: u8,
        /// Bytes in the traversed grid.
        working_set: u64,
        /// Extra FP ops per point beyond the tap-combining tree.
        fp_ops: u8,
    },
    /// Serial loop-carried FP accumulation.
    Reduction {
        /// Bytes of the summed array.
        working_set: u64,
        /// Latency class of the accumulation op.
        fp_mul: bool,
    },
    /// Serially dependent loads through a linked structure.
    PointerChase {
        /// Number of nodes in the cycle being walked.
        nodes: u64,
        /// Bytes per node (spacing of node addresses).
        node_bytes: u64,
        /// Independent integer work ops per hop.
        work_per_hop: u8,
    },
    /// Index load followed by a data-dependent indirect load.
    Gather {
        /// Bytes in the randomly indexed table.
        table_bytes: u64,
        /// Bytes in the sequentially read index array.
        index_bytes: u64,
        /// FP ops consuming the gathered value.
        fp_ops: u8,
    },
    /// Integer code with conditional branches.
    Branchy {
        /// Probability a *random* branch is taken.
        taken_prob: f64,
        /// Fraction of dynamic branches with random outcomes (the rest
        /// are always taken and thus predictable).
        random_frac: f64,
        /// Independent integer ops per iteration (ILP knob).
        work: u8,
        /// Bytes touched by the per-iteration load.
        working_set: u64,
    },
}

/// Runtime state for one kernel instance inside a generator.
#[derive(Debug, Clone)]
pub(crate) struct KernelState {
    spec: KernelSpec,
    /// First PC of the static loop body.
    pc_base: u64,
    /// Base byte address of this kernel's private memory region.
    region: u64,
    /// Iteration counter (drives cursors and index registers).
    iter: u64,
    /// Current pointer for `PointerChase`.
    chase_addr: u64,
}

/// Registers used by kernels. Every kernel uses the same architectural
/// names; phases run in long bursts, so cross-phase reuse only introduces
/// the occasional boundary dependence, as in real code.
mod regs {
    use chainiq_isa::ArchReg;

    pub fn index() -> ArchReg {
        ArchReg::int(1)
    }
    pub fn pointer() -> ArchReg {
        ArchReg::int(2)
    }
    pub fn gathered_index() -> ArchReg {
        ArchReg::int(3)
    }
    pub fn scratch(i: u8) -> ArchReg {
        ArchReg::int(4 + (i % 8))
    }
    pub fn fp(i: u8) -> ArchReg {
        ArchReg::fp(i % 30)
    }
    pub fn fp_acc() -> ArchReg {
        ArchReg::fp(30)
    }
}

impl KernelState {
    pub(crate) fn new(spec: KernelSpec, pc_base: u64, region: u64) -> Self {
        KernelState { spec, pc_base, region, iter: 0, chase_addr: region }
    }

    /// Emits the dynamic instructions of one loop iteration into `out`.
    /// `continue_loop` is the resolved outcome of the back-edge branch
    /// (taken = another iteration of this burst follows).
    pub(crate) fn emit_iteration(
        &mut self,
        continue_loop: bool,
        out: &mut Vec<Inst>,
        rng: &mut Rng,
    ) {
        let mut pc = PcCursor { next: self.pc_base };
        match self.spec {
            KernelSpec::Stream { arrays, working_set, stride, fp_ops, store } => {
                self.emit_stream(arrays, working_set, stride, fp_ops, store, &mut pc, out);
            }
            KernelSpec::Stencil { taps, working_set, fp_ops } => {
                self.emit_stencil(taps, working_set, fp_ops, &mut pc, out);
            }
            KernelSpec::Reduction { working_set, fp_mul } => {
                self.emit_reduction(working_set, fp_mul, &mut pc, out);
            }
            KernelSpec::PointerChase { nodes, node_bytes, work_per_hop } => {
                self.emit_pointer_chase(nodes, node_bytes, work_per_hop, &mut pc, out, rng);
            }
            KernelSpec::Gather { table_bytes, index_bytes, fp_ops } => {
                self.emit_gather(table_bytes, index_bytes, fp_ops, &mut pc, out, rng);
            }
            KernelSpec::Branchy { taken_prob, random_frac, work, working_set } => {
                self.emit_branchy(taken_prob, random_frac, work, working_set, &mut pc, out, rng);
            }
        }
        // Loop back-edge: taken while the burst continues.
        out.push(Inst::branch(pc.take(), Some(regs::index()), continue_loop, self.pc_base));
        self.iter += 1;
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_stream(
        &mut self,
        arrays: u8,
        working_set: u64,
        stride: u64,
        fp_ops: u8,
        store: bool,
        pc: &mut PcCursor,
        out: &mut Vec<Inst>,
    ) {
        let ri = regs::index();
        // i = i + 1 — the only loop-carried dependence.
        out.push(Inst::alu(pc.take(), ri, &[ri]));
        let offset = (self.iter * stride) % working_set.max(stride);
        let mut loaded = Vec::new();
        for a in 0..arrays {
            let dst = regs::fp(a);
            let addr = self.region + u64::from(a) * working_set + offset;
            out.push(Inst::load(pc.take(), dst, ri, addr));
            loaded.push(dst);
        }
        // Combine the loaded values with a short FP tree, then lengthen
        // the chain with fp_ops extra ops.
        let mut acc = loaded[0];
        for (k, &l) in loaded.iter().enumerate().skip(1) {
            let dst = regs::fp(arrays + k as u8);
            out.push(Inst::compute(pc.take(), OpClass::FpAdd, dst, &[acc, l]));
            acc = dst;
        }
        for k in 0..fp_ops {
            let dst = regs::fp(arrays * 2 + k);
            let op = if k % 2 == 0 { OpClass::FpMul } else { OpClass::FpAdd };
            // Two-source ops: the running value combined with one of the
            // loaded operands, as real FP kernels do. This is what makes
            // instructions with two outstanding operands (§4.3) common.
            let other = loaded[(k as usize) % loaded.len()];
            out.push(Inst::compute(pc.take(), op, dst, &[acc, other]));
            acc = dst;
        }
        if store {
            let addr = self.region + u64::from(arrays) * working_set + offset;
            out.push(Inst::store(pc.take(), acc, ri, addr));
        }
    }

    fn emit_stencil(
        &mut self,
        taps: u8,
        working_set: u64,
        fp_ops: u8,
        pc: &mut PcCursor,
        out: &mut Vec<Inst>,
    ) {
        let ri = regs::index();
        out.push(Inst::alu(pc.take(), ri, &[ri]));
        let elem = 8u64;
        let offset = (self.iter * elem) % working_set.max(elem);
        let mut loaded = Vec::new();
        for t in 0..taps {
            // Taps read the current element and its predecessors: heavy
            // line reuse, so most taps hit in the L1.
            let tap_off = offset.saturating_sub(u64::from(t) * elem);
            let dst = regs::fp(t);
            out.push(Inst::load(pc.take(), dst, ri, self.region + tap_off));
            loaded.push(dst);
        }
        let mut acc = loaded[0];
        for (k, &l) in loaded.iter().enumerate().skip(1) {
            let dst = regs::fp(taps + k as u8);
            out.push(Inst::compute(pc.take(), OpClass::FpAdd, dst, &[acc, l]));
            acc = dst;
        }
        for k in 0..fp_ops {
            let dst = regs::fp(taps * 2 + k);
            let op = if k % 3 == 0 { OpClass::FpMul } else { OpClass::FpAdd };
            let other = loaded[(k as usize) % loaded.len()];
            out.push(Inst::compute(pc.take(), op, dst, &[acc, other]));
            acc = dst;
        }
        // Write the stencil result one working set over.
        out.push(Inst::store(pc.take(), acc, ri, self.region + working_set + offset));
    }

    fn emit_reduction(
        &mut self,
        working_set: u64,
        fp_mul: bool,
        pc: &mut PcCursor,
        out: &mut Vec<Inst>,
    ) {
        let ri = regs::index();
        let acc = regs::fp_acc();
        out.push(Inst::alu(pc.take(), ri, &[ri]));
        let offset = (self.iter * 8) % working_set.max(8);
        let val = regs::fp(0);
        out.push(Inst::load(pc.take(), val, ri, self.region + offset));
        let op = if fp_mul { OpClass::FpMul } else { OpClass::FpAdd };
        // acc = acc (op) val — the serial loop-carried chain.
        out.push(Inst::compute(pc.take(), op, acc, &[acc, val]));
    }

    fn emit_pointer_chase(
        &mut self,
        nodes: u64,
        node_bytes: u64,
        work_per_hop: u8,
        pc: &mut PcCursor,
        out: &mut Vec<Inst>,
        rng: &mut Rng,
    ) {
        let rp = regs::pointer();
        // rp = *rp — serially dependent loads; the walk visits a random
        // node each hop (the trace resolves the address).
        out.push(Inst::load(pc.take(), rp, rp, self.chase_addr));
        let next = rng.gen_range(0..nodes.max(1));
        self.chase_addr = self.region + next * node_bytes;
        // Integer work hanging off the loaded pointer.
        for k in 0..work_per_hop {
            let dst = regs::scratch(k);
            if k == 0 {
                out.push(Inst::alu(pc.take(), dst, &[rp]));
            } else {
                out.push(Inst::alu(pc.take(), dst, &[rp, regs::scratch(k - 1)]));
            }
        }
        // Keep the loop counter alive for the back edge.
        out.push(Inst::alu(pc.take(), regs::index(), &[regs::index()]));
    }

    fn emit_gather(
        &mut self,
        table_bytes: u64,
        index_bytes: u64,
        fp_ops: u8,
        pc: &mut PcCursor,
        out: &mut Vec<Inst>,
        rng: &mut Rng,
    ) {
        let ri = regs::index();
        let rj = regs::gathered_index();
        out.push(Inst::alu(pc.take(), ri, &[ri]));
        // Sequential index load (small stride: usually an L1 hit).
        let idx_off = (self.iter * 8) % index_bytes.max(8);
        out.push(Inst::load(pc.take(), rj, ri, self.region + idx_off));
        // Indirect gather into the big table at a random element.
        let elems = (table_bytes / 8).max(1);
        let gathered = self.region + index_bytes + rng.gen_range(0..elems) * 8;
        let val = regs::fp(0);
        out.push(Inst::load(pc.take(), val, rj, gathered));
        let mut acc = val;
        for k in 0..fp_ops {
            let dst = regs::fp(1 + k);
            let op = if k % 2 == 0 { OpClass::FpMul } else { OpClass::FpAdd };
            out.push(Inst::compute(pc.take(), op, dst, &[acc, val]));
            acc = dst;
        }
        // Scatter the result back near the index position.
        out.push(Inst::store(pc.take(), acc, ri, self.region + idx_off));
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_branchy(
        &mut self,
        taken_prob: f64,
        random_frac: f64,
        work: u8,
        working_set: u64,
        pc: &mut PcCursor,
        out: &mut Vec<Inst>,
        rng: &mut Rng,
    ) {
        let ri = regs::index();
        let ra = regs::scratch(0);
        let rb = regs::scratch(1);
        out.push(Inst::alu(pc.take(), ri, &[ri]));
        // A small-working-set load feeding the branch condition.
        let offset = (self.iter.wrapping_mul(24)) % working_set.max(8);
        out.push(Inst::load(pc.take(), ra, ri, self.region + offset));
        out.push(Inst::alu(pc.take(), rb, &[ra]));
        // Data-dependent branch over a two-instruction then-block.
        let br_pc = pc.take();
        let then0 = pc.take();
        let then1 = pc.take();
        let join = pc.peek();
        let taken = if rng.gen_bool(random_frac) {
            rng.gen_bool(taken_prob)
        } else {
            true // the predictable majority
        };
        out.push(Inst::branch(br_pc, Some(rb), taken, join));
        if !taken {
            out.push(Inst::alu(then0, regs::scratch(2), &[rb]));
            out.push(Inst::alu(then1, regs::scratch(3), &[regs::scratch(2)]));
        }
        // Work with limited dependence height: two-source integer ops.
        // The first op of each group pairs this iteration's load with the
        // previous iteration's result — a loop-carried cross-chain pair,
        // the common source of two-outstanding-operand instructions
        // (§4.3).
        for k in 0..work {
            let dst = regs::scratch(4 + (k % 4));
            if k % 4 == 0 {
                out.push(Inst::alu(pc.take(), dst, &[ra, regs::scratch(7)]));
            } else {
                out.push(Inst::alu(pc.take(), dst, &[regs::scratch(4 + ((k - 1) % 4)), rb]));
            }
        }
    }
}

/// Sequential PC assignment within one static loop body.
struct PcCursor {
    next: u64,
}

impl PcCursor {
    fn take(&mut self) -> u64 {
        let pc = self.next;
        self.next += 4;
        pc
    }

    fn peek(&self) -> u64 {
        self.next
    }
}

impl chainiq_ckpt::Pack for KernelSpec {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        match *self {
            KernelSpec::Stream { arrays, working_set, stride, fp_ops, store } => {
                w.put_u8(0);
                arrays.pack(w);
                working_set.pack(w);
                stride.pack(w);
                fp_ops.pack(w);
                store.pack(w);
            }
            KernelSpec::Stencil { taps, working_set, fp_ops } => {
                w.put_u8(1);
                taps.pack(w);
                working_set.pack(w);
                fp_ops.pack(w);
            }
            KernelSpec::Reduction { working_set, fp_mul } => {
                w.put_u8(2);
                working_set.pack(w);
                fp_mul.pack(w);
            }
            KernelSpec::PointerChase { nodes, node_bytes, work_per_hop } => {
                w.put_u8(3);
                nodes.pack(w);
                node_bytes.pack(w);
                work_per_hop.pack(w);
            }
            KernelSpec::Gather { table_bytes, index_bytes, fp_ops } => {
                w.put_u8(4);
                table_bytes.pack(w);
                index_bytes.pack(w);
                fp_ops.pack(w);
            }
            KernelSpec::Branchy { taken_prob, random_frac, work, working_set } => {
                w.put_u8(5);
                taken_prob.pack(w);
                random_frac.pack(w);
                work.pack(w);
                working_set.pack(w);
            }
        }
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(match r.take_u8("kernel spec tag")? {
            0 => KernelSpec::Stream {
                arrays: Pack::unpack(r)?,
                working_set: Pack::unpack(r)?,
                stride: Pack::unpack(r)?,
                fp_ops: Pack::unpack(r)?,
                store: Pack::unpack(r)?,
            },
            1 => KernelSpec::Stencil {
                taps: Pack::unpack(r)?,
                working_set: Pack::unpack(r)?,
                fp_ops: Pack::unpack(r)?,
            },
            2 => KernelSpec::Reduction { working_set: Pack::unpack(r)?, fp_mul: Pack::unpack(r)? },
            3 => KernelSpec::PointerChase {
                nodes: Pack::unpack(r)?,
                node_bytes: Pack::unpack(r)?,
                work_per_hop: Pack::unpack(r)?,
            },
            4 => KernelSpec::Gather {
                table_bytes: Pack::unpack(r)?,
                index_bytes: Pack::unpack(r)?,
                fp_ops: Pack::unpack(r)?,
            },
            5 => KernelSpec::Branchy {
                taken_prob: Pack::unpack(r)?,
                random_frac: Pack::unpack(r)?,
                work: Pack::unpack(r)?,
                working_set: Pack::unpack(r)?,
            },
            other => {
                return Err(chainiq_ckpt::CkptError::Corrupt {
                    context: format!("kernel spec tag {other}"),
                });
            }
        })
    }
}

impl chainiq_ckpt::Pack for KernelState {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.spec.pack(w);
        self.pc_base.pack(w);
        self.region.pack(w);
        self.iter.pack(w);
        self.chase_addr.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(KernelState {
            spec: Pack::unpack(r)?,
            pc_base: Pack::unpack(r)?,
            region: Pack::unpack(r)?,
            iter: Pack::unpack(r)?,
            chase_addr: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(spec: KernelSpec, iters: u64) -> Vec<Inst> {
        let mut state = KernelState::new(spec, 0x1000, 0x10_0000);
        let mut rng = Rng::seed_from_u64(7);
        let mut out = Vec::new();
        for i in 0..iters {
            state.emit_iteration(i + 1 < iters, &mut out, &mut rng);
        }
        out
    }

    #[test]
    fn stream_emits_expected_shape() {
        let insts = run(
            KernelSpec::Stream { arrays: 2, working_set: 4096, stride: 8, fp_ops: 2, store: true },
            1,
        );
        // add, 2 loads, 1 combine, 2 fp ops, store, backedge.
        assert_eq!(insts.len(), 8);
        assert_eq!(insts.iter().filter(|i| i.is_load()).count(), 2);
        assert_eq!(insts.iter().filter(|i| i.is_store()).count(), 1);
        assert!(insts.last().unwrap().is_branch());
    }

    #[test]
    fn stream_iterations_are_independent_in_memory() {
        let insts = run(
            KernelSpec::Stream {
                arrays: 1,
                working_set: 1 << 20,
                stride: 64,
                fp_ops: 0,
                store: false,
            },
            4,
        );
        let addrs: Vec<u64> =
            insts.iter().filter(|i| i.is_load()).map(|i| i.mem.unwrap().addr).collect();
        assert_eq!(addrs.len(), 4);
        for w in addrs.windows(2) {
            assert_eq!(w[1] - w[0], 64, "stride must advance per iteration");
        }
    }

    #[test]
    fn stream_wraps_at_working_set() {
        let insts = run(
            KernelSpec::Stream { arrays: 1, working_set: 128, stride: 64, fp_ops: 0, store: false },
            3,
        );
        let addrs: Vec<u64> =
            insts.iter().filter(|i| i.is_load()).map(|i| i.mem.unwrap().addr).collect();
        assert_eq!(addrs[0], addrs[2], "cursor must wrap at the working set");
    }

    #[test]
    fn backedge_taken_except_last() {
        let insts = run(KernelSpec::Reduction { working_set: 4096, fp_mul: false }, 3);
        let branches: Vec<bool> =
            insts.iter().filter(|i| i.is_branch()).map(|i| i.branch.unwrap().taken).collect();
        assert_eq!(branches, vec![true, true, false]);
    }

    #[test]
    fn reduction_has_loop_carried_fp_chain() {
        let insts = run(KernelSpec::Reduction { working_set: 4096, fp_mul: true }, 2);
        let accs: Vec<&Inst> = insts.iter().filter(|i| i.op == OpClass::FpMul).collect();
        assert_eq!(accs.len(), 2);
        // The accumulator is both source and destination.
        for a in accs {
            assert!(a.srcs().contains(&a.dest.unwrap()));
        }
    }

    #[test]
    fn pointer_chase_loads_depend_on_themselves() {
        let insts = run(KernelSpec::PointerChase { nodes: 64, node_bytes: 64, work_per_hop: 2 }, 3);
        let loads: Vec<&Inst> = insts.iter().filter(|i| i.is_load()).collect();
        assert_eq!(loads.len(), 3);
        for l in &loads {
            assert_eq!(l.dest, l.src1, "rp = *rp");
        }
        // Addresses stay within the node region.
        for l in &loads {
            let a = l.mem.unwrap().addr;
            assert!((0x10_0000..0x10_0000 + 64 * 64).contains(&a));
        }
    }

    #[test]
    fn gather_second_load_depends_on_first() {
        let insts =
            run(KernelSpec::Gather { table_bytes: 1 << 20, index_bytes: 4096, fp_ops: 1 }, 1);
        let loads: Vec<&Inst> = insts.iter().filter(|i| i.is_load()).collect();
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[1].src1, loads[0].dest, "gather address depends on index load");
    }

    #[test]
    fn branchy_skips_then_block_when_taken() {
        // With random_frac = 1.0 and taken_prob = 1.0 every branch is taken.
        let taken = run(
            KernelSpec::Branchy { taken_prob: 1.0, random_frac: 1.0, work: 1, working_set: 4096 },
            1,
        );
        let not_taken = run(
            KernelSpec::Branchy { taken_prob: 0.0, random_frac: 1.0, work: 1, working_set: 4096 },
            1,
        );
        assert_eq!(not_taken.len(), taken.len() + 2, "fall-through executes the then-block");
    }

    #[test]
    fn branchy_mid_branch_targets_join_point() {
        let insts = run(
            KernelSpec::Branchy { taken_prob: 1.0, random_frac: 1.0, work: 0, working_set: 4096 },
            1,
        );
        let mid = insts.iter().find(|i| i.is_branch() && i.branch.unwrap().taken).unwrap();
        // Skips exactly the two then-block slots.
        assert_eq!(mid.branch.unwrap().target, mid.pc + 4 * 3);
    }

    #[test]
    fn pcs_are_stable_across_iterations() {
        let insts = run(
            KernelSpec::Stream { arrays: 1, working_set: 4096, stride: 8, fp_ops: 1, store: false },
            2,
        );
        let per_iter = insts.len() / 2;
        for k in 0..per_iter {
            assert_eq!(insts[k].pc, insts[k + per_iter].pc, "static PCs must repeat");
        }
    }
}
