//! The scheduling contract every instruction-queue design implements.

use chainiq_isa::{Cycle, OpClass};

use crate::fu::FuPool;
use crate::tag::{DispatchInfo, DispatchStall, InstTag};

/// An instruction selected for issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedInst {
    /// Identity of the issued instruction.
    pub tag: InstTag,
    /// Its op class (so the pipeline can route loads/stores to the LSQ).
    pub op: OpClass,
}

/// Counters every queue design reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IqStats {
    /// Instructions accepted at dispatch.
    pub dispatched: u64,
    /// Instructions issued to function units.
    pub issued: u64,
    /// Dispatch attempts rejected because the queue was full.
    pub stalls_full: u64,
    /// Dispatch attempts rejected because no chain wire was free.
    pub stalls_no_chain: u64,
    /// Sum over cycles of queue occupancy (divide by cycles for the mean).
    pub occupancy_accum: u64,
    /// Cycles observed (tick count).
    pub cycles: u64,
}

impl IqStats {
    /// Mean queue occupancy over the observed cycles.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_accum as f64 / self.cycles as f64
        }
    }
}

/// A dynamically scheduled instruction queue.
///
/// The pipeline drives every design through the same five-step cycle:
///
/// 1. [`tick`](IssueQueue::tick) — advance internal state (segment
///    promotion, chain-wire propagation, prescheduling-array shift, …).
/// 2. [`select_issue`](IssueQueue::select_issue) — pick ready
///    instructions, bounded by the function-unit pool. Selected entries
///    leave the queue.
/// 3. [`announce_ready`](IssueQueue::announce_ready) — the pipeline
///    reports when each issued instruction's result will be available,
///    waking dependents (the wakeup broadcast).
/// 4. [`dispatch`](IssueQueue::dispatch) — insert newly renamed
///    instructions, which may stall.
/// 5. [`on_writeback`](IssueQueue::on_writeback) plus the load hooks —
///    lifecycle notifications that the segmented design uses for chain
///    release and the suspend/resume signals of §3.4.
///
/// Implementors: [`SegmentedIq`](crate::SegmentedIq) here, and the ideal
/// monolithic and prescheduling queues in `chainiq-baseline`.
pub trait IssueQueue {
    /// Total instruction slots.
    fn capacity(&self) -> usize;

    /// Instructions currently buffered.
    fn occupancy(&self) -> usize;

    /// Whether the queue holds no instructions.
    fn is_empty(&self) -> bool {
        self.occupancy() == 0
    }

    /// Advances one cycle. `execution_idle` is true when no instruction
    /// is currently executing in the backend — an input to the deadlock
    /// detector of §4.5 (other designs may ignore it).
    fn tick(&mut self, now: Cycle, execution_idle: bool);

    /// Attempts to insert one renamed instruction.
    ///
    /// # Errors
    ///
    /// Returns the stall reason without accepting the instruction; the
    /// dispatch stage retries next cycle.
    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall>;

    /// Selects ready instructions for issue at `now`, claiming function
    /// units from `fus`. Selected entries are removed from the queue.
    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst>;

    /// Reports that `producer`'s result will be usable by consumers
    /// issuing at `ready_at` or later.
    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle);

    /// A chain-head load was found to miss the L1 (suspends its chain's
    /// self-timing, §3.4). Default: ignored.
    fn on_load_miss(&mut self, _tag: InstTag) {}

    /// A previously missing load's fill arrived (resumes the chain).
    /// Default: ignored.
    fn on_load_fill(&mut self, _tag: InstTag) {}

    /// `tag` wrote its result back — chains headed by it are released.
    /// Default: ignored.
    fn on_writeback(&mut self, _tag: InstTag) {}

    /// Removes every buffered instruction (pipeline squash).
    fn flush(&mut self);

    /// Common statistics.
    fn stats(&self) -> IqStats;
}

impl<Q: IssueQueue + ?Sized> IssueQueue for Box<Q> {
    fn capacity(&self) -> usize {
        (**self).capacity()
    }
    fn occupancy(&self) -> usize {
        (**self).occupancy()
    }
    fn tick(&mut self, now: Cycle, execution_idle: bool) {
        (**self).tick(now, execution_idle);
    }
    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall> {
        (**self).dispatch(now, info)
    }
    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst> {
        (**self).select_issue(now, fus)
    }
    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle) {
        (**self).announce_ready(producer, ready_at);
    }
    fn on_load_miss(&mut self, tag: InstTag) {
        (**self).on_load_miss(tag);
    }
    fn on_load_fill(&mut self, tag: InstTag) {
        (**self).on_load_fill(tag);
    }
    fn on_writeback(&mut self, tag: InstTag) {
        (**self).on_writeback(tag);
    }
    fn flush(&mut self) {
        (**self).flush();
    }
    fn stats(&self) -> IqStats {
        (**self).stats()
    }
}

impl chainiq_ckpt::Pack for IssuedInst {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.op.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(IssuedInst { tag: Pack::unpack(r)?, op: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for IqStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.dispatched.pack(w);
        self.issued.pack(w);
        self.stalls_full.pack(w);
        self.stalls_no_chain.pack(w);
        self.occupancy_accum.pack(w);
        self.cycles.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(IqStats {
            dispatched: Pack::unpack(r)?,
            issued: Pack::unpack(r)?,
            stalls_full: Pack::unpack(r)?,
            stalls_no_chain: Pack::unpack(r)?,
            occupancy_accum: Pack::unpack(r)?,
            cycles: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_occupancy_handles_zero_cycles() {
        assert_eq!(IqStats::default().mean_occupancy(), 0.0);
    }

    #[test]
    fn mean_occupancy_divides() {
        let s = IqStats { occupancy_accum: 100, cycles: 25, ..IqStats::default() };
        assert_eq!(s.mean_occupancy(), 4.0);
    }
}
