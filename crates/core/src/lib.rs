//! The segmented instruction queue with dependence chains — the primary
//! contribution of *"A Scalable Instruction Queue Design Using Dependence
//! Chains"* (Raasch, Binkert & Reinhardt, ISCA 2002).
//!
//! # The design in one paragraph
//!
//! A large instruction queue is split into a vertical pipeline of small
//! *segments*; only the bottom segment (segment 0, the *issue buffer*)
//! issues to function units. Every queued instruction carries a *delay
//! value* — its expected distance, in cycles, from being ready — and may
//! promote into the next lower segment only when its delay value is below
//! that segment's *threshold* (2, 4, 6, … from the bottom). Delay values
//! are maintained cheaply through *dependence chains*: subtrees of the
//! data dependence graph rooted at a (typically variable-latency) *chain
//! head*. Heads broadcast their promotions/issue on one-hot, pipelined
//! *chain wires*; members react by decrementing their delay values, and
//! switch to *self-timed* countdown once their head issues. A cache miss
//! suspends a chain's self-timing until the fill returns, which is what
//! lets the design tolerate unpredictable latencies that defeat
//! quasi-static prescheduling schemes.
//!
//! # Crate layout
//!
//! * [`SegmentedIq`] — the queue itself, with all of the paper's §4
//!   enhancements (pushdown, dispatch bypass, operand and hit/miss
//!   predictor hooks, deadlock recovery) individually configurable via
//!   [`SegmentedIqConfig`].
//! * [`IssueQueue`] — the scheduling contract shared with the baseline
//!   designs in `chainiq-baseline`, so the pipeline in `chainiq-cpu` is
//!   generic over the IQ design exactly as the paper's evaluation is.
//! * [`FuPool`] — Table 1's function units (8 of each kind; divide and
//!   square root unpipelined).
//!
//! # Examples
//!
//! Dispatch two dependent instructions and watch the dependent issue
//! after its producer:
//!
//! ```
//! use chainiq_core::{DispatchInfo, FuPool, InstTag, IssueQueue, SegmentedIq,
//!                    SegmentedIqConfig, SrcOperand};
//! use chainiq_isa::{ArchReg, OpClass};
//!
//! let mut iq = SegmentedIq::new(SegmentedIqConfig::small_for_tests());
//! let mut fus = FuPool::table1();
//!
//! let producer = InstTag(0);
//! iq.dispatch(0, DispatchInfo::compute(producer, OpClass::IntAlu, ArchReg::int(1), &[]))
//!     .unwrap();
//! let consumer = DispatchInfo::compute(
//!     InstTag(1),
//!     OpClass::IntAlu,
//!     ArchReg::int(2),
//!     &[SrcOperand { reg: ArchReg::int(1), producer: Some(producer), known_ready_at: None }],
//! );
//! iq.dispatch(0, consumer).unwrap();
//!
//! let mut issued = Vec::new();
//! for now in 1..20u64 {
//!     iq.tick(now, issued.is_empty());
//!     for sel in iq.select_issue(now, &mut fus) {
//!         // Announce the result timing so dependents wake up.
//!         iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
//!         issued.push(sel.tag);
//!     }
//!     fus.next_cycle();
//! }
//! assert_eq!(issued, vec![InstTag(0), InstTag(1)]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bitset;
mod chain;
mod fu;
mod queue;
mod regtable;
mod segmented;
pub mod slab_list;
mod stats;
mod tag;
mod tagmap;
mod wheel;

pub use chain::{ChainRef, ChainStats};
pub use fu::FuPool;
pub use queue::{IqStats, IssueQueue, IssuedInst};
pub use segmented::{SegmentedIq, SegmentedIqConfig};
pub use stats::SegmentedStats;
pub use tag::{DispatchInfo, DispatchStall, InstTag, OperandPick, SrcOperand};
pub use tagmap::TagMap;
pub use wheel::Wheel;
