//! Instruction identities and the dispatch-time information handed to an
//! issue queue.

use chainiq_isa::{ArchReg, Cycle, OpClass};

/// Identity of one in-flight dynamic instruction.
///
/// Tags are assigned in program order by the rename stage and double as
/// the age ordering (smaller = older) and as the wakeup tag that a
/// producer broadcasts — each instruction has at most one destination, so
/// the tag is equivalent to a physical-register tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstTag(pub u64);

impl std::fmt::Display for InstTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One renamed source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrcOperand {
    /// The architectural register read.
    pub reg: ArchReg,
    /// Producing in-flight instruction, or `None` when the value comes
    /// from the committed register file.
    pub producer: Option<InstTag>,
    /// The producer's announced completion time, if already known at
    /// dispatch (`None` = wait for the wakeup broadcast).
    pub known_ready_at: Option<Cycle>,
}

impl SrcOperand {
    /// An operand whose value is available immediately.
    #[must_use]
    pub fn ready(reg: ArchReg) -> Self {
        SrcOperand { reg, producer: None, known_ready_at: Some(0) }
    }
}

/// Which operand the left/right predictor picked as critical.
///
/// Mirrors `chainiq_predict::Operand` without creating a dependency
/// between the core crate and the predictor crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandPick {
    /// First source operand.
    Left,
    /// Second source operand.
    Right,
}

/// Everything an issue queue needs to accept one instruction at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchInfo {
    /// Program-order identity (and wakeup tag).
    pub tag: InstTag,
    /// Operation class (determines function unit and latency).
    pub op: OpClass,
    /// Destination register, if any.
    pub dest: Option<ArchReg>,
    /// Renamed source operands.
    pub srcs: [Option<SrcOperand>; 2],
    /// Hit/miss predictor verdict for loads (`true` = predicted L1 hit,
    /// so the segmented IQ may skip creating a chain; ignored for
    /// non-loads). Without an HMP the pipeline passes `false` for every
    /// load, reproducing the paper's base chain-per-load policy.
    pub predicted_hit: bool,
    /// Left/right-predictor pick, when the queue is configured to follow
    /// a single chain (§4.3). `None` means the queue may track two
    /// chains (the base configuration).
    pub lrp_pick: Option<OperandPick>,
    /// Hardware thread context (SMT). Register names are per-context;
    /// queue designs keep one register-information/timing table per
    /// thread. Single-threaded runs use 0.
    pub thread: u8,
}

impl DispatchInfo {
    /// Convenience constructor for a computational instruction.
    ///
    /// # Panics
    ///
    /// Panics if more than two sources are given.
    #[must_use]
    pub fn compute(tag: InstTag, op: OpClass, dest: ArchReg, srcs: &[SrcOperand]) -> Self {
        assert!(srcs.len() <= 2, "at most two source operands");
        DispatchInfo {
            tag,
            op,
            dest: Some(dest),
            srcs: [srcs.first().copied(), srcs.get(1).copied()],
            predicted_hit: false,
            lrp_pick: None,
            thread: 0,
        }
    }

    /// Convenience constructor for a load.
    #[must_use]
    pub fn load(tag: InstTag, dest: ArchReg, addr_src: SrcOperand, predicted_hit: bool) -> Self {
        DispatchInfo {
            tag,
            op: OpClass::Load,
            dest: Some(dest),
            srcs: [Some(addr_src), None],
            predicted_hit,
            lrp_pick: None,
            thread: 0,
        }
    }

    /// Number of sources present.
    #[must_use]
    pub fn num_srcs(&self) -> usize {
        self.srcs.iter().flatten().count()
    }

    /// Execution latency on the function unit.
    #[must_use]
    pub fn exec_latency(&self) -> u32 {
        self.op.exec_latency()
    }
}

/// Why a dispatch could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchStall {
    /// No instruction slot available in the receiving segment/queue.
    QueueFull,
    /// The instruction must head a new chain but no chain wire is free
    /// (§3.4: the dispatch stage stalls).
    NoChainWire,
}

impl std::fmt::Display for DispatchStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchStall::QueueFull => f.write_str("instruction queue full"),
            DispatchStall::NoChainWire => f.write_str("no free chain wire"),
        }
    }
}

impl std::error::Error for DispatchStall {}

impl chainiq_ckpt::Pack for InstTag {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.0.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(InstTag(Pack::unpack(r)?))
    }
}

impl chainiq_ckpt::Pack for SrcOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.reg.pack(w);
        self.producer.pack(w);
        self.known_ready_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(SrcOperand {
            reg: Pack::unpack(r)?,
            producer: Pack::unpack(r)?,
            known_ready_at: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for OperandPick {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        w.put_u8(match self {
            OperandPick::Left => 0,
            OperandPick::Right => 1,
        });
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        match r.take_u8("operand pick tag")? {
            0 => Ok(OperandPick::Left),
            1 => Ok(OperandPick::Right),
            t => Err(chainiq_ckpt::CkptError::Corrupt { context: format!("operand pick tag {t}") }),
        }
    }
}

impl chainiq_ckpt::Pack for DispatchInfo {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.op.pack(w);
        self.dest.pack(w);
        self.srcs.pack(w);
        self.predicted_hit.pack(w);
        self.lrp_pick.pack(w);
        self.thread.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(DispatchInfo {
            tag: Pack::unpack(r)?,
            op: Pack::unpack(r)?,
            dest: Pack::unpack(r)?,
            srcs: Pack::unpack(r)?,
            predicted_hit: Pack::unpack(r)?,
            lrp_pick: Pack::unpack(r)?,
            thread: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_order_by_age() {
        assert!(InstTag(3) < InstTag(5));
        assert_eq!(InstTag(7).to_string(), "#7");
    }

    #[test]
    fn compute_constructor_counts_sources() {
        let d = DispatchInfo::compute(
            InstTag(1),
            OpClass::FpMul,
            ArchReg::fp(0),
            &[SrcOperand::ready(ArchReg::fp(1))],
        );
        assert_eq!(d.num_srcs(), 1);
        assert_eq!(d.exec_latency(), 4);
        assert_eq!(d.lrp_pick, None);
    }

    #[test]
    fn load_constructor_sets_prediction() {
        let d = DispatchInfo::load(
            InstTag(2),
            ArchReg::int(1),
            SrcOperand::ready(ArchReg::int(2)),
            true,
        );
        assert!(d.predicted_hit);
        assert_eq!(d.op, OpClass::Load);
    }

    #[test]
    fn ready_operand_is_known_at_zero() {
        let s = SrcOperand::ready(ArchReg::int(4));
        assert_eq!(s.known_ready_at, Some(0));
        assert_eq!(s.producer, None);
    }

    #[test]
    fn stall_reasons_display() {
        assert!(DispatchStall::QueueFull.to_string().contains("full"));
        assert!(DispatchStall::NoChainWire.to_string().contains("chain"));
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn three_sources_panic() {
        let s = SrcOperand::ready(ArchReg::int(1));
        let _ = DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(0), &[s, s, s]);
    }
}
