//! Statistics specific to the segmented queue.

use crate::chain::ChainStats;
use crate::queue::IqStats;

/// Counters the segmented IQ maintains beyond the common [`IqStats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SegmentedStats {
    /// The common queue counters.
    pub iq: IqStats,
    /// Chain allocator counters (Table 2's averages and peaks).
    pub chains: ChainStats,
    /// Normal (chain/threshold-driven) inter-segment promotions.
    pub promotions: u64,
    /// Promotions of otherwise-ineligible instructions via the §4.1
    /// pushdown mechanism.
    pub pushdowns: u64,
    /// Dispatched instructions that bypassed at least one empty segment
    /// (§4.2).
    pub bypassed_dispatches: u64,
    /// Sum over bypassed dispatches of segments skipped.
    pub segments_bypassed: u64,
    /// Cycles in which the §4.5 deadlock recovery was active.
    pub deadlock_cycles: u64,
    /// Instructions force-promoted by deadlock recovery.
    pub recovery_promotions: u64,
    /// Instructions recycled from segment 0 to the top by recovery.
    pub recovery_recycles: u64,
    /// Dispatched instructions with two outstanding operands produced in
    /// different chains (§4.3 reports ~35% in the base configuration).
    pub dual_dep_dispatches: u64,
    /// Dispatched instructions with two source operands (denominator
    /// context for `dual_dep_dispatches`).
    pub two_src_dispatches: u64,
    /// Sum over cycles of data-ready instructions in segment 0.
    pub ready_in_seg0_accum: u64,
    /// Sum over cycles of data-ready instructions anywhere in the queue.
    pub ready_total_accum: u64,
    /// Sum over cycles of segment-0 occupancy.
    pub seg0_occupancy_accum: u64,
    /// Sum over cycles of the number of *empty* segments — segments a
    /// §7-style power manager could have clock-gated that cycle.
    pub empty_segment_cycles: u64,
    /// Chain-wire activity: total segment-hops travelled by wire signals
    /// (one hop = one segment's worth of wire driven for one cycle).
    pub wire_signal_hops: u64,
    /// Number of segments (denominator for the gating fraction).
    pub num_segments: usize,
}

impl SegmentedStats {
    /// Mean number of ready instructions resident in segment 0.
    #[must_use]
    pub fn mean_ready_in_seg0(&self) -> f64 {
        if self.iq.cycles == 0 {
            0.0
        } else {
            self.ready_in_seg0_accum as f64 / self.iq.cycles as f64
        }
    }

    /// Fraction of all ready instructions that sit in segment 0 (the
    /// paper quotes >25% for mgrid, >33% for vortex/twolf).
    #[must_use]
    pub fn ready_in_seg0_frac(&self) -> f64 {
        if self.ready_total_accum == 0 {
            0.0
        } else {
            self.ready_in_seg0_accum as f64 / self.ready_total_accum as f64
        }
    }

    /// Fraction of two-source instructions whose operands were
    /// outstanding in different chains.
    #[must_use]
    pub fn dual_dep_frac(&self) -> f64 {
        if self.iq.dispatched == 0 {
            0.0
        } else {
            self.dual_dep_dispatches as f64 / self.iq.dispatched as f64
        }
    }

    /// Fraction of cycles spent in deadlock recovery (§4.5 reports
    /// ~0.05%).
    #[must_use]
    pub fn deadlock_cycle_frac(&self) -> f64 {
        if self.iq.cycles == 0 {
            0.0
        } else {
            self.deadlock_cycles as f64 / self.iq.cycles as f64
        }
    }

    /// Fraction of segment-cycles that were empty — an upper bound on
    /// the §7 clock-gating opportunity ("the segmented structure lends
    /// itself naturally to dynamic resizing by gating clocks and/or
    /// power on a segment granularity").
    #[must_use]
    pub fn gateable_segment_frac(&self) -> f64 {
        let total = self.iq.cycles * self.num_segments as u64;
        if total == 0 {
            0.0
        } else {
            self.empty_segment_cycles as f64 / total as f64
        }
    }
}

impl chainiq_ckpt::Pack for SegmentedStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.iq.pack(w);
        self.chains.pack(w);
        self.promotions.pack(w);
        self.pushdowns.pack(w);
        self.bypassed_dispatches.pack(w);
        self.segments_bypassed.pack(w);
        self.deadlock_cycles.pack(w);
        self.recovery_promotions.pack(w);
        self.recovery_recycles.pack(w);
        self.dual_dep_dispatches.pack(w);
        self.two_src_dispatches.pack(w);
        self.ready_in_seg0_accum.pack(w);
        self.ready_total_accum.pack(w);
        self.seg0_occupancy_accum.pack(w);
        self.empty_segment_cycles.pack(w);
        self.wire_signal_hops.pack(w);
        self.num_segments.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(SegmentedStats {
            iq: Pack::unpack(r)?,
            chains: Pack::unpack(r)?,
            promotions: Pack::unpack(r)?,
            pushdowns: Pack::unpack(r)?,
            bypassed_dispatches: Pack::unpack(r)?,
            segments_bypassed: Pack::unpack(r)?,
            deadlock_cycles: Pack::unpack(r)?,
            recovery_promotions: Pack::unpack(r)?,
            recovery_recycles: Pack::unpack(r)?,
            dual_dep_dispatches: Pack::unpack(r)?,
            two_src_dispatches: Pack::unpack(r)?,
            ready_in_seg0_accum: Pack::unpack(r)?,
            ready_total_accum: Pack::unpack(r)?,
            seg0_occupancy_accum: Pack::unpack(r)?,
            empty_segment_cycles: Pack::unpack(r)?,
            wire_signal_hops: Pack::unpack(r)?,
            num_segments: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty() {
        let s = SegmentedStats::default();
        assert_eq!(s.mean_ready_in_seg0(), 0.0);
        assert_eq!(s.ready_in_seg0_frac(), 0.0);
        assert_eq!(s.dual_dep_frac(), 0.0);
        assert_eq!(s.deadlock_cycle_frac(), 0.0);
    }

    #[test]
    fn gating_fraction() {
        let mut s = SegmentedStats::default();
        s.iq.cycles = 10;
        s.num_segments = 4;
        s.empty_segment_cycles = 20; // half of 40 segment-cycles
        assert!((s.gateable_segment_frac() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratios_divide() {
        let mut s = SegmentedStats::default();
        s.iq.cycles = 10;
        s.iq.dispatched = 20;
        s.ready_in_seg0_accum = 30;
        s.ready_total_accum = 60;
        s.dual_dep_dispatches = 5;
        s.deadlock_cycles = 1;
        assert_eq!(s.mean_ready_in_seg0(), 3.0);
        assert_eq!(s.ready_in_seg0_frac(), 0.5);
        assert_eq!(s.dual_dep_frac(), 0.25);
        assert_eq!(s.deadlock_cycle_frac(), 0.1);
    }
}
