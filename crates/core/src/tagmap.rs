//! A deterministic open-addressed map from `u64` keys to small copyable
//! values.
//!
//! Replaces the `BTreeMap`/`BTreeSet` point-lookup indexes on the kernel
//! hot paths (chain-head lookup, producer→waiter list heads): linear
//! probing over a power-of-two table with backward-shift deletion, no
//! per-node allocation, no tree rebalancing. Raw iteration order is never
//! exposed (snapshots go through [`TagMap::to_sorted_vec`]), so
//! determinism holds trivially (every operation's result depends only on
//! the operation history, not on any hash-seed state — the hash is a
//! fixed multiplicative mix).
// chainiq-analyze: hot-path

/// Reserved key marking an empty probe slot. Instruction tags are
/// monotonically assigned from zero, so `u64::MAX` is never a real key.
const EMPTY_KEY: u64 = u64::MAX;

/// The map. `V` is stored inline beside the key.
#[derive(Debug, Clone)]
pub struct TagMap<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
}

impl<V: Copy + Default> Default for TagMap<V> {
    fn default() -> Self {
        TagMap::new()
    }
}

impl<V: Copy + Default> TagMap<V> {
    /// An empty map. Allocates on first insert.
    #[must_use]
    pub fn new() -> Self {
        TagMap { keys: Vec::new(), vals: Vec::new(), len: 0 }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        // Fibonacci multiplicative hash; table size is a power of two.
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask()
    }

    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); new_cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY_KEY {
                self.insert(k, v);
            }
        }
    }

    /// Inserts or overwrites `key`.
    // chainiq-analyze: hot
    pub fn insert(&mut self, key: u64, val: V) {
        debug_assert_ne!(key, EMPTY_KEY);
        if self.keys.is_empty() || 4 * (self.len + 1) > 3 * self.keys.len() {
            self.grow();
        }
        let mut i = self.bucket(key);
        loop {
            if self.keys[i] == EMPTY_KEY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if self.keys[i] == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask();
        }
    }

    /// Looks up `key`.
    // chainiq-analyze: hot
    #[inline]
    pub fn get(&self, key: u64) -> Option<V> {
        if self.keys.is_empty() {
            return None;
        }
        let mut i = self.bucket(key);
        loop {
            if self.keys[i] == key {
                return Some(self.vals[i]);
            }
            if self.keys[i] == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask();
        }
    }

    /// Looks up `key` for in-place mutation.
    // chainiq-analyze: hot
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if self.keys.is_empty() {
            return None;
        }
        let mut i = self.bucket(key);
        loop {
            if self.keys[i] == key {
                return Some(&mut self.vals[i]);
            }
            if self.keys[i] == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & self.mask();
        }
    }

    /// Removes `key`, backward-shifting the probe run to keep lookups
    /// tombstone-free.
    // chainiq-analyze: hot
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if self.keys.is_empty() {
            return None;
        }
        let mut i = self.bucket(key);
        loop {
            if self.keys[i] == EMPTY_KEY {
                return None;
            }
            if self.keys[i] == key {
                break;
            }
            i = (i + 1) & self.mask();
        }
        let removed = self.vals[i];
        self.len -= 1;
        // Backward-shift deletion: slide later run members whose home
        // bucket precedes the hole back over it.
        let mask = self.mask();
        let mut hole = i;
        let mut j = (i + 1) & mask;
        while self.keys[j] != EMPTY_KEY {
            let home = self.bucket(self.keys[j]);
            // `j` can move into `hole` iff its home bucket is not inside
            // the (cyclic) open interval (hole, j].
            let between =
                if hole <= j { home > hole && home <= j } else { home > hole || home <= j };
            if !between {
                self.keys[hole] = self.keys[j];
                self.vals[hole] = self.vals[j];
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.keys[hole] = EMPTY_KEY;
        Some(removed)
    }

    /// Drops every entry, keeping the table allocation.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY_KEY);
        self.len = 0;
    }

    /// The live entries in ascending key order — the canonical form for
    /// snapshots and diagnostics (raw table order is an implementation
    /// detail and is never exposed).
    #[must_use]
    pub fn to_sorted_vec(&self) -> Vec<(u64, V)> {
        let mut out: Vec<(u64, V)> = self
            .keys
            .iter()
            .zip(&self.vals)
            .filter(|&(&k, _)| k != EMPTY_KEY)
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_devtest::{prop_assert_eq, prop_check};
    use std::collections::BTreeMap;

    #[test]
    fn basic_ops() {
        let mut m: TagMap<u32> = TagMap::new();
        assert_eq!(m.get(1), None);
        m.insert(1, 10);
        m.insert(2, 20);
        m.insert(1, 11);
        assert_eq!((m.get(1), m.get(2), m.len()), (Some(11), Some(20), 2));
        *m.get_mut(2).unwrap() += 1;
        assert_eq!(m.remove(2), Some(21));
        assert_eq!(m.remove(2), None);
        assert_eq!(m.len(), 1);
        m.clear();
        assert_eq!((m.get(1), m.len()), (None, 0));
    }

    prop_check! {
        /// Agrees with a reference `BTreeMap` under random insert /
        /// overwrite / remove traffic, including clustered keys that
        /// force long probe runs and backward shifts.
        fn matches_reference_map(g, cases = 64) {
            let mut m: TagMap<u64> = TagMap::new();
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            // A small key universe forces heavy collision/removal mixing.
            let universe = g.u64(4..200);
            for step in 0..500u64 {
                let key = g.u64(0..universe);
                match g.pick(3) {
                    0 => {
                        m.insert(key, step);
                        model.insert(key, step);
                    }
                    1 => {
                        prop_assert_eq!(m.remove(key), model.remove(&key), "remove({key})");
                    }
                    _ => {
                        prop_assert_eq!(m.get(key), model.get(&key).copied(), "get({key})");
                    }
                }
                prop_assert_eq!(m.len(), model.len(), "length drifted");
            }
            for (&k, &v) in &model {
                prop_assert_eq!(m.get(k), Some(v), "final get({k})");
            }
        }
    }
}
