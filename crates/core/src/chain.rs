//! Chain identifiers, the chain-wire allocator, and in-flight wire
//! signals.
// chainiq-analyze: hot-path

use chainiq_isa::Cycle;

use crate::tag::InstTag;
use crate::tagmap::TagMap;

/// A reference to an allocated chain wire.
///
/// `id` names the physical one-hot wire; `gen` is a modeling-only
/// generation counter that lets late listeners distinguish a reallocated
/// wire from the chain they joined (in hardware the release-at-writeback
/// ordering makes the ambiguity harmless; the generation makes the model
/// robust to it without changing timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChainRef {
    /// Wire index.
    pub id: u32,
    /// Allocation generation of that wire.
    pub gen: u32,
}

/// What a chain-wire assertion means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SignalKind {
    /// The head was selected for promotion or issue (members decrement
    /// their delay, or enter self-timed mode once the head is at the
    /// bottom).
    Pulse,
    /// The head load missed the cache: suspend self-timing (§3.4).
    Suspend,
    /// The head completed: resume self-timing.
    Resume,
}

/// A signal travelling up the pipelined chain wires: asserted at
/// `segment` this cycle, visible at `segment + k` after `k` more cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WireSignal {
    pub chain: ChainRef,
    pub kind: SignalKind,
    /// Segment where the signal is currently visible.
    pub segment: usize,
}

/// Aggregate chain-usage statistics (Table 2 of the paper).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChainStats {
    /// Chains allocated in total.
    pub allocations: u64,
    /// Allocations whose head was a load (§4.4 reports ~65% in the base
    /// configuration).
    pub load_heads: u64,
    /// Allocations whose head was a two-outstanding-operand instruction.
    pub dual_dep_heads: u64,
    /// Sum over sampled cycles of live-chain count.
    pub live_accum: u64,
    /// Cycles sampled.
    pub cycles: u64,
    /// Peak simultaneous live chains.
    pub peak_live: usize,
    /// Dispatch stalls because no wire was free.
    pub wire_stalls: u64,
}

impl ChainStats {
    /// Mean number of live chains over the sampled cycles.
    #[must_use]
    pub fn mean_live(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.live_accum as f64 / self.cycles as f64
        }
    }

    /// Fraction of chain allocations headed by loads.
    #[must_use]
    pub fn load_head_frac(&self) -> f64 {
        if self.allocations == 0 {
            0.0
        } else {
            self.load_heads as f64 / self.allocations as f64
        }
    }
}

#[derive(Debug, Clone)]
struct ChainSlot {
    gen: u32,
    head: InstTag,
    live: bool,
}

/// The chain allocator: a bounded (or unbounded) pool of chain wires,
/// each owned by the instruction that heads the chain, released when
/// that instruction writes back (§6.1: "we do not deallocate chains until
/// the chain head instruction has written its result back").
#[derive(Debug, Clone)]
pub(crate) struct ChainTable {
    slots: Vec<ChainSlot>,
    free: Vec<u32>,
    /// Live chains by head tag (a head owns at most one chain) — a flat
    /// probed map, not a tree: head lookup sits on the issue/miss/fill
    /// paths.
    by_head: TagMap<u32>,
    limit: Option<usize>,
    live: usize,
    stats: ChainStats,
}

impl ChainTable {
    pub(crate) fn new(limit: Option<usize>) -> Self {
        ChainTable {
            slots: Vec::new(),
            free: Vec::new(),
            by_head: TagMap::new(),
            limit,
            live: 0,
            stats: ChainStats::default(),
        }
    }

    /// Number of wire slots ever allocated (live or recyclable) — the
    /// id space the queue's follower lists are indexed by.
    pub(crate) fn wire_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of chains currently live.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    pub(crate) fn stats(&self) -> &ChainStats {
        &self.stats
    }

    /// Records a dispatch stall caused by wire exhaustion.
    pub(crate) fn note_wire_stall(&mut self) {
        self.stats.wire_stalls += 1;
    }

    /// Samples the live count for the mean/peak statistics; call once per
    /// cycle.
    pub(crate) fn sample(&mut self, _now: Cycle) {
        self.stats.live_accum += self.live as u64;
        self.stats.cycles += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.live);
    }

    /// Allocates a chain headed by `head`. Returns `None` when every wire
    /// is in use (the caller must stall dispatch).
    pub(crate) fn alloc(&mut self, head: InstTag, head_is_load: bool) -> Option<ChainRef> {
        let id = if let Some(id) = self.free.pop() {
            let slot = &mut self.slots[id as usize];
            slot.gen = slot.gen.wrapping_add(1);
            slot.head = head;
            slot.live = true;
            id
        } else {
            if let Some(limit) = self.limit {
                if self.slots.len() >= limit {
                    return None;
                }
            }
            let id = self.slots.len() as u32;
            self.slots.push(ChainSlot { gen: 0, head, live: true });
            id
        };
        self.live += 1;
        self.stats.allocations += 1;
        if head_is_load {
            self.stats.load_heads += 1;
        } else {
            self.stats.dual_dep_heads += 1;
        }
        self.stats.peak_live = self.stats.peak_live.max(self.live);
        self.by_head.insert(head.0, id);
        Some(ChainRef { id, gen: self.slots[id as usize].gen })
    }

    /// Releases the chain headed by `tag`, if one is live.
    // chainiq-analyze: hot
    pub(crate) fn release_by_head(&mut self, tag: InstTag) {
        if let Some(id) = self.by_head.remove(tag.0) {
            let slot = &mut self.slots[id as usize];
            debug_assert!(slot.live && slot.head == tag);
            slot.live = false;
            self.free.push(id);
            self.live -= 1;
        }
    }

    /// Releases everything (pipeline flush).
    pub(crate) fn release_all(&mut self) {
        for (id, slot) in self.slots.iter_mut().enumerate() {
            if slot.live {
                slot.live = false;
                self.free.push(id as u32);
            }
        }
        self.by_head.clear();
        self.live = 0;
    }

    /// Whether `chain` still refers to the allocation it was created for.
    #[cfg(test)]
    pub(crate) fn is_current(&self, chain: ChainRef) -> bool {
        self.slots.get(chain.id as usize).map(|s| s.live && s.gen == chain.gen).unwrap_or(false)
    }

    /// The head of a live chain.
    #[cfg(test)]
    pub(crate) fn head_of(&self, chain: ChainRef) -> Option<InstTag> {
        let s = self.slots.get(chain.id as usize)?;
        (s.live && s.gen == chain.gen).then_some(s.head)
    }

    /// Finds the live chain headed by `tag`, if any.
    // chainiq-analyze: hot
    pub(crate) fn chain_of_head(&self, tag: InstTag) -> Option<ChainRef> {
        self.by_head.get(tag.0).map(|id| ChainRef { id, gen: self.slots[id as usize].gen })
    }
}

impl chainiq_ckpt::Pack for ChainRef {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.id.pack(w);
        self.gen.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(ChainRef { id: Pack::unpack(r)?, gen: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for SignalKind {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        w.put_u8(match self {
            SignalKind::Pulse => 0,
            SignalKind::Suspend => 1,
            SignalKind::Resume => 2,
        });
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        match r.take_u8("wire-signal kind")? {
            0 => Ok(SignalKind::Pulse),
            1 => Ok(SignalKind::Suspend),
            2 => Ok(SignalKind::Resume),
            t => Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("wire-signal kind tag {t}"),
            }),
        }
    }
}

impl chainiq_ckpt::Pack for WireSignal {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.chain.pack(w);
        self.kind.pack(w);
        self.segment.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(WireSignal {
            chain: Pack::unpack(r)?,
            kind: Pack::unpack(r)?,
            segment: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for ChainStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.allocations.pack(w);
        self.load_heads.pack(w);
        self.dual_dep_heads.pack(w);
        self.live_accum.pack(w);
        self.cycles.pack(w);
        self.peak_live.pack(w);
        self.wire_stalls.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(ChainStats {
            allocations: Pack::unpack(r)?,
            load_heads: Pack::unpack(r)?,
            dual_dep_heads: Pack::unpack(r)?,
            live_accum: Pack::unpack(r)?,
            cycles: Pack::unpack(r)?,
            peak_live: Pack::unpack(r)?,
            wire_stalls: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for ChainSlot {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.gen.pack(w);
        self.head.pack(w);
        self.live.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(ChainSlot { gen: Pack::unpack(r)?, head: Pack::unpack(r)?, live: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for ChainTable {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        // Canonical state only; the head-lookup map is rebuilt from the
        // live slots on unpack, so images stay layout-stable.
        self.slots.pack(w);
        self.free.pack(w);
        self.limit.pack(w);
        self.live.pack(w);
        self.stats.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let slots: Vec<ChainSlot> = Pack::unpack(r)?;
        let free: Vec<u32> = Pack::unpack(r)?;
        let limit: Option<usize> = Pack::unpack(r)?;
        let live: usize = Pack::unpack(r)?;
        let stats: ChainStats = Pack::unpack(r)?;
        let corrupt =
            |context: &str| chainiq_ckpt::CkptError::Corrupt { context: context.to_string() };
        if limit.is_some_and(|l| slots.len() > l) {
            return Err(corrupt("chain table exceeds its wire limit"));
        }
        if live != slots.iter().filter(|s| s.live).count() {
            return Err(corrupt("chain table live-count mismatch"));
        }
        if free.len() != slots.len() - live
            || free.iter().any(|&id| slots.get(id as usize).is_none_or(|s| s.live))
        {
            return Err(corrupt("chain table free list inconsistent"));
        }
        let mut by_head = TagMap::new();
        for (id, slot) in slots.iter().enumerate() {
            if slot.live {
                by_head.insert(slot.head.0, id as u32);
            }
        }
        if by_head.len() != live {
            return Err(corrupt("chain table holds duplicate live heads"));
        }
        Ok(ChainTable { slots, free, by_head, limit, live, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_limit_then_none() {
        let mut t = ChainTable::new(Some(2));
        let a = t.alloc(InstTag(1), true).unwrap();
        let b = t.alloc(InstTag(2), true).unwrap();
        assert_ne!(a.id, b.id);
        assert_eq!(t.alloc(InstTag(3), true), None);
        assert_eq!(t.live(), 2);
    }

    #[test]
    fn unlimited_table_grows() {
        let mut t = ChainTable::new(None);
        for i in 0..1000 {
            assert!(t.alloc(InstTag(i), true).is_some());
        }
        assert_eq!(t.live(), 1000);
        assert_eq!(t.stats().peak_live, 1000);
    }

    #[test]
    fn release_recycles_wire_with_new_generation() {
        let mut t = ChainTable::new(Some(1));
        let a = t.alloc(InstTag(1), true).unwrap();
        t.release_by_head(InstTag(1));
        assert!(!t.is_current(a));
        let b = t.alloc(InstTag(2), false).unwrap();
        assert_eq!(a.id, b.id, "wire is reused");
        assert_ne!(a.gen, b.gen, "generation distinguishes reallocation");
        assert!(t.is_current(b));
    }

    #[test]
    fn head_lookup() {
        let mut t = ChainTable::new(None);
        let a = t.alloc(InstTag(5), true).unwrap();
        assert_eq!(t.head_of(a), Some(InstTag(5)));
        assert_eq!(t.chain_of_head(InstTag(5)), Some(a));
        assert_eq!(t.chain_of_head(InstTag(6)), None);
    }

    #[test]
    fn stats_track_head_kinds_and_mean() {
        let mut t = ChainTable::new(None);
        t.alloc(InstTag(1), true).unwrap();
        t.alloc(InstTag(2), false).unwrap();
        t.sample(0);
        t.sample(1);
        let s = t.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.load_heads, 1);
        assert_eq!(s.dual_dep_heads, 1);
        assert!((s.mean_live() - 2.0).abs() < 1e-12);
        assert!((s.load_head_frac() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn release_all_clears() {
        let mut t = ChainTable::new(Some(4));
        for i in 0..4 {
            t.alloc(InstTag(i), true).unwrap();
        }
        t.release_all();
        assert_eq!(t.live(), 0);
        assert!(t.alloc(InstTag(9), true).is_some());
    }
}
