//! The dispatch-stage register information table (§3.3).
//!
//! One entry per architectural register, recording how far the register's
//! value is from being produced: which chain will produce it, its
//! expected latency relative to that chain head's issue, the head's
//! segment, and whether the chain is in self-timed mode. The table
//! listens to the chain wires exactly as queue entries do — at the top of
//! the wire pipeline, so its view lags the bottom segments by the wire
//! delay, as in the hardware.
// chainiq-analyze: hot-path

use chainiq_isa::{ArchReg, NUM_ARCH_REGS};

use crate::chain::{ChainRef, SignalKind, WireSignal};

/// Scheduling status of one architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RegSched {
    /// The value is (believed) available now.
    Available,
    /// The value is not chain-tracked; it is expected in `remaining`
    /// cycles (a dispatched instruction whose operands were all ready).
    Countdown {
        /// Cycles until the value is expected.
        remaining: i64,
    },
    /// The value is produced `latency` cycles after `chain`'s head
    /// issues; the head is (as last seen here) in segment `head_loc`.
    OnChain {
        /// Producing chain.
        chain: ChainRef,
        /// Cycles after head issue until this value is ready. Fixed until
        /// self-timed mode, then counts down.
        latency: i64,
        /// Head's segment as last observed at the table.
        head_loc: i64,
        /// Head has issued; `latency` counts down each cycle.
        self_timed: bool,
        /// Self-timing is suspended (head load missed; §3.4).
        suspended: bool,
    },
}

impl RegSched {
    /// The expected delay (cycles until available) implied by this entry,
    /// for initializing a dependent's delay value: `2 * S_H + D_H` for
    /// chain-tracked values (§3.3), the remaining countdown otherwise.
    #[cfg(test)]
    pub(crate) fn expected_delay(&self) -> i64 {
        match *self {
            RegSched::Available => 0,
            RegSched::Countdown { remaining } => remaining.max(0),
            RegSched::OnChain { latency, head_loc, self_timed, .. } => {
                if self_timed {
                    latency.max(0)
                } else {
                    2 * head_loc.max(0) + latency.max(0)
                }
            }
        }
    }
}

/// The register information table.
///
/// A flat per-register array plus a one-word *active mask* of the
/// entries that are not `Available`. The per-cycle paths (countdown
/// tick, chain-signal delivery) walk only the set bits — in steady state
/// a handful of registers are in flight, so the sweep the v2 kernel paid
/// on all `NUM_ARCH_REGS` slots every cycle collapses to a popcount
/// loop (see DESIGN.md §9).
#[derive(Debug, Clone)]
pub(crate) struct RegInfoTable {
    entries: Vec<RegSched>,
    /// Bit `i` set ⟺ `entries[i]` is not `Available`.
    active: u64,
}

// The active mask is a single machine word.
const _: () = assert!(NUM_ARCH_REGS <= 64);

impl RegInfoTable {
    pub(crate) fn new() -> Self {
        RegInfoTable { entries: vec![RegSched::Available; NUM_ARCH_REGS], active: 0 }
    }

    pub(crate) fn get(&self, reg: ArchReg) -> RegSched {
        self.entries[reg.index()]
    }

    pub(crate) fn set(&mut self, reg: ArchReg, sched: RegSched) {
        let i = reg.index();
        self.entries[i] = sched;
        if matches!(sched, RegSched::Available) {
            self.active &= !(1u64 << i);
        } else {
            self.active |= 1u64 << i;
        }
    }

    /// Applies a chain-wire signal that reached the top of the queue to
    /// every register listening on its chain.
    // chainiq-analyze: hot
    pub(crate) fn apply_signal(&mut self, sig: WireSignal) {
        let mut m = self.active;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            if let RegSched::OnChain { chain, head_loc, self_timed, suspended, .. } =
                &mut self.entries[i]
            {
                if *chain == sig.chain {
                    match sig.kind {
                        SignalKind::Pulse => {
                            if !*self_timed {
                                if *head_loc > 0 {
                                    *head_loc -= 1;
                                } else {
                                    *self_timed = true;
                                }
                            }
                        }
                        SignalKind::Suspend => *suspended = true,
                        SignalKind::Resume => *suspended = false,
                    }
                }
            }
        }
    }

    /// One cycle of countdowns. Signals for this cycle must be applied
    /// first (suspends take effect before the decrement they gate).
    // chainiq-analyze: hot
    pub(crate) fn tick(&mut self) {
        let mut m = self.active;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            let e = &mut self.entries[i];
            *e = match *e {
                RegSched::Countdown { remaining } => {
                    let r = remaining - 1;
                    if r <= 0 {
                        RegSched::Available
                    } else {
                        RegSched::Countdown { remaining: r }
                    }
                }
                RegSched::OnChain {
                    chain,
                    latency,
                    head_loc,
                    self_timed: true,
                    suspended: false,
                } => {
                    let l = latency - 1;
                    if l <= 0 {
                        RegSched::Available
                    } else {
                        RegSched::OnChain {
                            chain,
                            latency: l,
                            head_loc,
                            self_timed: true,
                            suspended: false,
                        }
                    }
                }
                other => other,
            };
            if matches!(e, RegSched::Available) {
                self.active &= !(1u64 << i);
            }
        }
    }

    /// Resets every entry (pipeline flush).
    pub(crate) fn reset(&mut self) {
        self.entries.fill(RegSched::Available);
        self.active = 0;
    }
}

impl chainiq_ckpt::Pack for RegSched {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        match *self {
            RegSched::Available => w.put_u8(0),
            RegSched::Countdown { remaining } => {
                w.put_u8(1);
                remaining.pack(w);
            }
            RegSched::OnChain { chain, latency, head_loc, self_timed, suspended } => {
                w.put_u8(2);
                chain.pack(w);
                latency.pack(w);
                head_loc.pack(w);
                self_timed.pack(w);
                suspended.pack(w);
            }
        }
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        match r.take_u8("register schedule tag")? {
            0 => Ok(RegSched::Available),
            1 => Ok(RegSched::Countdown { remaining: Pack::unpack(r)? }),
            2 => Ok(RegSched::OnChain {
                chain: Pack::unpack(r)?,
                latency: Pack::unpack(r)?,
                head_loc: Pack::unpack(r)?,
                self_timed: Pack::unpack(r)?,
                suspended: Pack::unpack(r)?,
            }),
            t => Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("register schedule tag {t}"),
            }),
        }
    }
}

impl chainiq_ckpt::Pack for RegInfoTable {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.entries.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let entries: Vec<RegSched> = Pack::unpack(r)?;
        if entries.len() != NUM_ARCH_REGS {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("register table holds {} entries", entries.len()),
            });
        }
        let mut active = 0u64;
        for (i, e) in entries.iter().enumerate() {
            if !matches!(e, RegSched::Available) {
                active |= 1u64 << i;
            }
        }
        Ok(RegInfoTable { entries, active })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(id: u32) -> ChainRef {
        ChainRef { id, gen: 0 }
    }

    #[test]
    fn countdown_becomes_available() {
        let mut t = RegInfoTable::new();
        let r = ArchReg::int(1);
        t.set(r, RegSched::Countdown { remaining: 2 });
        t.tick();
        assert_eq!(t.get(r), RegSched::Countdown { remaining: 1 });
        t.tick();
        assert_eq!(t.get(r), RegSched::Available);
    }

    #[test]
    fn pulses_walk_head_down_then_self_time() {
        let mut t = RegInfoTable::new();
        let r = ArchReg::int(2);
        t.set(
            r,
            RegSched::OnChain {
                chain: chain(3),
                latency: 4,
                head_loc: 2,
                self_timed: false,
                suspended: false,
            },
        );
        let pulse = WireSignal { chain: chain(3), kind: SignalKind::Pulse, segment: 0 };
        t.apply_signal(pulse);
        t.apply_signal(pulse);
        match t.get(r) {
            RegSched::OnChain { head_loc, self_timed, .. } => {
                assert_eq!(head_loc, 0);
                assert!(!self_timed);
            }
            other => panic!("{other:?}"),
        }
        // Third pulse = issue.
        t.apply_signal(pulse);
        match t.get(r) {
            RegSched::OnChain { self_timed, latency, .. } => {
                assert!(self_timed);
                assert_eq!(latency, 4, "latency untouched until countdown ticks");
            }
            other => panic!("{other:?}"),
        }
        // Now it counts down to available.
        for _ in 0..4 {
            t.tick();
        }
        assert_eq!(t.get(r), RegSched::Available);
    }

    #[test]
    fn suspend_freezes_countdown_until_resume() {
        let mut t = RegInfoTable::new();
        let r = ArchReg::fp(0);
        t.set(
            r,
            RegSched::OnChain {
                chain: chain(1),
                latency: 3,
                head_loc: 0,
                self_timed: true,
                suspended: false,
            },
        );
        t.tick(); // 3 -> 2
        t.apply_signal(WireSignal { chain: chain(1), kind: SignalKind::Suspend, segment: 0 });
        for _ in 0..10 {
            t.tick(); // frozen
        }
        match t.get(r) {
            RegSched::OnChain { latency, suspended, .. } => {
                assert_eq!(latency, 2);
                assert!(suspended);
            }
            other => panic!("{other:?}"),
        }
        t.apply_signal(WireSignal { chain: chain(1), kind: SignalKind::Resume, segment: 0 });
        t.tick();
        t.tick();
        assert_eq!(t.get(r), RegSched::Available);
    }

    #[test]
    fn signals_for_other_chains_are_ignored() {
        let mut t = RegInfoTable::new();
        let r = ArchReg::int(3);
        let sched = RegSched::OnChain {
            chain: chain(1),
            latency: 5,
            head_loc: 3,
            self_timed: false,
            suspended: false,
        };
        t.set(r, sched);
        t.apply_signal(WireSignal { chain: chain(2), kind: SignalKind::Pulse, segment: 0 });
        assert_eq!(t.get(r), sched);
        // Same wire id, different generation: also ignored.
        t.apply_signal(WireSignal {
            chain: ChainRef { id: 1, gen: 9 },
            kind: SignalKind::Pulse,
            segment: 0,
        });
        assert_eq!(t.get(r), sched);
    }

    #[test]
    fn expected_delay_formula() {
        assert_eq!(RegSched::Available.expected_delay(), 0);
        assert_eq!(RegSched::Countdown { remaining: 7 }.expected_delay(), 7);
        let on = RegSched::OnChain {
            chain: chain(0),
            latency: 3,
            head_loc: 5,
            self_timed: false,
            suspended: false,
        };
        assert_eq!(on.expected_delay(), 2 * 5 + 3);
        let timed = RegSched::OnChain {
            chain: chain(0),
            latency: 3,
            head_loc: 0,
            self_timed: true,
            suspended: false,
        };
        assert_eq!(timed.expected_delay(), 3);
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = RegInfoTable::new();
        t.set(ArchReg::int(1), RegSched::Countdown { remaining: 10 });
        t.reset();
        assert_eq!(t.get(ArchReg::int(1)), RegSched::Available);
    }
}
