//! The segmented instruction queue (§3) with all §4 enhancements.

use chainiq_isa::{Cycle, OpClass};

use crate::chain::{ChainRef, ChainTable, SignalKind, WireSignal};
use crate::fu::FuPool;
use crate::queue::{IqStats, IssueQueue, IssuedInst};
use crate::regtable::{RegInfoTable, RegSched};
use crate::stats::SegmentedStats;
use crate::tag::{DispatchInfo, DispatchStall, InstTag, OperandPick};

/// Configuration of a [`SegmentedIq`]. Every §4 enhancement is an
/// independent switch so the ablation benches can isolate each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedIqConfig {
    /// Number of segments (the pipeline depth of the queue).
    pub num_segments: usize,
    /// Instruction slots per segment (the paper uses 32).
    pub segment_size: usize,
    /// Maximum instructions promoted between adjacent segments per cycle
    /// (the paper matches it to the 8-wide issue width).
    pub promote_width: usize,
    /// Chain wires available; `None` models the unlimited-chains queue of
    /// §6.1.
    pub max_chains: Option<usize>,
    /// Enable the §4.1 pushdown mechanism.
    pub pushdown: bool,
    /// Enable the §4.2 dispatch bypass of empty segments.
    pub bypass: bool,
    /// Allow instructions to follow two chains (§3.2). When false, the
    /// dispatch stage's left/right-predictor pick chooses a single chain
    /// (§4.3) and dual-dependence instructions stop consuming chains.
    pub two_chain_tracking: bool,
    /// Enable §4.5 deadlock detection/recovery.
    pub deadlock_recovery: bool,
    /// Predicted latency of a load from issue to value (EA calculation
    /// plus the L1 hit latency; 4 with Table 1 numbers).
    pub predicted_load_latency: i64,
    /// Include the landing segment's descent time in the countdown-based
    /// delay estimates of values that are not chain-tracked. The paper's
    /// §3.1 delay values are pure dataflow estimates (assume immediate
    /// issue); under dispatch backlog that underestimate floods segment 0
    /// with the dependents of HMP-suppressed loads, so the paper-shaped
    /// experiments enable this refinement (see DESIGN.md §4).
    pub countdown_includes_descent: bool,
}

impl SegmentedIqConfig {
    /// The paper's main configuration: `entries / 32` segments of 32
    /// slots, 8-wide promotion, all enhancements on.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive multiple of 32.
    #[must_use]
    pub fn paper(entries: usize, max_chains: Option<usize>) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(32),
            "paper configs are multiples of 32 entries"
        );
        SegmentedIqConfig {
            num_segments: entries / 32,
            segment_size: 32,
            promote_width: 8,
            max_chains,
            pushdown: true,
            bypass: true,
            two_chain_tracking: true,
            deadlock_recovery: true,
            predicted_load_latency: 4,
            countdown_includes_descent: true,
        }
    }

    /// A tiny three-segment queue for unit tests and doc examples.
    #[must_use]
    pub fn small_for_tests() -> Self {
        SegmentedIqConfig {
            num_segments: 3,
            segment_size: 8,
            promote_width: 4,
            max_chains: None,
            pushdown: true,
            bypass: true,
            two_chain_tracking: true,
            deadlock_recovery: true,
            predicted_load_latency: 4,
            countdown_includes_descent: true,
        }
    }

    /// Total instruction slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.num_segments * self.segment_size
    }

    /// Promotion threshold of segment `j`: an instruction may enter
    /// segment `j` only with a delay value below this (2, 4, 6, … from
    /// the bottom; §3.1).
    #[must_use]
    pub fn threshold(&self, segment: usize) -> i64 {
        2 * (segment as i64 + 1)
    }
}

/// One scheduling operand: the chain-relative position that maintains the
/// entry's delay value. The delay value of §3.1 is `2 * head_loc +
/// rel_latency`; pulses decrement `head_loc`, self-timed mode decrements
/// `rel_latency` every unsuspended cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SchedOperand {
    /// Chain listened to, if any (`None` = pure countdown).
    chain: Option<ChainRef>,
    /// Expected cycles from head issue to operand availability.
    rel_latency: i64,
    /// Head's segment as last observed by this entry.
    head_loc: i64,
    /// Head has issued; `rel_latency` counts down.
    self_timed: bool,
    /// Countdown frozen by a miss (§3.4).
    suspended: bool,
}

impl SchedOperand {
    fn delay(&self) -> i64 {
        2 * self.head_loc.max(0) + self.rel_latency.max(0)
    }

    fn apply(&mut self, kind: SignalKind) {
        match kind {
            SignalKind::Pulse => {
                if !self.self_timed {
                    if self.head_loc > 0 {
                        self.head_loc -= 1;
                    } else {
                        self.self_timed = true;
                    }
                }
            }
            SignalKind::Suspend => self.suspended = true,
            SignalKind::Resume => self.suspended = false,
        }
    }

    fn tick(&mut self) {
        if self.self_timed && !self.suspended && self.rel_latency > 0 {
            self.rel_latency -= 1;
        }
    }
}

/// Data-readiness tracking for one operand (drives *issue*, as opposed to
/// the scheduling operands that drive *promotion*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DataOperand {
    producer: InstTag,
    ready_at: Option<Cycle>,
}

#[derive(Debug, Clone)]
struct Entry {
    tag: InstTag,
    op: OpClass,
    data_ops: [Option<DataOperand>; 2],
    sched_ops: [Option<SchedOperand>; 2],
    heads_chain: Option<ChainRef>,
    /// Cycle this entry last arrived in its segment; an entry cannot be
    /// selected for issue in the same cycle it entered segment 0.
    moved_at: Cycle,
}

impl Entry {
    fn delay(&self) -> i64 {
        self.sched_ops.iter().flatten().map(SchedOperand::delay).max().unwrap_or(0)
    }

    fn data_ready(&self, now: Cycle) -> bool {
        self.data_ops.iter().flatten().all(|d| d.ready_at.map(|r| r <= now).unwrap_or(false))
    }

    fn apply_signal(&mut self, sig: WireSignal) {
        for op in self.sched_ops.iter_mut().flatten() {
            if op.chain == Some(sig.chain) {
                op.apply(sig.kind);
            }
        }
    }
}

/// The segmented instruction queue with chain-based promotion.
///
/// See the [crate-level docs](crate) for the design summary and a usage
/// example, and [`SegmentedIqConfig`] for the switches. Beyond the
/// [`IssueQueue`] contract it exposes [`SegmentedIq::segmented_stats`]
/// (chain usage, promotion/pushdown/deadlock counters) used by the
/// Table 2 experiments.
#[derive(Debug, Clone)]
pub struct SegmentedIq {
    config: SegmentedIqConfig,
    /// `segments[0]` is the issue buffer; higher indices are closer to
    /// dispatch.
    segments: Vec<Vec<Entry>>,
    /// Free slots per segment as of the end of the previous cycle — the
    /// information promotion logic is allowed to use (§3.1).
    free_prev: Vec<usize>,
    /// Signals travelling up the pipelined chain wires.
    signals: Vec<WireSignal>,
    chains: ChainTable,
    /// One register information table per hardware thread context,
    /// grown on demand (index = `DispatchInfo::thread`).
    regs: Vec<RegInfoTable>,
    stats: SegmentedStats,
    /// Whether `select_issue` issued anything in the current cycle
    /// (input to next cycle's deadlock detector).
    issued_this_cycle: bool,
    /// Whether the previous cycle made any progress (issue or promotion).
    progress_last_cycle: bool,
}

impl SegmentedIq {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `config` is zero.
    #[must_use]
    pub fn new(config: SegmentedIqConfig) -> Self {
        assert!(config.num_segments > 0 && config.segment_size > 0 && config.promote_width > 0);
        SegmentedIq {
            config,
            segments: vec![Vec::with_capacity(config.segment_size); config.num_segments],
            free_prev: vec![config.segment_size; config.num_segments],
            signals: Vec::new(),
            chains: ChainTable::new(config.max_chains),
            regs: vec![RegInfoTable::new()],
            stats: SegmentedStats::default(),
            issued_this_cycle: false,
            progress_last_cycle: true,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SegmentedIqConfig {
        &self.config
    }

    /// Segmented-specific statistics (chain usage, promotions, deadlock
    /// recoveries, …).
    #[must_use]
    pub fn segmented_stats(&self) -> &SegmentedStats {
        &self.stats
    }

    /// Chains currently live.
    #[must_use]
    pub fn live_chains(&self) -> usize {
        self.chains.live()
    }

    /// Number of instructions in segment `k` (0 = issue buffer).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn segment_len(&self, k: usize) -> usize {
        self.segments[k].len()
    }

    /// The current delay value of the queued instruction `tag`, if it is
    /// still buffered (primarily for tests and visualization).
    #[must_use]
    pub fn delay_of(&self, tag: InstTag) -> Option<i64> {
        self.segments.iter().flatten().find(|e| e.tag == tag).map(Entry::delay)
    }

    /// The segment currently holding `tag`, if buffered.
    #[must_use]
    pub fn segment_of(&self, tag: InstTag) -> Option<usize> {
        self.segments
            .iter()
            .enumerate()
            .find(|(_, seg)| seg.iter().any(|e| e.tag == tag))
            .map(|(k, _)| k)
    }

    fn top(&self) -> usize {
        self.config.num_segments - 1
    }

    fn free(&self, k: usize) -> usize {
        self.config.segment_size - self.segments[k].len()
    }

    /// Asserts a signal at `segment` this cycle: applies it to the
    /// entries there (and the register table if at the top) and queues it
    /// for upward propagation.
    fn assert_signal(&mut self, chain: ChainRef, kind: SignalKind, segment: usize) {
        self.stats.wire_signal_hops += 1;
        let sig = WireSignal { chain, kind, segment };
        for e in &mut self.segments[segment] {
            e.apply_signal(sig);
        }
        if segment == self.config.num_segments - 1 {
            for t in &mut self.regs {
                t.apply_signal(sig);
            }
        } else {
            self.signals.push(sig);
        }
    }

    /// Moves the wire signals one segment up and delivers them.
    fn propagate_signals(&mut self) {
        let top = self.top();
        self.stats.wire_signal_hops += self.signals.len() as u64;
        let moved: Vec<WireSignal> = self
            .signals
            .drain(..)
            .map(|mut s| {
                s.segment += 1;
                s
            })
            .collect();
        for sig in moved {
            for e in &mut self.segments[sig.segment] {
                e.apply_signal(sig);
            }
            if sig.segment >= top {
                for t in &mut self.regs {
                    t.apply_signal(sig);
                }
            } else {
                self.signals.push(sig);
            }
        }
    }

    /// Selects up to `budget` entries of `seg` for promotion: eligible
    /// (delay below the destination threshold) oldest-first, then — if
    /// pushdown applies — oldest ineligible entries.
    fn choose_promotions(&self, seg: usize, budget: usize) -> Vec<InstTag> {
        let threshold = self.config.threshold(seg - 1);
        let mut eligible: Vec<(InstTag, i64)> = self.segments[seg]
            .iter()
            .map(|e| (e.tag, e.delay()))
            .filter(|(_, d)| *d < threshold)
            .collect();
        eligible.sort_by_key(|(t, _)| *t);
        let mut picks: Vec<InstTag> = eligible.iter().take(budget).map(|(t, _)| *t).collect();

        if self.config.pushdown
            && picks.len() < budget
            && self.free(seg) < self.config.promote_width
            && self.free_prev[seg - 1] * 2 > 3 * self.config.promote_width
        {
            let mut ineligible: Vec<InstTag> = self.segments[seg]
                .iter()
                .filter(|e| e.delay() >= threshold)
                .map(|e| e.tag)
                .collect();
            ineligible.sort();
            let room = budget - picks.len();
            picks.extend(ineligible.into_iter().take(room.min(self.config.promote_width)));
        }
        picks
    }

    fn remove_entry(&mut self, seg: usize, tag: InstTag) -> Entry {
        let idx = self.segments[seg]
            .iter()
            .position(|e| e.tag == tag)
            .expect("entry to remove must exist");
        self.segments[seg].swap_remove(idx)
    }

    /// Moves `tag` from `seg` to `seg - 1`, asserting the chain wire if
    /// it heads a chain.
    fn promote_one(&mut self, now: Cycle, seg: usize, tag: InstTag, pushdown: bool) {
        let mut entry = self.remove_entry(seg, tag);
        entry.moved_at = now;
        if let Some(chain) = entry.heads_chain {
            // The head asserts its wire in the segment it leaves (§3.3).
            self.assert_signal(chain, SignalKind::Pulse, seg);
        }
        // A promotion moves against the upward-travelling wire signals: a
        // signal currently visible in the destination segment would reach
        // the source segment next cycle and miss the mover, so deliver it
        // on the way past.
        for sig in &self.signals {
            if sig.segment + 1 == seg {
                entry.apply_signal(*sig);
            }
        }
        self.segments[seg - 1].push(entry);
        if pushdown {
            self.stats.pushdowns += 1;
        } else {
            self.stats.promotions += 1;
        }
    }

    fn run_promotion(&mut self, now: Cycle) -> u64 {
        let mut promoted = 0u64;
        for seg in 1..self.config.num_segments {
            let space = self.free_prev[seg - 1].min(self.free(seg - 1));
            let budget = space.min(self.config.promote_width);
            if budget == 0 {
                continue;
            }
            let threshold = self.config.threshold(seg - 1);
            let picks = self.choose_promotions(seg, budget);
            for tag in picks {
                let is_pushdown = self.segments[seg]
                    .iter()
                    .find(|e| e.tag == tag)
                    .map(|e| e.delay() >= threshold)
                    .unwrap_or(false);
                self.promote_one(now, seg, tag, is_pushdown);
                promoted += 1;
            }
        }
        promoted
    }

    /// §4.5 recovery: guarantee a free slot in every segment and keep the
    /// oldest ready instruction moving toward issue.
    fn run_deadlock_recovery(&mut self, now: Cycle) {
        self.stats.deadlock_cycles += 1;
        // If the issue buffer is full of unready instructions, recycle
        // the youngest back to the top.
        let mut recycled: Option<Entry> = None;
        if self.free(0) == 0 && !self.segments[0].iter().any(|e| e.data_ready(now)) {
            let youngest = self.segments[0].iter().map(|e| e.tag).max().expect("segment 0 is full");
            recycled = Some(self.remove_entry(0, youngest));
            self.stats.recovery_recycles += 1;
        }
        // Bottom-up, every full segment force-promotes one instruction
        // (eligible if available, else the oldest ineligible).
        for seg in 1..self.config.num_segments {
            if self.free(seg) > 0 || self.free(seg - 1) == 0 {
                continue;
            }
            let threshold = self.config.threshold(seg - 1);
            let pick = self.segments[seg]
                .iter()
                .filter(|e| e.delay() < threshold)
                .map(|e| e.tag)
                .min()
                .or_else(|| self.segments[seg].iter().map(|e| e.tag).min());
            if let Some(tag) = pick {
                self.promote_one(now, seg, tag, false);
                self.stats.recovery_promotions += 1;
            }
        }
        if let Some(entry) = recycled {
            let top = self.top();
            // Recovery freed a slot in the top segment if it was full.
            let dest = (0..=top).rev().find(|&k| self.free(k) > 0).unwrap_or(top);
            self.segments[dest].push(entry);
        }
    }

    /// Builds the scheduling operand for one source register, from the
    /// register information table.
    fn sched_for(&self, sched: RegSched) -> Option<SchedOperand> {
        match sched {
            RegSched::Available => None,
            RegSched::Countdown { remaining } => Some(SchedOperand {
                chain: None,
                rel_latency: remaining,
                head_loc: 0,
                self_timed: true,
                suspended: false,
            }),
            RegSched::OnChain { chain, latency, head_loc, self_timed, suspended } => {
                Some(SchedOperand {
                    chain: Some(chain),
                    rel_latency: latency,
                    head_loc: if self_timed { 0 } else { head_loc },
                    self_timed,
                    suspended,
                })
            }
        }
    }

    /// Predicted produce latency of an instruction (loads use the
    /// configured hit latency; §3.3).
    fn predicted_latency(&self, op: OpClass) -> i64 {
        if op == OpClass::Load {
            self.config.predicted_load_latency
        } else {
            i64::from(op.exec_latency())
        }
    }

    /// The §4.2 dispatch target: the highest non-empty segment (empty
    /// leading segments are bypassed), or the segment above it when full.
    fn dispatch_target(&self) -> Option<usize> {
        let top = self.top();
        if !self.config.bypass {
            return (self.free(top) > 0).then_some(top);
        }
        let highest_nonempty = (0..=top).rev().find(|&k| !self.segments[k].is_empty()).unwrap_or(0);
        if self.free(highest_nonempty) > 0 {
            Some(highest_nonempty)
        } else if highest_nonempty < top {
            Some(highest_nonempty + 1)
        } else {
            None
        }
    }
}

impl IssueQueue for SegmentedIq {
    fn capacity(&self) -> usize {
        self.config.capacity()
    }

    fn occupancy(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    fn tick(&mut self, now: Cycle, execution_idle: bool) {
        // Snapshot each segment's free-slot count as of the end of the
        // previous cycle (= start of this one, after last cycle's issue
        // and dispatch) — the information §3.1 allows promotion to use.
        for k in 0..self.config.num_segments {
            self.free_prev[k] = self.free(k);
        }

        // Per-cycle statistics.
        self.stats.iq.cycles += 1;
        self.stats.iq.occupancy_accum += self.occupancy() as u64;
        self.stats.seg0_occupancy_accum += self.segments[0].len() as u64;
        self.stats.num_segments = self.config.num_segments;
        self.stats.empty_segment_cycles +=
            self.segments.iter().filter(|s| s.is_empty()).count() as u64;
        let ready0 = self.segments[0].iter().filter(|e| e.data_ready(now)).count() as u64;
        let ready_all: u64 = self
            .segments
            .iter()
            .map(|s| s.iter().filter(|e| e.data_ready(now)).count() as u64)
            .sum();
        self.stats.ready_in_seg0_accum += ready0;
        self.stats.ready_total_accum += ready_all;
        self.chains.sample(now);

        // 1. Signals asserted last cycle move one segment up.
        self.propagate_signals();

        // 2. Self-timed countdowns (suspends delivered above gate these).
        for seg in &mut self.segments {
            for e in seg.iter_mut() {
                for op in e.sched_ops.iter_mut().flatten() {
                    op.tick();
                }
            }
        }
        for t in &mut self.regs {
            t.tick();
        }

        // 3. Chain/threshold-driven promotion.
        let promoted = self.run_promotion(now);

        // 4. Deadlock detection (§4.5): queue non-empty, nothing issued
        //    or promoted, nothing executing.
        let made_progress = promoted > 0 || self.issued_this_cycle;
        if self.config.deadlock_recovery
            && !made_progress
            && !self.progress_last_cycle
            && execution_idle
            && !self.is_empty()
        {
            self.run_deadlock_recovery(now);
        }
        self.progress_last_cycle = made_progress;
        self.issued_this_cycle = false;
    }

    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall> {
        // Find a landing segment before committing to anything.
        let Some(target) = self.dispatch_target() else {
            self.stats.iq.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        };

        // Operand scheduling status, from this thread's register
        // information table.
        let thread = info.thread as usize;
        if thread >= self.regs.len() {
            self.regs.resize_with(thread + 1, RegInfoTable::new);
        }
        let srcs: Vec<(usize, RegSched)> = info
            .srcs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i, self.regs[thread].get(s.reg))))
            .collect();
        let chain_of = |s: &RegSched| match s {
            RegSched::OnChain { chain, .. } => Some(*chain),
            _ => None,
        };
        let chains_seen: Vec<ChainRef> = srcs.iter().filter_map(|(_, s)| chain_of(s)).collect();
        let dual_dep = chains_seen.len() == 2 && chains_seen[0] != chains_seen[1];

        let is_load = info.op == OpClass::Load;
        let load_heads_chain = is_load && !info.predicted_hit;
        let dual_heads_chain = dual_dep && self.config.two_chain_tracking;
        let needs_chain = load_heads_chain || dual_heads_chain;

        // Allocate the chain wire (the only other stall source).
        let heads_chain = if needs_chain {
            match self.chains.alloc(info.tag, is_load) {
                Some(c) => Some(c),
                None => {
                    self.chains.note_wire_stall();
                    self.stats.iq.stalls_no_chain += 1;
                    return Err(DispatchStall::NoChainWire);
                }
            }
        } else {
            None
        };

        // Build scheduling operands; under single-chain tracking (§4.3)
        // keep only the predicted-critical chain when two would be needed.
        let mut sched_ops: [Option<SchedOperand>; 2] = [None, None];
        if dual_dep && !self.config.two_chain_tracking {
            let pick = info.lrp_pick.unwrap_or(OperandPick::Left);
            let keep = match pick {
                OperandPick::Left => srcs[0].0,
                OperandPick::Right => srcs[srcs.len() - 1].0,
            };
            for (i, s) in &srcs {
                if *i == keep || chain_of(s).is_none() {
                    sched_ops[*i] = self.sched_for(*s);
                }
            }
        } else {
            for (i, s) in &srcs {
                sched_ops[*i] = self.sched_for(*s);
            }
        }

        // Data-readiness operands.
        let mut data_ops: [Option<DataOperand>; 2] = [None, None];
        for (i, s) in info.srcs.iter().enumerate() {
            if let Some(s) = s {
                if let Some(producer) = s.producer {
                    data_ops[i] = Some(DataOperand { producer, ready_at: s.known_ready_at });
                }
            }
        }

        // Update the register information table for the destination.
        if let Some(dest) = info.dest {
            let produce = self.predicted_latency(info.op);
            // Countdown estimates assume the instruction issues as soon
            // as its operands are ready; optionally add the descent time
            // of the landing segment (see `countdown_includes_descent`).
            // Load values use the chain-style two-cycles-per-segment
            // estimate (their dependents flooding segment 0 is the §4.4
            // failure mode); cheap ALU values stay optimistic so address
            // computations are not held back.
            let descent = if self.config.countdown_includes_descent {
                if info.op == OpClass::Load {
                    2 * target as i64
                } else {
                    target as i64
                }
            } else {
                0
            };
            let new_sched = if let Some(chain) = heads_chain {
                RegSched::OnChain {
                    chain,
                    latency: produce,
                    head_loc: target as i64,
                    self_timed: false,
                    suspended: false,
                }
            } else {
                // Follow the slowest operand.
                let slowest = sched_ops.iter().flatten().max_by_key(|o| o.delay()).copied();
                match slowest {
                    None => RegSched::Countdown { remaining: descent.max(0) + produce },
                    Some(op) => match op.chain {
                        None => {
                            RegSched::Countdown { remaining: op.delay().max(descent) + produce }
                        }
                        // Keep listening on the chain even in self-timed
                        // mode so suspend/resume reaches dependents'
                        // dependents.
                        Some(chain) => RegSched::OnChain {
                            chain,
                            latency: op.rel_latency.max(0) + produce,
                            head_loc: op.head_loc,
                            self_timed: op.self_timed,
                            suspended: op.suspended,
                        },
                    },
                }
            };
            self.regs[thread].set(dest, new_sched);
        }

        // Statistics.
        self.stats.iq.dispatched += 1;
        if info.num_srcs() == 2 {
            self.stats.two_src_dispatches += 1;
        }
        if dual_dep {
            self.stats.dual_dep_dispatches += 1;
        }
        if self.config.bypass && target < self.top() {
            self.stats.bypassed_dispatches += 1;
            self.stats.segments_bypassed += (self.top() - target) as u64;
        }

        let mut entry =
            Entry { tag: info.tag, op: info.op, data_ops, sched_ops, heads_chain, moved_at: now };
        // The register table lags the wire pipeline: signals between the
        // landing segment and the top have been seen by neither the table
        // nor (ever again) this segment. Deliver them now so a bypassed
        // dispatch starts from the state a resident entry would hold.
        for sig in &self.signals {
            if sig.segment >= target {
                entry.apply_signal(*sig);
            }
        }
        self.segments[target].push(entry);
        Ok(())
    }

    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst> {
        let mut ready: Vec<InstTag> = self.segments[0]
            .iter()
            .filter(|e| e.data_ready(now) && e.moved_at < now)
            .map(|e| e.tag)
            .collect();
        ready.sort();
        let mut issued = Vec::new();
        for tag in ready {
            let op =
                self.segments[0].iter().find(|e| e.tag == tag).expect("candidate still queued").op;
            if fus.slots_left() == 0 {
                break;
            }
            if !fus.try_issue(now, op) {
                continue; // unit busy; try other op kinds
            }
            let entry = self.remove_entry(0, tag);
            if let Some(chain) = entry.heads_chain {
                self.assert_signal(chain, SignalKind::Pulse, 0);
            }
            issued.push(IssuedInst { tag, op });
        }
        self.stats.iq.issued += issued.len() as u64;
        if !issued.is_empty() {
            self.issued_this_cycle = true;
        }
        issued
    }

    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle) {
        for seg in &mut self.segments {
            for e in seg.iter_mut() {
                for d in e.data_ops.iter_mut().flatten() {
                    if d.producer == producer {
                        d.ready_at = Some(ready_at);
                    }
                }
            }
        }
    }

    fn on_load_miss(&mut self, tag: InstTag) {
        if let Some(chain) = self.chains.chain_of_head(tag) {
            self.assert_signal(chain, SignalKind::Suspend, 0);
        }
    }

    fn on_load_fill(&mut self, tag: InstTag) {
        if let Some(chain) = self.chains.chain_of_head(tag) {
            self.assert_signal(chain, SignalKind::Resume, 0);
        }
    }

    fn on_writeback(&mut self, tag: InstTag) {
        self.chains.release_by_head(tag);
    }

    fn flush(&mut self) {
        for seg in &mut self.segments {
            seg.clear();
        }
        self.signals.clear();
        self.chains.release_all();
        for t in &mut self.regs {
            t.reset();
        }
    }

    fn stats(&self) -> IqStats {
        self.stats.iq
    }
}

impl SegmentedIq {
    /// Snapshot of the full segmented statistics, including chain usage.
    #[must_use]
    pub fn full_stats(&self) -> SegmentedStats {
        let mut s = self.stats.clone();
        s.chains = *self.chains.stats();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::SrcOperand;
    use chainiq_isa::ArchReg;

    fn cfg3x8() -> SegmentedIqConfig {
        SegmentedIqConfig::small_for_tests()
    }

    fn ready_src(reg: ArchReg) -> SrcOperand {
        SrcOperand::ready(reg)
    }

    fn dep_src(reg: ArchReg, producer: InstTag) -> SrcOperand {
        SrcOperand { reg, producer: Some(producer), known_ready_at: None }
    }

    /// Drives the queue until `want` instructions have issued or `limit`
    /// cycles pass, announcing fixed-latency completions automatically.
    fn run_until_issued(iq: &mut SegmentedIq, want: usize, limit: u64) -> Vec<(InstTag, Cycle)> {
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 1..=limit {
            iq.tick(now, issued.len() == want);
            for sel in iq.select_issue(now, &mut fus) {
                iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
                issued.push((sel.tag, now));
            }
            fus.next_cycle();
            if issued.len() >= want {
                break;
            }
        }
        issued
    }

    #[test]
    fn capacity_and_threshold() {
        let c = SegmentedIqConfig::paper(512, Some(128));
        assert_eq!(c.num_segments, 16);
        assert_eq!(c.capacity(), 512);
        assert_eq!(c.threshold(0), 2);
        assert_eq!(c.threshold(1), 4);
        assert_eq!(c.threshold(7), 16);
    }

    #[test]
    fn empty_queue_dispatch_bypasses_to_issue_buffer() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.segment_of(InstTag(0)), Some(0), "bypass all empty segments");
        assert_eq!(iq.full_stats().bypassed_dispatches, 1);
        assert_eq!(iq.full_stats().segments_bypassed, 2);
    }

    #[test]
    fn bypass_disabled_dispatches_to_top() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.segment_of(InstTag(0)), Some(2));
    }

    #[test]
    fn ready_chain_promotes_and_issues_in_order() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        let issued = run_until_issued(&mut iq, 1, 20);
        assert_eq!(issued.len(), 1);
        // Two promotions (seg2 -> seg1 -> seg0) then issue: 3 cycles.
        assert_eq!(issued[0].1, 3);
    }

    #[test]
    fn dependent_issues_after_producer() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntMul, ArchReg::int(1), &[]))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let issued = run_until_issued(&mut iq, 2, 30);
        assert_eq!(issued.len(), 2);
        let (t0, c0) = issued[0];
        let (t1, c1) = issued[1];
        assert_eq!((t0, t1), (InstTag(0), InstTag(1)));
        assert!(c1 >= c0 + 3, "IntMul takes 3 cycles; dependent at {c1} vs producer at {c0}");
    }

    #[test]
    fn back_to_back_single_cycle_chain() {
        let mut iq = SegmentedIq::new(cfg3x8());
        // A chain of dependent 1-cycle adds should issue on consecutive cycles.
        for i in 0..4u64 {
            let srcs: Vec<SrcOperand> =
                if i == 0 { vec![] } else { vec![dep_src(ArchReg::int(i as u8), InstTag(i - 1))] };
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &srcs,
                ),
            )
            .unwrap();
        }
        let issued = run_until_issued(&mut iq, 4, 30);
        assert_eq!(issued.len(), 4);
        for w in issued.windows(2) {
            assert_eq!(w[1].1, w[0].1 + 1, "dependent adds must issue back-to-back");
        }
    }

    #[test]
    fn figure1_delay_values() {
        // The paper's Figure 1: delays computed at dispatch, with ADD
        // latency 1 and "MUL" latency 2 (we use FpAdd for the 2-cycle op).
        let mut iq = SegmentedIq::new(SegmentedIqConfig {
            num_segments: 3,
            segment_size: 16,
            promote_width: 8,
            max_chains: None,
            pushdown: false,
            bypass: false,
            deadlock_recovery: true,
            two_chain_tracking: true,
            predicted_load_latency: 4,
            countdown_includes_descent: false,
        });
        let r = ArchReg::int;
        let add = OpClass::IntAlu;
        let mul = OpClass::FpAdd; // 2-cycle stand-in for the example's MUL
        let t = InstTag;
        // i0: add *,* -> r1        i1: mul *,* -> r2
        iq.dispatch(0, DispatchInfo::compute(t(0), add, r(1), &[])).unwrap();
        iq.dispatch(0, DispatchInfo::compute(t(1), mul, r(2), &[])).unwrap();
        // i2: add r2,* -> r4
        iq.dispatch(0, DispatchInfo::compute(t(2), add, r(4), &[dep_src(r(2), t(1))])).unwrap();
        // i3: mul r4,* -> r6
        iq.dispatch(0, DispatchInfo::compute(t(3), mul, r(6), &[dep_src(r(4), t(2))])).unwrap();
        // i4: mul r6,* -> r8
        iq.dispatch(0, DispatchInfo::compute(t(4), mul, r(8), &[dep_src(r(6), t(3))])).unwrap();
        // i5: add r1,* -> r3
        iq.dispatch(0, DispatchInfo::compute(t(5), add, r(3), &[dep_src(r(1), t(0))])).unwrap();
        // i6: add r3,* -> r5
        iq.dispatch(0, DispatchInfo::compute(t(6), add, r(5), &[dep_src(r(3), t(5))])).unwrap();
        // i7: add r5,* -> r7
        iq.dispatch(0, DispatchInfo::compute(t(7), add, r(7), &[dep_src(r(5), t(6))])).unwrap();
        // i8: add r6,r7 -> r9
        iq.dispatch(
            0,
            DispatchInfo::compute(t(8), add, r(9), &[dep_src(r(6), t(3)), dep_src(r(7), t(7))]),
        )
        .unwrap();
        let expect = [0, 0, 2, 3, 5, 1, 2, 3, 5];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(iq.delay_of(t(i as u64)), Some(*want), "figure 1 delay value of i{i}");
        }
    }

    #[test]
    fn load_heads_a_chain_and_writeback_releases_it() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(2)), false),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 1);
        iq.on_writeback(InstTag(0));
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn predicted_hit_load_creates_no_chain() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(2)), true),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn chain_wire_exhaustion_stalls_dispatch() {
        let mut cfg = cfg3x8();
        cfg.max_chains = Some(1);
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let err = iq
            .dispatch(
                0,
                DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
            )
            .unwrap_err();
        assert_eq!(err, DispatchStall::NoChainWire);
        assert_eq!(iq.occupancy(), 1, "stalled dispatch must not enter the queue");
        assert_eq!(iq.full_stats().iq.stalls_no_chain, 1);
    }

    #[test]
    fn dual_dependence_heads_new_chain_in_base_config() {
        let mut iq = SegmentedIq::new(cfg3x8());
        // Two chain-head loads producing r1 and r2.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // A consumer of both: dual-dep, becomes a head itself.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[dep_src(ArchReg::int(1), InstTag(0)), dep_src(ArchReg::int(2), InstTag(1))],
            ),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 3);
        assert_eq!(iq.full_stats().dual_dep_dispatches, 1);
    }

    #[test]
    fn lrp_mode_follows_single_chain_without_new_head() {
        let mut cfg = cfg3x8();
        cfg.two_chain_tracking = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let mut consumer = DispatchInfo::compute(
            InstTag(2),
            OpClass::IntAlu,
            ArchReg::int(3),
            &[dep_src(ArchReg::int(1), InstTag(0)), dep_src(ArchReg::int(2), InstTag(1))],
        );
        consumer.lrp_pick = Some(OperandPick::Right);
        iq.dispatch(0, consumer).unwrap();
        assert_eq!(iq.live_chains(), 2, "no extra chain under LRP");
    }

    #[test]
    fn queue_full_stalls() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 1;
        cfg.segment_size = 2;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..2 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let err = iq
            .dispatch(0, DispatchInfo::compute(InstTag(9), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap_err();
        assert_eq!(err, DispatchStall::QueueFull);
        assert_eq!(iq.full_stats().iq.stalls_full, 1);
    }

    #[test]
    fn single_segment_acts_as_conventional_queue() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 1;
        cfg.segment_size = 32;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..4u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let issued = run_until_issued(&mut iq, 4, 5);
        assert_eq!(issued.len(), 4);
        assert!(issued.iter().all(|&(_, c)| c == 1), "all ready, 8-wide: one cycle");
    }

    #[test]
    fn far_future_instructions_stay_in_upper_segments() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // A chain-head load (unissuable: its data operand never becomes
        // ready because we never announce the producer).
        iq.dispatch(
            0,
            DispatchInfo::load(
                InstTag(0),
                ArchReg::int(1),
                dep_src(ArchReg::int(9), InstTag(99)),
                false,
            ),
        )
        .unwrap();
        // A deep dependent: delay = 2*head_loc + rel_latency is large.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(1),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        for now in 1..10 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        // The head sinks to segment 0 but cannot issue; the dependent
        // must not enter segment 0 behind it.
        assert_eq!(iq.segment_of(InstTag(0)), Some(0));
        assert!(iq.segment_of(InstTag(1)).unwrap() > 0, "dependent held back by its chain");
    }

    #[test]
    fn pushdown_moves_ineligible_when_below_is_empty() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        cfg.segment_size = 8;
        cfg.promote_width = 4;
        let mut iq = SegmentedIq::new(cfg);
        // A chain-head load whose data never becomes ready: it sinks to
        // segment 0 and parks there.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        // Let the head sink toward segment 0 (it is data-ready and will
        // issue; never announce its completion so dependents stay unready
        // and the chain never self-times past its latency).
        for now in 1..4 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        // Fill the top segment with deep dependents: delay stays at or
        // above the destination threshold, so they are ineligible.
        for i in 1..=8u64 {
            iq.dispatch(
                4,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::FpMul,
                    ArchReg::fp(i as u8),
                    &[dep_src(ArchReg::int(1), InstTag(0))],
                ),
            )
            .unwrap();
        }
        assert_eq!(iq.free(2), 0, "top segment is full");
        for now in 5..12 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        assert!(iq.full_stats().pushdowns > 0, "full top segment should push down");
    }

    #[test]
    fn deadlock_recovery_restores_progress() {
        // Reproduce §4.5: a mis-assigned instruction's dependents fill a
        // lower segment below their producer.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 2;
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // Two unready instructions land in segment 0 (bypass off, but
        // delay 0 since their producers are "available" per the table —
        // we fake it by having unknown producers with no chain).
        for i in 0..2u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &[dep_src(ArchReg::int(20), InstTag(50))],
                ),
            )
            .unwrap();
            // Force them down by ticking (delay 0 -> promote).
            let mut fus = FuPool::table1();
            iq.tick(i + 1, false);
            let _ = iq.select_issue(i + 1, &mut fus);
        }
        // Now fill the top with a ready instruction that cannot promote.
        iq.dispatch(0, DispatchInfo::compute(InstTag(2), OpClass::IntAlu, ArchReg::int(9), &[]))
            .unwrap();
        iq.dispatch(0, DispatchInfo::compute(InstTag(3), OpClass::IntAlu, ArchReg::int(10), &[]))
            .unwrap();
        // Nothing is executing in the backend, so execution_idle = true.
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 10..60 {
            iq.tick(now, issued.is_empty());
            issued.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
            if !issued.is_empty() {
                break;
            }
        }
        assert!(!issued.is_empty(), "recovery must eventually let the ready instruction issue");
        assert!(iq.full_stats().deadlock_cycles > 0, "the deadlock detector should have fired");
    }

    #[test]
    fn run_deadlock_recovery_recycles_and_force_promotes() {
        // Direct exercise of §4.5's two mechanisms, without relying on
        // tick()'s detector: a full issue buffer of unready instructions
        // below their (conceptual) producers, and a full upper segment
        // holding the one ready instruction.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 2;
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // Two unready instructions (producer never announced) pushed down
        // into segment 0 by normal promotion.
        for i in 0..2u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &[dep_src(ArchReg::int(20), InstTag(50))],
                ),
            )
            .unwrap();
            let mut fus = FuPool::table1();
            iq.tick(i + 1, false);
            let _ = iq.select_issue(i + 1, &mut fus);
        }
        assert_eq!(iq.free(0), 0, "setup: issue buffer full of unready instructions");
        // Segment 1 fills with a ready instruction (tag 2) and another
        // unready one, so both recovery mechanisms have work.
        iq.dispatch(0, DispatchInfo::compute(InstTag(2), OpClass::IntAlu, ArchReg::int(9), &[]))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(3),
                OpClass::IntAlu,
                ArchReg::int(10),
                &[dep_src(ArchReg::int(21), InstTag(51))],
            ),
        )
        .unwrap();
        assert_eq!(iq.free(1), 0, "setup: top segment full");
        let occupancy_before = iq.occupancy();

        iq.run_deadlock_recovery(5);

        let s = iq.full_stats();
        assert_eq!(s.deadlock_cycles, 1);
        assert_eq!(s.recovery_recycles, 1, "full unready issue buffer recycles one entry");
        assert_eq!(s.recovery_promotions, 1, "the full upper segment force-promotes one");
        assert_eq!(iq.occupancy(), occupancy_before, "recovery reorders, never drops");
        assert_eq!(iq.segment_of(InstTag(1)), Some(1), "youngest seg-0 entry recycled to the top");
        assert_eq!(iq.segment_of(InstTag(2)), Some(0), "oldest upper entry forced into seg 0");
        assert_eq!(iq.segment_of(InstTag(0)), Some(0), "oldest unready entry keeps its slot");

        // Boundary: with a ready instruction now in the issue buffer, a
        // second invocation must not recycle again (the buffer is no
        // longer all-unready) and has no promotion headroom.
        iq.run_deadlock_recovery(6);
        let s = iq.full_stats();
        assert_eq!(s.deadlock_cycles, 2);
        assert_eq!(s.recovery_recycles, 1, "no recycle when a seg-0 entry is ready");
        assert_eq!(s.recovery_promotions, 1, "no promotion into a full issue buffer");

        // The recovered layout makes progress: the ready instruction
        // issues on the next cycles.
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 7..20 {
            iq.tick(now, issued.is_empty());
            issued.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
            if !issued.is_empty() {
                break;
            }
        }
        assert_eq!(
            issued.first().map(|sel| sel.tag),
            Some(InstTag(2)),
            "the force-promoted ready instruction must be the one that issues"
        );
    }

    #[test]
    fn suspend_freezes_dependents_until_fill() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        // Chain-head load, ready to issue.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // Dependent of the load.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        let mut load_issued_at = None;
        for now in 1..8 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                load_issued_at = Some(now);
                // Simulate a miss discovered at EA+3: suspend, do not
                // announce readiness yet.
                iq.on_load_miss(InstTag(0));
            }
            fus.next_cycle();
            if load_issued_at.is_some() {
                break;
            }
        }
        let t0 = load_issued_at.expect("load should issue");
        // Let many cycles pass; the dependent must be frozen (suspended).
        for now in t0 + 1..t0 + 20 {
            iq.tick(now, false);
            assert!(iq.select_issue(now, &mut fus).is_empty());
            fus.next_cycle();
        }
        let frozen_delay = iq.delay_of(InstTag(1)).unwrap();
        assert!(frozen_delay > 0, "suspended dependent must not count down to 0");
        // Fill arrives: resume + announce.
        iq.on_load_fill(InstTag(0));
        iq.announce_ready(InstTag(0), t0 + 25);
        let mut issued_after = Vec::new();
        for now in t0 + 20..t0 + 40 {
            iq.tick(now, false);
            issued_after.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
        }
        assert_eq!(issued_after.len(), 1);
        assert_eq!(issued_after[0].tag, InstTag(1));
    }

    #[test]
    fn bypassed_dispatch_receives_inflight_signals() {
        // A chain head issues from segment 0 while the queue above is
        // partially occupied; a member dispatched afterwards into a
        // middle segment (bypass) must not wait for a pulse that already
        // passed its landing segment.
        let mut cfg = cfg3x8();
        cfg.num_segments = 4;
        cfg.countdown_includes_descent = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Head load (ready) and an occupant that keeps segment 2 non-empty.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(1),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        // Let the head sink and issue; its pulse starts climbing.
        let mut head_issued_at = None;
        for now in 1..8 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                iq.announce_ready(sel.tag, now + 4);
                head_issued_at = Some(now);
            }
            fus.next_cycle();
            if head_issued_at.is_some() {
                break;
            }
        }
        let t0 = head_issued_at.expect("head must issue");
        // Dispatch a late member the very next cycle: the issue pulse is
        // between segments. Its operand state comes from the (laggy)
        // table plus the in-flight signals at or above its landing
        // segment — its delay must eventually drain to 0, not freeze.
        iq.dispatch(
            t0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        for now in t0 + 1..t0 + 20 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        assert!(
            iq.delay_of(InstTag(2)).map(|d| d == 0).unwrap_or(true),
            "late member's delay must drain, got {:?}",
            iq.delay_of(InstTag(2))
        );
    }

    #[test]
    fn empty_segments_are_counted_for_gating() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.tick(1, true);
        let s = iq.full_stats();
        assert_eq!(s.num_segments, 3);
        assert_eq!(s.empty_segment_cycles, 3, "all three segments empty");
        assert!((s.gateable_segment_frac() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn promotion_bandwidth_is_limited_per_boundary() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 16;
        cfg.promote_width = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..10u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        iq.tick(1, false);
        assert_eq!(iq.segment_len(0), 4, "at most promote_width move per cycle");
        assert_eq!(iq.segment_len(1), 6);
        iq.tick(2, false);
        assert_eq!(iq.segment_len(0), 8);
    }

    #[test]
    fn promotion_respects_previous_cycle_free_count() {
        // §3.1: a segment promotes based on the destination's free slots
        // as of the previous cycle. Fill segment 0 completely, then free
        // it; promotion into it can start only one cycle later.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 4;
        cfg.promote_width = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Four ready instructions sink into segment 0 and stay (we never
        // let them issue by exhausting the FU pool with a tiny pool).
        for i in 0..4u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        iq.tick(1, false); // all four promote into segment 0
        assert_eq!(iq.segment_len(0), 4);
        // Four more wait in segment 1.
        for i in 4..8u64 {
            iq.dispatch(
                1,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        // Cycle 2: segment 0 drains by issue, but its free count as of
        // the previous cycle was zero, so nothing promotes this cycle.
        iq.tick(2, false);
        let issued = iq.select_issue(2, &mut fus);
        assert_eq!(issued.len(), 4);
        assert_eq!(iq.segment_len(0), 0);
        assert_eq!(iq.segment_len(1), 4, "free_prev was 0: no promotion yet");
        // Cycle 3: last cycle's free count now permits promotion.
        iq.tick(3, false);
        assert_eq!(iq.segment_len(0), 4);
    }

    #[test]
    fn suspend_reaches_upper_segments_with_wire_latency() {
        // A suspend asserted at segment 0 must take one cycle per segment
        // to become visible above (§3.3 pipelining).
        let mut cfg = cfg3x8();
        cfg.num_segments = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Chain-head load and one dependent.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(0),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        // Run until the head issues; immediately report a miss.
        let mut issued_at = None;
        for now in 1..10 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                iq.on_load_miss(InstTag(0));
                issued_at = Some(now);
            }
            fus.next_cycle();
            if issued_at.is_some() {
                break;
            }
        }
        let t0 = issued_at.expect("head issues");
        // The dependent sits above segment 0; after enough cycles for the
        // suspend to climb, its delay freezes above zero.
        for now in t0 + 1..t0 + 12 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        let frozen = iq.delay_of(InstTag(1)).expect("still queued");
        assert!(frozen > 0, "suspended dependent frozen at {frozen}");
        // Resume releases it.
        iq.on_load_fill(InstTag(0));
        iq.announce_ready(InstTag(0), t0 + 14);
        let mut done = false;
        for now in t0 + 12..t0 + 40 {
            iq.tick(now, false);
            done |= !iq.select_issue(now, &mut fus).is_empty();
            fus.next_cycle();
        }
        assert!(done, "dependent must issue after the fill");
    }

    #[test]
    fn two_src_statistics_are_counted() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(0),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[ready_src(ArchReg::int(1)), ready_src(ArchReg::int(2))],
            ),
        )
        .unwrap();
        assert_eq!(iq.full_stats().two_src_dispatches, 1);
        assert_eq!(iq.full_stats().dual_dep_dispatches, 0, "both operands available");
    }

    #[test]
    fn threads_have_independent_register_tables() {
        // Thread 1's write to r1 must not disturb thread 0's chain
        // tracking of its own r1.
        let mut iq = SegmentedIq::new(cfg3x8());
        // Thread 0: chain-head load producing r1.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // Thread 1: plain ALU writing its own r1.
        let mut alien = DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(1), &[]);
        alien.thread = 1;
        iq.dispatch(0, alien).unwrap();
        // Thread 0's dependent of r1 must still join the load's chain
        // (delay > 0), not see thread 1's countdown.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        assert!(
            iq.delay_of(InstTag(2)).unwrap() >= 4,
            "thread 0's dependent tracks the load chain: {:?}",
            iq.delay_of(InstTag(2))
        );
    }

    #[test]
    fn flush_empties_everything() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.flush();
        assert!(iq.is_empty());
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn occupancy_and_capacity() {
        let mut iq = SegmentedIq::new(cfg3x8());
        assert_eq!(iq.capacity(), 24);
        assert!(iq.is_empty());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.occupancy(), 1);
    }
}
