//! The segmented instruction queue (§3) with all §4 enhancements.
//!
//! # Kernel data structures (DESIGN.md §9)
//!
//! The kernel splits the per-cycle work by *density*. Sparse events —
//! chain-wire signals and wakeup announcements — are delivered through
//! indexes (per-segment follower lists, a producer→consumer waiter set)
//! instead of scanning whole segments. Dense state — self-timed
//! countdowns and promotion eligibility, which change for most of the
//! window every cycle — is swept linearly over contiguous storage:
//! entries live in a slab (`slots`) addressed by per-segment tag-sorted
//! vectors, so the sweeps are cache-resident. Readiness statistics come
//! from per-segment counters maintained incrementally, not from
//! recounting the window.
//!
//! Every *write* path keeps the indexes coherent unconditionally; the
//! `naive` flag only reroutes the *read* paths that have an indexed fast
//! path through reference full scans, which is what the differential
//! tests compare against.

use std::collections::BTreeSet;

use chainiq_isa::{Cycle, OpClass};

use crate::chain::{ChainRef, ChainTable, SignalKind, WireSignal};
use crate::fu::FuPool;
use crate::queue::{IqStats, IssueQueue, IssuedInst};
use crate::regtable::{RegInfoTable, RegSched};
use crate::stats::SegmentedStats;
use crate::tag::{DispatchInfo, DispatchStall, InstTag, OperandPick};

/// Configuration of a [`SegmentedIq`]. Every §4 enhancement is an
/// independent switch so the ablation benches can isolate each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedIqConfig {
    /// Number of segments (the pipeline depth of the queue).
    pub num_segments: usize,
    /// Instruction slots per segment (the paper uses 32).
    pub segment_size: usize,
    /// Maximum instructions promoted between adjacent segments per cycle
    /// (the paper matches it to the 8-wide issue width).
    pub promote_width: usize,
    /// Chain wires available; `None` models the unlimited-chains queue of
    /// §6.1.
    pub max_chains: Option<usize>,
    /// Enable the §4.1 pushdown mechanism.
    pub pushdown: bool,
    /// Enable the §4.2 dispatch bypass of empty segments.
    pub bypass: bool,
    /// Allow instructions to follow two chains (§3.2). When false, the
    /// dispatch stage's left/right-predictor pick chooses a single chain
    /// (§4.3) and dual-dependence instructions stop consuming chains.
    pub two_chain_tracking: bool,
    /// Enable §4.5 deadlock detection/recovery.
    pub deadlock_recovery: bool,
    /// Predicted latency of a load from issue to value (EA calculation
    /// plus the L1 hit latency; 4 with Table 1 numbers).
    pub predicted_load_latency: i64,
    /// Include the landing segment's descent time in the countdown-based
    /// delay estimates of values that are not chain-tracked. The paper's
    /// §3.1 delay values are pure dataflow estimates (assume immediate
    /// issue); under dispatch backlog that underestimate floods segment 0
    /// with the dependents of HMP-suppressed loads, so the paper-shaped
    /// experiments enable this refinement (see DESIGN.md §4).
    pub countdown_includes_descent: bool,
}

impl SegmentedIqConfig {
    /// The paper's main configuration: `entries / 32` segments of 32
    /// slots, 8-wide promotion, all enhancements on.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive multiple of 32.
    #[must_use]
    pub fn paper(entries: usize, max_chains: Option<usize>) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(32),
            "paper configs are multiples of 32 entries"
        );
        SegmentedIqConfig {
            num_segments: entries / 32,
            segment_size: 32,
            promote_width: 8,
            max_chains,
            pushdown: true,
            bypass: true,
            two_chain_tracking: true,
            deadlock_recovery: true,
            predicted_load_latency: 4,
            countdown_includes_descent: true,
        }
    }

    /// A tiny three-segment queue for unit tests and doc examples.
    #[must_use]
    pub fn small_for_tests() -> Self {
        SegmentedIqConfig {
            num_segments: 3,
            segment_size: 8,
            promote_width: 4,
            max_chains: None,
            pushdown: true,
            bypass: true,
            two_chain_tracking: true,
            deadlock_recovery: true,
            predicted_load_latency: 4,
            countdown_includes_descent: true,
        }
    }

    /// Total instruction slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.num_segments * self.segment_size
    }

    /// Promotion threshold of segment `j`: an instruction may enter
    /// segment `j` only with a delay value below this (2, 4, 6, … from
    /// the bottom; §3.1).
    #[must_use]
    pub fn threshold(&self, segment: usize) -> i64 {
        2 * (segment as i64 + 1)
    }
}

/// One scheduling operand: the chain-relative position that maintains the
/// entry's delay value. The delay value of §3.1 is `2 * head_loc +
/// rel_latency`; pulses decrement `head_loc`, self-timed mode decrements
/// `rel_latency` every unsuspended cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SchedOperand {
    /// Chain listened to, if any (`None` = pure countdown).
    chain: Option<ChainRef>,
    /// Expected cycles from head issue to operand availability.
    rel_latency: i64,
    /// Head's segment as last observed by this entry.
    head_loc: i64,
    /// Head has issued; `rel_latency` counts down.
    self_timed: bool,
    /// Countdown frozen by a miss (§3.4).
    suspended: bool,
}

impl SchedOperand {
    fn delay(&self) -> i64 {
        2 * self.head_loc.max(0) + self.rel_latency.max(0)
    }

    fn apply(&mut self, kind: SignalKind) {
        match kind {
            SignalKind::Pulse => {
                if !self.self_timed {
                    if self.head_loc > 0 {
                        self.head_loc -= 1;
                    } else {
                        self.self_timed = true;
                    }
                }
            }
            SignalKind::Suspend => self.suspended = true,
            SignalKind::Resume => self.suspended = false,
        }
    }

    fn tick(&mut self) {
        if self.self_timed && !self.suspended && self.rel_latency > 0 {
            self.rel_latency -= 1;
        }
    }
}

/// Data-readiness tracking for one operand (drives *issue*, as opposed to
/// the scheduling operands that drive *promotion*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DataOperand {
    producer: InstTag,
    ready_at: Option<Cycle>,
}

#[derive(Debug, Clone)]
struct Entry {
    tag: InstTag,
    op: OpClass,
    data_ops: [Option<DataOperand>; 2],
    sched_ops: [Option<SchedOperand>; 2],
    heads_chain: Option<ChainRef>,
    /// Cycle this entry last arrived in its segment; an entry cannot be
    /// selected for issue in the same cycle it entered segment 0.
    moved_at: Cycle,
    /// Segment currently holding the entry (kept in sync with the
    /// `segs` lists; 0 = issue buffer).
    seg: usize,
    /// Earliest cycle at which every data operand is known ready
    /// (`Some(0)` when there are none), or `None` while any producer is
    /// still unannounced. Changes only under `announce_ready`.
    ready_cache: Option<Cycle>,
    /// Slot holds a buffered instruction (false = free-listed).
    live: bool,
    /// This entry is included in its segment's `ready_count` (its
    /// `ready_cache` has passed `last_now`).
    counted: bool,
}

impl Entry {
    fn delay(&self) -> i64 {
        self.sched_ops.iter().flatten().map(SchedOperand::delay).max().unwrap_or(0)
    }

    fn compute_ready_cache(&self) -> Option<Cycle> {
        let mut latest: Cycle = 0;
        for d in self.data_ops.iter().flatten() {
            match d.ready_at {
                Some(r) => latest = latest.max(r),
                None => return None,
            }
        }
        Some(latest)
    }

    fn data_ready(&self, now: Cycle) -> bool {
        self.ready_cache.is_some_and(|c| c <= now)
    }

    fn apply_signal(&mut self, sig: WireSignal) {
        for op in self.sched_ops.iter_mut().flatten() {
            if op.chain == Some(sig.chain) {
                op.apply(sig.kind);
            }
        }
    }
}

/// Inserts `(tag, slot)` into a tag-sorted segment list.
// chainiq-analyze: hot
fn seg_insert(list: &mut Vec<(InstTag, u32)>, tag: InstTag, slot: u32) {
    let i = list.partition_point(|&(t, _)| t < tag);
    list.insert(i, (tag, slot));
}

/// Removes `tag` from a tag-sorted segment list, if present.
// chainiq-analyze: hot
fn seg_remove(list: &mut Vec<(InstTag, u32)>, tag: InstTag) {
    let i = list.partition_point(|&(t, _)| t < tag);
    if i < list.len() && list[i].0 == tag {
        list.remove(i);
    }
}

/// Inserts a chain subscription into a `(chain, tag)`-sorted follower
/// list, deduplicating (an entry with both operands on one chain
/// subscribes once, exactly as the set-based index did).
// chainiq-analyze: hot
fn fol_insert(list: &mut Vec<(ChainRef, InstTag, u32)>, chain: ChainRef, tag: InstTag, slot: u32) {
    let i = list.partition_point(|&(c, t, _)| (c, t) < (chain, tag));
    if i == list.len() || (list[i].0, list[i].1) != (chain, tag) {
        list.insert(i, (chain, tag, slot));
    }
}

/// Removes a chain subscription from a follower list, if present
/// (idempotent, mirroring `fol_insert`'s dedup).
// chainiq-analyze: hot
fn fol_remove(list: &mut Vec<(ChainRef, InstTag, u32)>, chain: ChainRef, tag: InstTag) {
    let i = list.partition_point(|&(c, t, _)| (c, t) < (chain, tag));
    if i < list.len() && (list[i].0, list[i].1) == (chain, tag) {
        list.remove(i);
    }
}

/// The segmented instruction queue with chain-based promotion.
///
/// See the [crate-level docs](crate) for the design summary and a usage
/// example, and [`SegmentedIqConfig`] for the switches. Beyond the
/// [`IssueQueue`] contract it exposes [`SegmentedIq::segmented_stats`]
/// (chain usage, promotion/pushdown/deadlock counters) used by the
/// Table 2 experiments.
#[derive(Debug, Clone)]
pub struct SegmentedIq {
    config: SegmentedIqConfig,
    /// Entry slab: contiguous storage addressed by the slot numbers the
    /// per-segment lists and indexes carry. Slots are recycled LIFO.
    slots: Vec<Entry>,
    free_slots: Vec<u32>,
    /// `(tag, slot)` per segment, tag-sorted (= age order); `segs[0]` is
    /// the issue buffer, higher indices are closer to dispatch.
    segs: Vec<Vec<(InstTag, u32)>>,
    /// Per-segment chain subscriptions, `(chain, tag, slot)`-sorted — the
    /// follower list a wire signal is delivered through.
    followers: Vec<Vec<(ChainRef, InstTag, u32)>>,
    /// Producer-to-consumer tuples for wakeup delivery: `(producer, tag,
    /// slot)` for every data operand of every buffered entry.
    waiters: BTreeSet<(InstTag, InstTag, u32)>,
    /// Data-ready entries per segment, as of `last_now` (the entries with
    /// `counted` set).
    ready_count: Vec<u64>,
    /// Entries whose readiness lies in the future: `(ready_at, tag,
    /// slot)`, counted as the clock passes each `ready_at`. Records can
    /// go stale (a later announce moved the readiness); the drain
    /// revalidates against the live entry instead of erasing eagerly.
    ready_future: BTreeSet<(Cycle, InstTag, u32)>,
    /// The cycle the ready counters were last advanced to.
    last_now: Cycle,
    /// Free slots per segment as of the end of the previous cycle — the
    /// information promotion logic is allowed to use (§3.1).
    free_prev: Vec<usize>,
    /// Signals travelling up the pipelined chain wires, bucketed by the
    /// segment they are currently visible in (promotion and dispatch
    /// consult only the buckets that can reach them, instead of scanning
    /// every signal in flight — the dominant cost under heavy chain
    /// traffic).
    sig_bufs: Vec<Vec<WireSignal>>,
    chains: ChainTable,
    /// One register information table per hardware thread context,
    /// grown on demand (index = `DispatchInfo::thread`).
    regs: Vec<RegInfoTable>,
    stats: SegmentedStats,
    /// Whether `select_issue` issued anything in the current cycle
    /// (input to next cycle's deadlock detector).
    issued_this_cycle: bool,
    /// Whether the previous cycle made any progress (issue or promotion).
    progress_last_cycle: bool,
    /// Scratch buffers so the per-cycle hot paths never allocate.
    scratch_pairs: Vec<(InstTag, u32)>,
    scratch_picks: Vec<(InstTag, u32)>,
    scratch_sigs: Vec<WireSignal>,
    /// Route the read paths through the reference full scans instead of
    /// the indexes (the write paths maintain the indexes either way).
    /// Differential testing only; never set in production.
    naive: bool,
}

impl SegmentedIq {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `config` is zero.
    #[must_use]
    pub fn new(config: SegmentedIqConfig) -> Self {
        assert!(config.num_segments > 0 && config.segment_size > 0 && config.promote_width > 0);
        SegmentedIq {
            config,
            slots: Vec::with_capacity(config.capacity()),
            free_slots: Vec::new(),
            segs: vec![Vec::with_capacity(config.segment_size); config.num_segments],
            followers: vec![Vec::with_capacity(2 * config.segment_size); config.num_segments],
            waiters: BTreeSet::new(),
            ready_count: vec![0; config.num_segments],
            ready_future: BTreeSet::new(),
            last_now: 0,
            free_prev: vec![config.segment_size; config.num_segments],
            sig_bufs: vec![Vec::new(); config.num_segments],
            chains: ChainTable::new(config.max_chains),
            regs: vec![RegInfoTable::new()],
            stats: SegmentedStats::default(),
            issued_this_cycle: false,
            progress_last_cycle: true,
            scratch_pairs: Vec::new(),
            scratch_picks: Vec::new(),
            scratch_sigs: Vec::new(),
            naive: false,
        }
    }

    /// Routes every read path through the reference full-scan kernel
    /// (the indexes stay maintained either way). The differential tests
    /// drive one queue in each mode and demand identical behavior; the
    /// flag does not exist for production use.
    #[cfg(any(test, feature = "naive_kernel"))]
    pub fn set_naive_kernel(&mut self, naive: bool) {
        self.naive = naive;
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SegmentedIqConfig {
        &self.config
    }

    /// Segmented-specific statistics (chain usage, promotions, deadlock
    /// recoveries, …).
    #[must_use]
    pub fn segmented_stats(&self) -> &SegmentedStats {
        &self.stats
    }

    /// Chains currently live.
    #[must_use]
    pub fn live_chains(&self) -> usize {
        self.chains.live()
    }

    /// Number of instructions in segment `k` (0 = issue buffer).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn segment_len(&self, k: usize) -> usize {
        self.segs[k].len()
    }

    /// Finds the slab slot holding `tag`, if buffered (test and
    /// visualization paths; the hot paths carry slots directly).
    fn find_slot(&self, tag: InstTag) -> Option<u32> {
        for list in &self.segs {
            let i = list.partition_point(|&(t, _)| t < tag);
            if i < list.len() && list[i].0 == tag {
                return Some(list[i].1);
            }
        }
        None
    }

    /// The current delay value of the queued instruction `tag`, if it is
    /// still buffered (primarily for tests and visualization).
    #[must_use]
    pub fn delay_of(&self, tag: InstTag) -> Option<i64> {
        self.find_slot(tag).map(|s| self.slots[s as usize].delay())
    }

    /// The segment currently holding `tag`, if buffered.
    #[must_use]
    pub fn segment_of(&self, tag: InstTag) -> Option<usize> {
        self.find_slot(tag).map(|s| self.slots[s as usize].seg)
    }

    fn top(&self) -> usize {
        self.config.num_segments - 1
    }

    fn free(&self, k: usize) -> usize {
        self.config.segment_size - self.segs[k].len()
    }

    /// Stores `entry` in a free slab slot and returns the slot number.
    // chainiq-analyze: hot
    fn alloc_slot(&mut self, entry: Entry) -> u32 {
        if let Some(s) = self.free_slots.pop() {
            debug_assert!(!self.slots[s as usize].live);
            self.slots[s as usize] = entry;
            s
        } else {
            self.slots.push(entry);
            (self.slots.len() - 1) as u32
        }
    }

    /// Inserts `slot` (with `tag` and `seg` already set in its entry)
    /// into the per-segment lists, and counts it ready if its entry is.
    // chainiq-analyze: hot
    fn attach(&mut self, slot: u32) {
        let e = &self.slots[slot as usize];
        let (tag, seg, counted) = (e.tag, e.seg, e.counted);
        let ops = e.sched_ops;
        seg_insert(&mut self.segs[seg], tag, slot);
        for op in ops.iter().flatten() {
            if let Some(chain) = op.chain {
                fol_insert(&mut self.followers[seg], chain, tag, slot);
            }
        }
        if counted {
            self.ready_count[seg] += 1;
        }
    }

    /// Removes `slot` from the per-segment lists (it stays in the slab,
    /// `ready_future` and `waiters` — callers either re-attach after
    /// moving it or finish with `remove_fully`).
    // chainiq-analyze: hot
    fn detach(&mut self, slot: u32) {
        let e = &self.slots[slot as usize];
        let (tag, seg, counted) = (e.tag, e.seg, e.counted);
        let ops = e.sched_ops;
        seg_remove(&mut self.segs[seg], tag);
        for op in ops.iter().flatten() {
            if let Some(chain) = op.chain {
                fol_remove(&mut self.followers[seg], chain, tag);
            }
        }
        if counted {
            self.ready_count[seg] -= 1;
        }
    }

    /// Removes `slot` from the queue entirely (issue path), returning the
    /// chain its instruction headed, if any. Stale `ready_future` records
    /// are left behind; the drain revalidates liveness.
    // chainiq-analyze: hot
    fn remove_fully(&mut self, slot: u32) -> Option<ChainRef> {
        self.detach(slot);
        let e = &mut self.slots[slot as usize];
        e.live = false;
        let (tag, heads, dops) = (e.tag, e.heads_chain, e.data_ops);
        for d in dops.iter().flatten() {
            self.waiters.remove(&(d.producer, tag, slot));
        }
        self.free_slots.push(slot);
        heads
    }

    /// Re-seats `slot` in the ready accounting after a data-operand
    /// mutation.
    // chainiq-analyze: hot
    fn refresh_ready(&mut self, slot: u32) {
        let e = &mut self.slots[slot as usize];
        let new = e.compute_ready_cache();
        if new == e.ready_cache {
            return;
        }
        e.ready_cache = new;
        let (tag, seg, was_counted) = (e.tag, e.seg, e.counted);
        match new {
            Some(c) if c <= self.last_now => {
                if !was_counted {
                    e.counted = true;
                    self.ready_count[seg] += 1;
                }
            }
            Some(c) => {
                if was_counted {
                    e.counted = false;
                    self.ready_count[seg] -= 1;
                }
                self.ready_future.insert((c, tag, slot));
            }
            None => {
                if was_counted {
                    e.counted = false;
                    self.ready_count[seg] -= 1;
                }
            }
        }
    }

    /// Advances the ready counters to `now`, revalidating each matured
    /// record against the live entry (records outlive re-announces and
    /// issued entries; only a live, still-uncounted, actually-ready
    /// entry is counted).
    // chainiq-analyze: hot
    fn drain_ready(&mut self, now: Cycle) {
        self.last_now = now;
        while let Some(&(c, tag, slot)) = self.ready_future.first() {
            if c > now {
                break;
            }
            self.ready_future.pop_first();
            let e = &mut self.slots[slot as usize];
            if e.live && e.tag == tag && !e.counted && e.ready_cache.is_some_and(|rc| rc <= now) {
                e.counted = true;
                self.ready_count[e.seg] += 1;
            }
        }
    }

    /// Delivers `sig` to the entries of its segment: through the
    /// follower list normally, or to every resident in naive mode (the
    /// per-operand chain check makes the two target sets equivalent).
    // chainiq-analyze: hot
    fn deliver_to_segment(&mut self, sig: WireSignal) {
        if self.naive {
            for i in 0..self.segs[sig.segment].len() {
                let slot = self.segs[sig.segment][i].1;
                self.slots[slot as usize].apply_signal(sig);
            }
        } else {
            let list = &self.followers[sig.segment];
            let lo = list.partition_point(|&(c, _, _)| c < sig.chain);
            let hi = lo + list[lo..].partition_point(|&(c, _, _)| c == sig.chain);
            for i in lo..hi {
                let slot = self.followers[sig.segment][i].2;
                self.slots[slot as usize].apply_signal(sig);
            }
        }
    }

    /// Applies a signal to every register table.
    // chainiq-analyze: hot
    fn deliver_to_regs(&mut self, sig: WireSignal) {
        for t in &mut self.regs {
            t.apply_signal(sig);
        }
    }

    /// Asserts a signal at `segment` this cycle: applies it to the
    /// entries there (and the register table if at the top) and queues it
    /// for upward propagation.
    // chainiq-analyze: hot
    fn assert_signal(&mut self, chain: ChainRef, kind: SignalKind, segment: usize) {
        self.stats.wire_signal_hops += 1;
        let sig = WireSignal { chain, kind, segment };
        self.deliver_to_segment(sig);
        if segment == self.config.num_segments - 1 {
            self.deliver_to_regs(sig);
        } else {
            self.sig_bufs[segment].push(sig);
        }
    }

    /// Moves the wire signals one segment up and delivers them. Buckets
    /// are processed top-down — oldest signals first, matching the
    /// assert-time order the single-list kernel used (signals in
    /// different buckets land in disjoint segments, so only the
    /// same-bucket order is observable, and that is preserved).
    // chainiq-analyze: hot
    fn propagate_signals(&mut self) {
        let top = self.top();
        let mut moved = std::mem::take(&mut self.scratch_sigs);
        for s in (0..top).rev() {
            if self.sig_bufs[s].is_empty() {
                continue;
            }
            self.stats.wire_signal_hops += self.sig_bufs[s].len() as u64;
            moved.clear();
            moved.append(&mut self.sig_bufs[s]);
            for &sent in &moved {
                let mut sig = sent;
                sig.segment += 1;
                self.deliver_to_segment(sig);
                if sig.segment >= top {
                    self.deliver_to_regs(sig);
                } else {
                    self.sig_bufs[sig.segment].push(sig);
                }
            }
        }
        self.scratch_sigs = moved;
    }

    /// One cycle of self-timed countdowns. Live countdowns are *dense* —
    /// in steady state most chain members hold one — so this is a sweep
    /// of the resident entries, not an indexed visit (an index here
    /// costs more in churn than the sweep; see DESIGN.md §9). The
    /// per-entry tick is independent, so sweep order is immaterial: a
    /// mostly-full slab is swept sequentially, a mostly-empty one
    /// through the segment lists to skip the dead slots.
    // chainiq-analyze: hot
    fn tick_countdowns(&mut self) {
        let live = self.slots.len() - self.free_slots.len();
        if 2 * live >= self.slots.len() {
            for e in &mut self.slots {
                if e.live {
                    for op in e.sched_ops.iter_mut().flatten() {
                        op.tick();
                    }
                }
            }
        } else {
            for k in 0..self.segs.len() {
                for i in 0..self.segs[k].len() {
                    let slot = self.segs[k][i].1;
                    for op in self.slots[slot as usize].sched_ops.iter_mut().flatten() {
                        op.tick();
                    }
                }
            }
        }
        for t in &mut self.regs {
            t.tick();
        }
    }

    /// Selects up to `budget` entries of `seg` for promotion: eligible
    /// (delay below the destination threshold) oldest-first, then — if
    /// pushdown applies — oldest ineligible entries. Eligibility is
    /// recomputed by scanning the segment: delay values change for most
    /// of the window every cycle, so an eligibility index is all churn
    /// (both kernels share this path; the scan *is* the reference).
    // chainiq-analyze: hot
    fn choose_promotions_into(&self, seg: usize, budget: usize, picks: &mut Vec<(InstTag, u32)>) {
        let threshold = self.config.threshold(seg - 1);
        let list = &self.segs[seg];
        for &(tag, slot) in list {
            if picks.len() == budget {
                break;
            }
            if self.slots[slot as usize].delay() < threshold {
                picks.push((tag, slot));
            }
        }
        if self.pushdown_applies(seg, budget, picks.len()) {
            let mut room = (budget - picks.len()).min(self.config.promote_width);
            for &(tag, slot) in list {
                if room == 0 {
                    break;
                }
                if self.slots[slot as usize].delay() >= threshold {
                    picks.push((tag, slot));
                    room -= 1;
                }
            }
        }
    }

    fn pushdown_applies(&self, seg: usize, budget: usize, picked: usize) -> bool {
        self.config.pushdown
            && picked < budget
            && self.free(seg) < self.config.promote_width
            && self.free_prev[seg - 1] * 2 > 3 * self.config.promote_width
    }

    /// Moves `slot` from `seg` to `seg - 1`, asserting the chain wire if
    /// it heads a chain.
    // chainiq-analyze: hot
    fn promote_one(&mut self, now: Cycle, seg: usize, slot: u32, pushdown: bool) {
        // Detach first: the mover must not receive its own pulse, which
        // is asserted in the segment it leaves (§3.3).
        self.detach(slot);
        if let Some(chain) = self.slots[slot as usize].heads_chain {
            self.assert_signal(chain, SignalKind::Pulse, seg);
        }
        // A promotion moves against the upward-travelling wire signals: a
        // signal currently visible in the destination segment would reach
        // the source segment next cycle and miss the mover, so deliver it
        // on the way past (exactly the `seg - 1` bucket).
        for i in 0..self.sig_bufs[seg - 1].len() {
            let s = self.sig_bufs[seg - 1][i];
            self.slots[slot as usize].apply_signal(s);
        }
        let e = &mut self.slots[slot as usize];
        e.moved_at = now;
        e.seg = seg - 1;
        self.attach(slot);
        if pushdown {
            self.stats.pushdowns += 1;
        } else {
            self.stats.promotions += 1;
        }
    }

    // chainiq-analyze: hot
    fn run_promotion(&mut self, now: Cycle) -> u64 {
        let mut promoted = 0u64;
        let mut picks = std::mem::take(&mut self.scratch_picks);
        for seg in 1..self.config.num_segments {
            let space = self.free_prev[seg - 1].min(self.free(seg - 1));
            let budget = space.min(self.config.promote_width);
            if budget == 0 {
                continue;
            }
            let threshold = self.config.threshold(seg - 1);
            picks.clear();
            self.choose_promotions_into(seg, budget, &mut picks);
            for &(_, slot) in &picks {
                // Re-read the live delay: an earlier pick's pulse this
                // cycle may have changed it since the pick was made.
                let is_pushdown = self.slots[slot as usize].delay() >= threshold;
                self.promote_one(now, seg, slot, is_pushdown);
                promoted += 1;
            }
        }
        self.scratch_picks = picks;
        promoted
    }

    /// §4.5 recovery: guarantee a free slot in every segment and keep the
    /// oldest ready instruction moving toward issue.
    fn run_deadlock_recovery(&mut self, now: Cycle) {
        self.drain_ready(now);
        self.stats.deadlock_cycles += 1;
        // If the issue buffer is full of unready instructions, recycle
        // the youngest back to the top.
        let mut recycled: Option<u32> = None;
        let seg0_has_ready = if self.naive {
            self.segs[0].iter().any(|&(_, s)| self.slots[s as usize].data_ready(now))
        } else {
            self.ready_count[0] > 0
        };
        if self.free(0) == 0 && !seg0_has_ready {
            if let Some(&(_, slot)) = self.segs[0].last() {
                self.detach(slot);
                recycled = Some(slot);
                self.stats.recovery_recycles += 1;
            }
        }
        // Bottom-up, every full segment force-promotes one instruction
        // (eligible if available, else the oldest ineligible).
        for seg in 1..self.config.num_segments {
            if self.free(seg) > 0 || self.free(seg - 1) == 0 {
                continue;
            }
            let threshold = self.config.threshold(seg - 1);
            let pick = self.segs[seg]
                .iter()
                .find(|&&(_, s)| self.slots[s as usize].delay() < threshold)
                .or_else(|| self.segs[seg].first())
                .map(|&(_, s)| s);
            if let Some(slot) = pick {
                self.promote_one(now, seg, slot, false);
                self.stats.recovery_promotions += 1;
            }
        }
        if let Some(slot) = recycled {
            let top = self.top();
            // Recovery freed a slot in the top segment if it was full.
            // The recycled entry keeps its `moved_at` and sees no
            // in-flight signals, exactly as the scan kernel moved it.
            let dest = (0..=top).rev().find(|&k| self.free(k) > 0).unwrap_or(top);
            self.slots[slot as usize].seg = dest;
            self.attach(slot);
        }
    }

    /// Reference ready-count sample by full scan (naive mode).
    fn ready_scan_naive(&self, now: Cycle) -> (u64, u64) {
        let mut ready0 = 0u64;
        let mut ready_all = 0u64;
        for (k, list) in self.segs.iter().enumerate() {
            for &(_, slot) in list {
                if self.slots[slot as usize].data_ready(now) {
                    ready_all += 1;
                    if k == 0 {
                        ready0 += 1;
                    }
                }
            }
        }
        (ready0, ready_all)
    }

    /// Builds the scheduling operand for one source register, from the
    /// register information table.
    fn sched_for(&self, sched: RegSched) -> Option<SchedOperand> {
        match sched {
            RegSched::Available => None,
            RegSched::Countdown { remaining } => Some(SchedOperand {
                chain: None,
                rel_latency: remaining,
                head_loc: 0,
                self_timed: true,
                suspended: false,
            }),
            RegSched::OnChain { chain, latency, head_loc, self_timed, suspended } => {
                Some(SchedOperand {
                    chain: Some(chain),
                    rel_latency: latency,
                    head_loc: if self_timed { 0 } else { head_loc },
                    self_timed,
                    suspended,
                })
            }
        }
    }

    /// Predicted produce latency of an instruction (loads use the
    /// configured hit latency; §3.3).
    fn predicted_latency(&self, op: OpClass) -> i64 {
        if op == OpClass::Load {
            self.config.predicted_load_latency
        } else {
            i64::from(op.exec_latency())
        }
    }

    /// The §4.2 dispatch target: the highest non-empty segment (empty
    /// leading segments are bypassed), or the segment above it when full.
    fn dispatch_target(&self) -> Option<usize> {
        let top = self.top();
        if !self.config.bypass {
            return (self.free(top) > 0).then_some(top);
        }
        let highest_nonempty = (0..=top).rev().find(|&k| !self.segs[k].is_empty()).unwrap_or(0);
        if self.free(highest_nonempty) > 0 {
            Some(highest_nonempty)
        } else if highest_nonempty < top {
            Some(highest_nonempty + 1)
        } else {
            None
        }
    }
}

impl IssueQueue for SegmentedIq {
    fn capacity(&self) -> usize {
        self.config.capacity()
    }

    fn occupancy(&self) -> usize {
        self.segs.iter().map(Vec::len).sum()
    }

    // chainiq-analyze: hot
    fn tick(&mut self, now: Cycle, execution_idle: bool) {
        // Snapshot each segment's free-slot count as of the end of the
        // previous cycle (= start of this one, after last cycle's issue
        // and dispatch) — the information §3.1 allows promotion to use.
        for k in 0..self.config.num_segments {
            self.free_prev[k] = self.free(k);
        }
        self.drain_ready(now);

        // Per-cycle statistics, sampled from the maintained counters (the
        // scan kernel recomputed readiness per entry here every cycle).
        self.stats.iq.cycles += 1;
        let mut occupancy = 0u64;
        let mut empty = 0u64;
        for s in &self.segs {
            occupancy += s.len() as u64;
            if s.is_empty() {
                empty += 1;
            }
        }
        self.stats.iq.occupancy_accum += occupancy;
        self.stats.seg0_occupancy_accum += self.segs[0].len() as u64;
        self.stats.num_segments = self.config.num_segments;
        self.stats.empty_segment_cycles += empty;
        let (ready0, ready_all) = if self.naive {
            self.ready_scan_naive(now)
        } else {
            let mut all = 0u64;
            for &c in &self.ready_count {
                all += c;
            }
            (self.ready_count[0], all)
        };
        self.stats.ready_in_seg0_accum += ready0;
        self.stats.ready_total_accum += ready_all;
        self.chains.sample(now);

        // 1. Signals asserted last cycle move one segment up.
        self.propagate_signals();

        // 2. Self-timed countdowns (suspends delivered above gate these).
        self.tick_countdowns();

        // 3. Chain/threshold-driven promotion.
        let promoted = self.run_promotion(now);

        // 4. Deadlock detection (§4.5): queue non-empty, nothing issued
        //    or promoted, nothing executing.
        let made_progress = promoted > 0 || self.issued_this_cycle;
        if self.config.deadlock_recovery
            && !made_progress
            && !self.progress_last_cycle
            && execution_idle
            && !self.is_empty()
        {
            self.run_deadlock_recovery(now);
        }
        self.progress_last_cycle = made_progress;
        self.issued_this_cycle = false;
    }

    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall> {
        // Find a landing segment before committing to anything.
        let Some(target) = self.dispatch_target() else {
            self.stats.iq.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        };

        // Operand scheduling status, from this thread's register
        // information table.
        let thread = info.thread as usize;
        if thread >= self.regs.len() {
            self.regs.resize_with(thread + 1, RegInfoTable::new);
        }
        let srcs: Vec<(usize, RegSched)> = info
            .srcs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (i, self.regs[thread].get(s.reg))))
            .collect();
        let chain_of = |s: &RegSched| match s {
            RegSched::OnChain { chain, .. } => Some(*chain),
            _ => None,
        };
        let chains_seen: Vec<ChainRef> = srcs.iter().filter_map(|(_, s)| chain_of(s)).collect();
        let dual_dep = chains_seen.len() == 2 && chains_seen[0] != chains_seen[1];

        let is_load = info.op == OpClass::Load;
        let load_heads_chain = is_load && !info.predicted_hit;
        let dual_heads_chain = dual_dep && self.config.two_chain_tracking;
        let needs_chain = load_heads_chain || dual_heads_chain;

        // Allocate the chain wire (the only other stall source).
        let heads_chain = if needs_chain {
            match self.chains.alloc(info.tag, is_load) {
                Some(c) => Some(c),
                None => {
                    self.chains.note_wire_stall();
                    self.stats.iq.stalls_no_chain += 1;
                    return Err(DispatchStall::NoChainWire);
                }
            }
        } else {
            None
        };

        // Build scheduling operands; under single-chain tracking (§4.3)
        // keep only the predicted-critical chain when two would be needed.
        let mut sched_ops: [Option<SchedOperand>; 2] = [None, None];
        if dual_dep && !self.config.two_chain_tracking {
            let pick = info.lrp_pick.unwrap_or(OperandPick::Left);
            let keep = match pick {
                OperandPick::Left => srcs[0].0,
                OperandPick::Right => srcs[srcs.len() - 1].0,
            };
            for (i, s) in &srcs {
                if *i == keep || chain_of(s).is_none() {
                    sched_ops[*i] = self.sched_for(*s);
                }
            }
        } else {
            for (i, s) in &srcs {
                sched_ops[*i] = self.sched_for(*s);
            }
        }

        // Data-readiness operands.
        let mut data_ops: [Option<DataOperand>; 2] = [None, None];
        for (i, s) in info.srcs.iter().enumerate() {
            if let Some(s) = s {
                if let Some(producer) = s.producer {
                    data_ops[i] = Some(DataOperand { producer, ready_at: s.known_ready_at });
                }
            }
        }

        // Update the register information table for the destination.
        if let Some(dest) = info.dest {
            let produce = self.predicted_latency(info.op);
            // Countdown estimates assume the instruction issues as soon
            // as its operands are ready; optionally add the descent time
            // of the landing segment (see `countdown_includes_descent`).
            // Load values use the chain-style two-cycles-per-segment
            // estimate (their dependents flooding segment 0 is the §4.4
            // failure mode); cheap ALU values stay optimistic so address
            // computations are not held back.
            let descent = if self.config.countdown_includes_descent {
                if info.op == OpClass::Load {
                    2 * target as i64
                } else {
                    target as i64
                }
            } else {
                0
            };
            let new_sched = if let Some(chain) = heads_chain {
                RegSched::OnChain {
                    chain,
                    latency: produce,
                    head_loc: target as i64,
                    self_timed: false,
                    suspended: false,
                }
            } else {
                // Follow the slowest operand.
                let slowest = sched_ops.iter().flatten().max_by_key(|o| o.delay()).copied();
                match slowest {
                    None => RegSched::Countdown { remaining: descent.max(0) + produce },
                    Some(op) => match op.chain {
                        None => {
                            RegSched::Countdown { remaining: op.delay().max(descent) + produce }
                        }
                        // Keep listening on the chain even in self-timed
                        // mode so suspend/resume reaches dependents'
                        // dependents.
                        Some(chain) => RegSched::OnChain {
                            chain,
                            latency: op.rel_latency.max(0) + produce,
                            head_loc: op.head_loc,
                            self_timed: op.self_timed,
                            suspended: op.suspended,
                        },
                    },
                }
            };
            self.regs[thread].set(dest, new_sched);
        }

        // Statistics.
        self.stats.iq.dispatched += 1;
        if info.num_srcs() == 2 {
            self.stats.two_src_dispatches += 1;
        }
        if dual_dep {
            self.stats.dual_dep_dispatches += 1;
        }
        if self.config.bypass && target < self.top() {
            self.stats.bypassed_dispatches += 1;
            self.stats.segments_bypassed += (self.top() - target) as u64;
        }

        let mut entry = Entry {
            tag: info.tag,
            op: info.op,
            data_ops,
            sched_ops,
            heads_chain,
            moved_at: now,
            seg: target,
            ready_cache: None,
            live: true,
            counted: false,
        };
        // The register table lags the wire pipeline: signals between the
        // landing segment and the top have been seen by neither the table
        // nor (ever again) this segment. Deliver them now so a bypassed
        // dispatch starts from the state a resident entry would hold
        // (top-down = assert-time order, as the single-list kernel
        // applied them).
        for s in (target..self.top()).rev() {
            for sig in &self.sig_bufs[s] {
                entry.apply_signal(*sig);
            }
        }
        entry.ready_cache = entry.compute_ready_cache();
        match entry.ready_cache {
            Some(c) if c <= self.last_now => entry.counted = true,
            _ => {}
        }
        let tag = info.tag;
        let future = match entry.ready_cache {
            Some(c) if c > self.last_now => Some(c),
            _ => None,
        };
        let slot = self.alloc_slot(entry);
        if let Some(c) = future {
            self.ready_future.insert((c, tag, slot));
        }
        for d in data_ops.iter().flatten() {
            self.waiters.insert((d.producer, tag, slot));
        }
        self.attach(slot);
        Ok(())
    }

    // chainiq-analyze: hot
    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst> {
        self.drain_ready(now);
        let mut ready = std::mem::take(&mut self.scratch_pairs);
        ready.clear();
        // Tag-order scan of the issue buffer, preserving the scan
        // kernel's oldest-first selection (the buffer is one segment —
        // the scan is the fast path and the reference at once).
        for &(tag, slot) in &self.segs[0] {
            let e = &self.slots[slot as usize];
            if e.data_ready(now) && e.moved_at < now {
                ready.push((tag, slot));
            }
        }
        let mut issued = Vec::with_capacity(ready.len());
        for &(tag, slot) in &ready {
            let op = self.slots[slot as usize].op;
            if fus.slots_left() == 0 {
                break;
            }
            if !fus.try_issue(now, op) {
                continue; // unit busy; try other op kinds
            }
            if let Some(chain) = self.remove_fully(slot) {
                self.assert_signal(chain, SignalKind::Pulse, 0);
            }
            issued.push(IssuedInst { tag, op });
        }
        self.scratch_pairs = ready;
        self.stats.iq.issued += issued.len() as u64;
        if !issued.is_empty() {
            self.issued_this_cycle = true;
        }
        issued
    }

    // chainiq-analyze: hot
    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle) {
        let mut targets = std::mem::take(&mut self.scratch_pairs);
        targets.clear();
        if self.naive {
            for list in &self.segs {
                targets.extend(list.iter().copied());
            }
        } else {
            let lo = (producer, InstTag(0), 0u32);
            let hi = (producer, InstTag(u64::MAX), u32::MAX);
            targets.extend(self.waiters.range(lo..=hi).map(|&(_, t, s)| (t, s)));
        }
        for &(_, slot) in &targets {
            let e = &mut self.slots[slot as usize];
            let mut touched = false;
            for d in e.data_ops.iter_mut().flatten() {
                if d.producer == producer {
                    d.ready_at = Some(ready_at);
                    touched = true;
                }
            }
            if touched {
                self.refresh_ready(slot);
            }
        }
        self.scratch_pairs = targets;
    }

    fn on_load_miss(&mut self, tag: InstTag) {
        if let Some(chain) = self.chains.chain_of_head(tag) {
            self.assert_signal(chain, SignalKind::Suspend, 0);
        }
    }

    fn on_load_fill(&mut self, tag: InstTag) {
        if let Some(chain) = self.chains.chain_of_head(tag) {
            self.assert_signal(chain, SignalKind::Resume, 0);
        }
    }

    fn on_writeback(&mut self, tag: InstTag) {
        self.chains.release_by_head(tag);
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.free_slots.clear();
        for s in &mut self.segs {
            s.clear();
        }
        for s in &mut self.followers {
            s.clear();
        }
        self.ready_count.fill(0);
        self.ready_future.clear();
        self.waiters.clear();
        for b in &mut self.sig_bufs {
            b.clear();
        }
        self.chains.release_all();
        for t in &mut self.regs {
            t.reset();
        }
    }

    fn stats(&self) -> IqStats {
        self.stats.iq
    }
}

impl SegmentedIq {
    /// Snapshot of the full segmented statistics, including chain usage.
    #[must_use]
    pub fn full_stats(&self) -> SegmentedStats {
        let mut s = self.stats.clone();
        s.chains = *self.chains.stats();
        s
    }
}

impl chainiq_ckpt::Pack for SegmentedIqConfig {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.num_segments.pack(w);
        self.segment_size.pack(w);
        self.promote_width.pack(w);
        self.max_chains.pack(w);
        self.pushdown.pack(w);
        self.bypass.pack(w);
        self.two_chain_tracking.pack(w);
        self.deadlock_recovery.pack(w);
        self.predicted_load_latency.pack(w);
        self.countdown_includes_descent.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(SegmentedIqConfig {
            num_segments: Pack::unpack(r)?,
            segment_size: Pack::unpack(r)?,
            promote_width: Pack::unpack(r)?,
            max_chains: Pack::unpack(r)?,
            pushdown: Pack::unpack(r)?,
            bypass: Pack::unpack(r)?,
            two_chain_tracking: Pack::unpack(r)?,
            deadlock_recovery: Pack::unpack(r)?,
            predicted_load_latency: Pack::unpack(r)?,
            countdown_includes_descent: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for SchedOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.chain.pack(w);
        self.rel_latency.pack(w);
        self.head_loc.pack(w);
        self.self_timed.pack(w);
        self.suspended.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(SchedOperand {
            chain: Pack::unpack(r)?,
            rel_latency: Pack::unpack(r)?,
            head_loc: Pack::unpack(r)?,
            self_timed: Pack::unpack(r)?,
            suspended: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for DataOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.producer.pack(w);
        self.ready_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(DataOperand { producer: Pack::unpack(r)?, ready_at: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for Entry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.op.pack(w);
        self.data_ops.pack(w);
        self.sched_ops.pack(w);
        self.heads_chain.pack(w);
        self.moved_at.pack(w);
        self.seg.pack(w);
        self.ready_cache.pack(w);
        self.live.pack(w);
        self.counted.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Entry {
            tag: Pack::unpack(r)?,
            op: Pack::unpack(r)?,
            data_ops: Pack::unpack(r)?,
            sched_ops: Pack::unpack(r)?,
            heads_chain: Pack::unpack(r)?,
            moved_at: Pack::unpack(r)?,
            seg: Pack::unpack(r)?,
            ready_cache: Pack::unpack(r)?,
            live: Pack::unpack(r)?,
            counted: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Snapshot for SegmentedIq {
    const COMPONENT: &'static str = "core.segmented";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        // Scratch buffers are transient (cleared before every use) and
        // the `naive` kernel-mode flag is a property of the running
        // queue, not of the simulated state; neither is serialized.
        self.config.pack(w);
        self.slots.pack(w);
        self.free_slots.pack(w);
        self.segs.pack(w);
        self.followers.pack(w);
        self.waiters.pack(w);
        self.ready_count.pack(w);
        self.ready_future.pack(w);
        self.last_now.pack(w);
        self.free_prev.pack(w);
        self.sig_bufs.pack(w);
        self.chains.pack(w);
        self.regs.pack(w);
        self.stats.pack(w);
        self.issued_this_cycle.pack(w);
        self.progress_last_cycle.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let corrupt =
            |context: &str| chainiq_ckpt::CkptError::Corrupt { context: context.to_string() };
        let config: SegmentedIqConfig = Pack::unpack(r)?;
        if config != self.config {
            return Err(corrupt("segmented IQ config differs from the running queue"));
        }
        let slots: Vec<Entry> = Pack::unpack(r)?;
        let free_slots: Vec<u32> = Pack::unpack(r)?;
        let segs: Vec<Vec<(InstTag, u32)>> = Pack::unpack(r)?;
        let followers: Vec<Vec<(ChainRef, InstTag, u32)>> = Pack::unpack(r)?;
        let waiters: BTreeSet<(InstTag, InstTag, u32)> = Pack::unpack(r)?;
        let ready_count: Vec<u64> = Pack::unpack(r)?;
        let ready_future: BTreeSet<(Cycle, InstTag, u32)> = Pack::unpack(r)?;
        let last_now: Cycle = Pack::unpack(r)?;
        let free_prev: Vec<usize> = Pack::unpack(r)?;
        let sig_bufs: Vec<Vec<WireSignal>> = Pack::unpack(r)?;
        let chains: ChainTable = Pack::unpack(r)?;
        let regs: Vec<RegInfoTable> = Pack::unpack(r)?;
        let stats: SegmentedStats = Pack::unpack(r)?;
        let issued_this_cycle: bool = Pack::unpack(r)?;
        let progress_last_cycle: bool = Pack::unpack(r)?;

        let n = config.num_segments;
        if segs.len() != n
            || followers.len() != n
            || ready_count.len() != n
            || free_prev.len() != n
            || sig_bufs.len() != n
        {
            return Err(corrupt("segmented IQ per-segment vector lengths"));
        }
        if regs.is_empty() {
            return Err(corrupt("segmented IQ without a register table"));
        }
        for (k, list) in segs.iter().enumerate() {
            if list.len() > config.segment_size {
                return Err(corrupt("overfull segment in checkpoint"));
            }
            for &(tag, slot) in list {
                let ok =
                    slots.get(slot as usize).is_some_and(|e| e.live && e.tag == tag && e.seg == k);
                if !ok {
                    return Err(corrupt("segment list points at a mismatched slab slot"));
                }
            }
        }
        if followers.iter().flatten().any(|&(_, _, s)| (s as usize) >= slots.len())
            || waiters.iter().any(|&(_, _, s)| (s as usize) >= slots.len())
            || ready_future.iter().any(|&(_, _, s)| (s as usize) >= slots.len())
        {
            return Err(corrupt("index tuple points outside the slab"));
        }
        if free_slots.iter().any(|&s| slots.get(s as usize).is_none_or(|e| e.live)) {
            return Err(corrupt("free list points at a live slab slot"));
        }

        self.slots = slots;
        self.free_slots = free_slots;
        self.segs = segs;
        self.followers = followers;
        self.waiters = waiters;
        self.ready_count = ready_count;
        self.ready_future = ready_future;
        self.last_now = last_now;
        self.free_prev = free_prev;
        self.sig_bufs = sig_bufs;
        self.chains = chains;
        self.regs = regs;
        self.stats = stats;
        self.issued_this_cycle = issued_this_cycle;
        self.progress_last_cycle = progress_last_cycle;
        self.scratch_pairs.clear();
        self.scratch_picks.clear();
        self.scratch_sigs.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::SrcOperand;
    use chainiq_isa::ArchReg;

    fn cfg3x8() -> SegmentedIqConfig {
        SegmentedIqConfig::small_for_tests()
    }

    fn ready_src(reg: ArchReg) -> SrcOperand {
        SrcOperand::ready(reg)
    }

    fn dep_src(reg: ArchReg, producer: InstTag) -> SrcOperand {
        SrcOperand { reg, producer: Some(producer), known_ready_at: None }
    }

    /// Drives the queue until `want` instructions have issued or `limit`
    /// cycles pass, announcing fixed-latency completions automatically.
    fn run_until_issued(iq: &mut SegmentedIq, want: usize, limit: u64) -> Vec<(InstTag, Cycle)> {
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 1..=limit {
            iq.tick(now, issued.len() == want);
            for sel in iq.select_issue(now, &mut fus) {
                iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
                issued.push((sel.tag, now));
            }
            fus.next_cycle();
            if issued.len() >= want {
                break;
            }
        }
        issued
    }

    #[test]
    fn capacity_and_threshold() {
        let c = SegmentedIqConfig::paper(512, Some(128));
        assert_eq!(c.num_segments, 16);
        assert_eq!(c.capacity(), 512);
        assert_eq!(c.threshold(0), 2);
        assert_eq!(c.threshold(1), 4);
        assert_eq!(c.threshold(7), 16);
    }

    #[test]
    fn empty_queue_dispatch_bypasses_to_issue_buffer() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.segment_of(InstTag(0)), Some(0), "bypass all empty segments");
        assert_eq!(iq.full_stats().bypassed_dispatches, 1);
        assert_eq!(iq.full_stats().segments_bypassed, 2);
    }

    #[test]
    fn bypass_disabled_dispatches_to_top() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.segment_of(InstTag(0)), Some(2));
    }

    #[test]
    fn ready_chain_promotes_and_issues_in_order() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        let issued = run_until_issued(&mut iq, 1, 20);
        assert_eq!(issued.len(), 1);
        // Two promotions (seg2 -> seg1 -> seg0) then issue: 3 cycles.
        assert_eq!(issued[0].1, 3);
    }

    #[test]
    fn dependent_issues_after_producer() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntMul, ArchReg::int(1), &[]))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let issued = run_until_issued(&mut iq, 2, 30);
        assert_eq!(issued.len(), 2);
        let (t0, c0) = issued[0];
        let (t1, c1) = issued[1];
        assert_eq!((t0, t1), (InstTag(0), InstTag(1)));
        assert!(c1 >= c0 + 3, "IntMul takes 3 cycles; dependent at {c1} vs producer at {c0}");
    }

    #[test]
    fn back_to_back_single_cycle_chain() {
        let mut iq = SegmentedIq::new(cfg3x8());
        // A chain of dependent 1-cycle adds should issue on consecutive cycles.
        for i in 0..4u64 {
            let srcs: Vec<SrcOperand> =
                if i == 0 { vec![] } else { vec![dep_src(ArchReg::int(i as u8), InstTag(i - 1))] };
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &srcs,
                ),
            )
            .unwrap();
        }
        let issued = run_until_issued(&mut iq, 4, 30);
        assert_eq!(issued.len(), 4);
        for w in issued.windows(2) {
            assert_eq!(w[1].1, w[0].1 + 1, "dependent adds must issue back-to-back");
        }
    }

    #[test]
    fn figure1_delay_values() {
        // The paper's Figure 1: delays computed at dispatch, with ADD
        // latency 1 and "MUL" latency 2 (we use FpAdd for the 2-cycle op).
        let mut iq = SegmentedIq::new(SegmentedIqConfig {
            num_segments: 3,
            segment_size: 16,
            promote_width: 8,
            max_chains: None,
            pushdown: false,
            bypass: false,
            deadlock_recovery: true,
            two_chain_tracking: true,
            predicted_load_latency: 4,
            countdown_includes_descent: false,
        });
        let r = ArchReg::int;
        let add = OpClass::IntAlu;
        let mul = OpClass::FpAdd; // 2-cycle stand-in for the example's MUL
        let t = InstTag;
        // i0: add *,* -> r1        i1: mul *,* -> r2
        iq.dispatch(0, DispatchInfo::compute(t(0), add, r(1), &[])).unwrap();
        iq.dispatch(0, DispatchInfo::compute(t(1), mul, r(2), &[])).unwrap();
        // i2: add r2,* -> r4
        iq.dispatch(0, DispatchInfo::compute(t(2), add, r(4), &[dep_src(r(2), t(1))])).unwrap();
        // i3: mul r4,* -> r6
        iq.dispatch(0, DispatchInfo::compute(t(3), mul, r(6), &[dep_src(r(4), t(2))])).unwrap();
        // i4: mul r6,* -> r8
        iq.dispatch(0, DispatchInfo::compute(t(4), mul, r(8), &[dep_src(r(6), t(3))])).unwrap();
        // i5: add r1,* -> r3
        iq.dispatch(0, DispatchInfo::compute(t(5), add, r(3), &[dep_src(r(1), t(0))])).unwrap();
        // i6: add r3,* -> r5
        iq.dispatch(0, DispatchInfo::compute(t(6), add, r(5), &[dep_src(r(3), t(5))])).unwrap();
        // i7: add r5,* -> r7
        iq.dispatch(0, DispatchInfo::compute(t(7), add, r(7), &[dep_src(r(5), t(6))])).unwrap();
        // i8: add r6,r7 -> r9
        iq.dispatch(
            0,
            DispatchInfo::compute(t(8), add, r(9), &[dep_src(r(6), t(3)), dep_src(r(7), t(7))]),
        )
        .unwrap();
        let expect = [0, 0, 2, 3, 5, 1, 2, 3, 5];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(iq.delay_of(t(i as u64)), Some(*want), "figure 1 delay value of i{i}");
        }
    }

    #[test]
    fn load_heads_a_chain_and_writeback_releases_it() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(2)), false),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 1);
        iq.on_writeback(InstTag(0));
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn predicted_hit_load_creates_no_chain() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(2)), true),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn chain_wire_exhaustion_stalls_dispatch() {
        let mut cfg = cfg3x8();
        cfg.max_chains = Some(1);
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let err = iq
            .dispatch(
                0,
                DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
            )
            .unwrap_err();
        assert_eq!(err, DispatchStall::NoChainWire);
        assert_eq!(iq.occupancy(), 1, "stalled dispatch must not enter the queue");
        assert_eq!(iq.full_stats().iq.stalls_no_chain, 1);
    }

    #[test]
    fn dual_dependence_heads_new_chain_in_base_config() {
        let mut iq = SegmentedIq::new(cfg3x8());
        // Two chain-head loads producing r1 and r2.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // A consumer of both: dual-dep, becomes a head itself.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[dep_src(ArchReg::int(1), InstTag(0)), dep_src(ArchReg::int(2), InstTag(1))],
            ),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 3);
        assert_eq!(iq.full_stats().dual_dep_dispatches, 1);
    }

    #[test]
    fn lrp_mode_follows_single_chain_without_new_head() {
        let mut cfg = cfg3x8();
        cfg.two_chain_tracking = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let mut consumer = DispatchInfo::compute(
            InstTag(2),
            OpClass::IntAlu,
            ArchReg::int(3),
            &[dep_src(ArchReg::int(1), InstTag(0)), dep_src(ArchReg::int(2), InstTag(1))],
        );
        consumer.lrp_pick = Some(OperandPick::Right);
        iq.dispatch(0, consumer).unwrap();
        assert_eq!(iq.live_chains(), 2, "no extra chain under LRP");
    }

    #[test]
    fn queue_full_stalls() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 1;
        cfg.segment_size = 2;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..2 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let err = iq
            .dispatch(0, DispatchInfo::compute(InstTag(9), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap_err();
        assert_eq!(err, DispatchStall::QueueFull);
        assert_eq!(iq.full_stats().iq.stalls_full, 1);
    }

    #[test]
    fn single_segment_acts_as_conventional_queue() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 1;
        cfg.segment_size = 32;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..4u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let issued = run_until_issued(&mut iq, 4, 5);
        assert_eq!(issued.len(), 4);
        assert!(issued.iter().all(|&(_, c)| c == 1), "all ready, 8-wide: one cycle");
    }

    #[test]
    fn far_future_instructions_stay_in_upper_segments() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // A chain-head load (unissuable: its data operand never becomes
        // ready because we never announce the producer).
        iq.dispatch(
            0,
            DispatchInfo::load(
                InstTag(0),
                ArchReg::int(1),
                dep_src(ArchReg::int(9), InstTag(99)),
                false,
            ),
        )
        .unwrap();
        // A deep dependent: delay = 2*head_loc + rel_latency is large.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(1),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        for now in 1..10 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        // The head sinks to segment 0 but cannot issue; the dependent
        // must not enter segment 0 behind it.
        assert_eq!(iq.segment_of(InstTag(0)), Some(0));
        assert!(iq.segment_of(InstTag(1)).unwrap() > 0, "dependent held back by its chain");
    }

    #[test]
    fn pushdown_moves_ineligible_when_below_is_empty() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        cfg.segment_size = 8;
        cfg.promote_width = 4;
        let mut iq = SegmentedIq::new(cfg);
        // A chain-head load whose data never becomes ready: it sinks to
        // segment 0 and parks there.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        // Let the head sink toward segment 0 (it is data-ready and will
        // issue; never announce its completion so dependents stay unready
        // and the chain never self-times past its latency).
        for now in 1..4 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        // Fill the top segment with deep dependents: delay stays at or
        // above the destination threshold, so they are ineligible.
        for i in 1..=8u64 {
            iq.dispatch(
                4,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::FpMul,
                    ArchReg::fp(i as u8),
                    &[dep_src(ArchReg::int(1), InstTag(0))],
                ),
            )
            .unwrap();
        }
        assert_eq!(iq.free(2), 0, "top segment is full");
        for now in 5..12 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        assert!(iq.full_stats().pushdowns > 0, "full top segment should push down");
    }

    #[test]
    fn deadlock_recovery_restores_progress() {
        // Reproduce §4.5: a mis-assigned instruction's dependents fill a
        // lower segment below their producer.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 2;
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // Two unready instructions land in segment 0 (bypass off, but
        // delay 0 since their producers are "available" per the table —
        // we fake it by having unknown producers with no chain).
        for i in 0..2u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &[dep_src(ArchReg::int(20), InstTag(50))],
                ),
            )
            .unwrap();
            // Force them down by ticking (delay 0 -> promote).
            let mut fus = FuPool::table1();
            iq.tick(i + 1, false);
            let _ = iq.select_issue(i + 1, &mut fus);
        }
        // Now fill the top with a ready instruction that cannot promote.
        iq.dispatch(0, DispatchInfo::compute(InstTag(2), OpClass::IntAlu, ArchReg::int(9), &[]))
            .unwrap();
        iq.dispatch(0, DispatchInfo::compute(InstTag(3), OpClass::IntAlu, ArchReg::int(10), &[]))
            .unwrap();
        // Nothing is executing in the backend, so execution_idle = true.
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 10..60 {
            iq.tick(now, issued.is_empty());
            issued.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
            if !issued.is_empty() {
                break;
            }
        }
        assert!(!issued.is_empty(), "recovery must eventually let the ready instruction issue");
        assert!(iq.full_stats().deadlock_cycles > 0, "the deadlock detector should have fired");
    }

    #[test]
    fn run_deadlock_recovery_recycles_and_force_promotes() {
        // Direct exercise of §4.5's two mechanisms, without relying on
        // tick()'s detector: a full issue buffer of unready instructions
        // below their (conceptual) producers, and a full upper segment
        // holding the one ready instruction.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 2;
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // Two unready instructions (producer never announced) pushed down
        // into segment 0 by normal promotion.
        for i in 0..2u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &[dep_src(ArchReg::int(20), InstTag(50))],
                ),
            )
            .unwrap();
            let mut fus = FuPool::table1();
            iq.tick(i + 1, false);
            let _ = iq.select_issue(i + 1, &mut fus);
        }
        assert_eq!(iq.free(0), 0, "setup: issue buffer full of unready instructions");
        // Segment 1 fills with a ready instruction (tag 2) and another
        // unready one, so both recovery mechanisms have work.
        iq.dispatch(0, DispatchInfo::compute(InstTag(2), OpClass::IntAlu, ArchReg::int(9), &[]))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(3),
                OpClass::IntAlu,
                ArchReg::int(10),
                &[dep_src(ArchReg::int(21), InstTag(51))],
            ),
        )
        .unwrap();
        assert_eq!(iq.free(1), 0, "setup: top segment full");
        let occupancy_before = iq.occupancy();

        iq.run_deadlock_recovery(5);

        let s = iq.full_stats();
        assert_eq!(s.deadlock_cycles, 1);
        assert_eq!(s.recovery_recycles, 1, "full unready issue buffer recycles one entry");
        assert_eq!(s.recovery_promotions, 1, "the full upper segment force-promotes one");
        assert_eq!(iq.occupancy(), occupancy_before, "recovery reorders, never drops");
        assert_eq!(iq.segment_of(InstTag(1)), Some(1), "youngest seg-0 entry recycled to the top");
        assert_eq!(iq.segment_of(InstTag(2)), Some(0), "oldest upper entry forced into seg 0");
        assert_eq!(iq.segment_of(InstTag(0)), Some(0), "oldest unready entry keeps its slot");

        // Boundary: with a ready instruction now in the issue buffer, a
        // second invocation must not recycle again (the buffer is no
        // longer all-unready) and has no promotion headroom.
        iq.run_deadlock_recovery(6);
        let s = iq.full_stats();
        assert_eq!(s.deadlock_cycles, 2);
        assert_eq!(s.recovery_recycles, 1, "no recycle when a seg-0 entry is ready");
        assert_eq!(s.recovery_promotions, 1, "no promotion into a full issue buffer");

        // The recovered layout makes progress: the ready instruction
        // issues on the next cycles.
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 7..20 {
            iq.tick(now, issued.is_empty());
            issued.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
            if !issued.is_empty() {
                break;
            }
        }
        assert_eq!(
            issued.first().map(|sel| sel.tag),
            Some(InstTag(2)),
            "the force-promoted ready instruction must be the one that issues"
        );
    }

    #[test]
    fn suspend_freezes_dependents_until_fill() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        // Chain-head load, ready to issue.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // Dependent of the load.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        let mut load_issued_at = None;
        for now in 1..8 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                load_issued_at = Some(now);
                // Simulate a miss discovered at EA+3: suspend, do not
                // announce readiness yet.
                iq.on_load_miss(InstTag(0));
            }
            fus.next_cycle();
            if load_issued_at.is_some() {
                break;
            }
        }
        let t0 = load_issued_at.expect("load should issue");
        // Let many cycles pass; the dependent must be frozen (suspended).
        for now in t0 + 1..t0 + 20 {
            iq.tick(now, false);
            assert!(iq.select_issue(now, &mut fus).is_empty());
            fus.next_cycle();
        }
        let frozen_delay = iq.delay_of(InstTag(1)).unwrap();
        assert!(frozen_delay > 0, "suspended dependent must not count down to 0");
        // Fill arrives: resume + announce.
        iq.on_load_fill(InstTag(0));
        iq.announce_ready(InstTag(0), t0 + 25);
        let mut issued_after = Vec::new();
        for now in t0 + 20..t0 + 40 {
            iq.tick(now, false);
            issued_after.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
        }
        assert_eq!(issued_after.len(), 1);
        assert_eq!(issued_after[0].tag, InstTag(1));
    }

    #[test]
    fn bypassed_dispatch_receives_inflight_signals() {
        // A chain head issues from segment 0 while the queue above is
        // partially occupied; a member dispatched afterwards into a
        // middle segment (bypass) must not wait for a pulse that already
        // passed its landing segment.
        let mut cfg = cfg3x8();
        cfg.num_segments = 4;
        cfg.countdown_includes_descent = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Head load (ready) and an occupant that keeps segment 2 non-empty.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(1),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        // Let the head sink and issue; its pulse starts climbing.
        let mut head_issued_at = None;
        for now in 1..8 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                iq.announce_ready(sel.tag, now + 4);
                head_issued_at = Some(now);
            }
            fus.next_cycle();
            if head_issued_at.is_some() {
                break;
            }
        }
        let t0 = head_issued_at.expect("head must issue");
        // Dispatch a late member the very next cycle: the issue pulse is
        // between segments. Its operand state comes from the (laggy)
        // table plus the in-flight signals at or above its landing
        // segment — its delay must eventually drain to 0, not freeze.
        iq.dispatch(
            t0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        for now in t0 + 1..t0 + 20 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        assert!(
            iq.delay_of(InstTag(2)).map(|d| d == 0).unwrap_or(true),
            "late member's delay must drain, got {:?}",
            iq.delay_of(InstTag(2))
        );
    }

    #[test]
    fn empty_segments_are_counted_for_gating() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.tick(1, true);
        let s = iq.full_stats();
        assert_eq!(s.num_segments, 3);
        assert_eq!(s.empty_segment_cycles, 3, "all three segments empty");
        assert!((s.gateable_segment_frac() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn promotion_bandwidth_is_limited_per_boundary() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 16;
        cfg.promote_width = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..10u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        iq.tick(1, false);
        assert_eq!(iq.segment_len(0), 4, "at most promote_width move per cycle");
        assert_eq!(iq.segment_len(1), 6);
        iq.tick(2, false);
        assert_eq!(iq.segment_len(0), 8);
    }

    #[test]
    fn promotion_respects_previous_cycle_free_count() {
        // §3.1: a segment promotes based on the destination's free slots
        // as of the previous cycle. Fill segment 0 completely, then free
        // it; promotion into it can start only one cycle later.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 4;
        cfg.promote_width = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Four ready instructions sink into segment 0 and stay (we never
        // let them issue by exhausting the FU pool with a tiny pool).
        for i in 0..4u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        iq.tick(1, false); // all four promote into segment 0
        assert_eq!(iq.segment_len(0), 4);
        // Four more wait in segment 1.
        for i in 4..8u64 {
            iq.dispatch(
                1,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        // Cycle 2: segment 0 drains by issue, but its free count as of
        // the previous cycle was zero, so nothing promotes this cycle.
        iq.tick(2, false);
        let issued = iq.select_issue(2, &mut fus);
        assert_eq!(issued.len(), 4);
        assert_eq!(iq.segment_len(0), 0);
        assert_eq!(iq.segment_len(1), 4, "free_prev was 0: no promotion yet");
        // Cycle 3: last cycle's free count now permits promotion.
        iq.tick(3, false);
        assert_eq!(iq.segment_len(0), 4);
    }

    #[test]
    fn suspend_reaches_upper_segments_with_wire_latency() {
        // A suspend asserted at segment 0 must take one cycle per segment
        // to become visible above (§3.3 pipelining).
        let mut cfg = cfg3x8();
        cfg.num_segments = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Chain-head load and one dependent.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(0),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        // Run until the head issues; immediately report a miss.
        let mut issued_at = None;
        for now in 1..10 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                iq.on_load_miss(InstTag(0));
                issued_at = Some(now);
            }
            fus.next_cycle();
            if issued_at.is_some() {
                break;
            }
        }
        let t0 = issued_at.expect("head issues");
        // The dependent sits above segment 0; after enough cycles for the
        // suspend to climb, its delay freezes above zero.
        for now in t0 + 1..t0 + 12 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        let frozen = iq.delay_of(InstTag(1)).expect("still queued");
        assert!(frozen > 0, "suspended dependent frozen at {frozen}");
        // Resume releases it.
        iq.on_load_fill(InstTag(0));
        iq.announce_ready(InstTag(0), t0 + 14);
        let mut done = false;
        for now in t0 + 12..t0 + 40 {
            iq.tick(now, false);
            done |= !iq.select_issue(now, &mut fus).is_empty();
            fus.next_cycle();
        }
        assert!(done, "dependent must issue after the fill");
    }

    #[test]
    fn two_src_statistics_are_counted() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(0),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[ready_src(ArchReg::int(1)), ready_src(ArchReg::int(2))],
            ),
        )
        .unwrap();
        assert_eq!(iq.full_stats().two_src_dispatches, 1);
        assert_eq!(iq.full_stats().dual_dep_dispatches, 0, "both operands available");
    }

    #[test]
    fn threads_have_independent_register_tables() {
        // Thread 1's write to r1 must not disturb thread 0's chain
        // tracking of its own r1.
        let mut iq = SegmentedIq::new(cfg3x8());
        // Thread 0: chain-head load producing r1.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // Thread 1: plain ALU writing its own r1.
        let mut alien = DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(1), &[]);
        alien.thread = 1;
        iq.dispatch(0, alien).unwrap();
        // Thread 0's dependent of r1 must still join the load's chain
        // (delay > 0), not see thread 1's countdown.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        assert!(
            iq.delay_of(InstTag(2)).unwrap() >= 4,
            "thread 0's dependent tracks the load chain: {:?}",
            iq.delay_of(InstTag(2))
        );
    }

    #[test]
    fn flush_empties_everything() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.flush();
        assert!(iq.is_empty());
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn tick_stats_counters_pinned() {
        // Pinned against the original scan-based stats path: the
        // counters sampled at the top of `tick` must not move when they
        // are re-sourced from the maintained ready/occupancy sets.
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::IntMul,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        iq.dispatch(0, DispatchInfo::compute(InstTag(2), OpClass::IntAlu, ArchReg::int(3), &[]))
            .unwrap();
        let issued = run_until_issued(&mut iq, 3, 40);
        assert_eq!(issued.len(), 3);
        let s = iq.full_stats();
        assert_eq!(
            (
                s.ready_in_seg0_accum,
                s.ready_total_accum,
                s.seg0_occupancy_accum,
                s.iq.occupancy_accum,
                s.empty_segment_cycles,
                s.wire_signal_hops,
                s.promotions,
            ),
            (3, 11, 3, 14, 14, 6, 6),
            "stats sampled by tick must match the scan-based implementation"
        );
    }

    #[test]
    fn occupancy_and_capacity() {
        let mut iq = SegmentedIq::new(cfg3x8());
        assert_eq!(iq.capacity(), 24);
        assert!(iq.is_empty());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.occupancy(), 1);
    }
}

/// Differential tests: the indexed kernel against the naive full-scan
/// reference. Both modes share every write path (the indexes are always
/// maintained); these tests drive both over random programs, cache-miss
/// traffic and mid-run flushes, and demand cycle-identical issue
/// schedules and statistics.
#[cfg(test)]
mod differential {
    use super::*;
    use crate::tag::SrcOperand;
    use chainiq_devtest::{prop_assert_eq, prop_check, Gen};
    use chainiq_isa::ArchReg;

    #[derive(Debug, Clone)]
    struct RandInst {
        op_pick: u8,
        dest: u8,
        src1: Option<u8>,
        src2: Option<u8>,
        predicted_hit: bool,
    }

    fn rand_inst(g: &mut Gen) -> RandInst {
        RandInst {
            op_pick: g.u8(0..6),
            dest: g.u8(0..24),
            src1: g.option(|g| g.u8(0..24)),
            src2: g.option(|g| g.u8(0..24)),
            predicted_hit: g.bool(),
        }
    }

    fn op_of(pick: u8) -> OpClass {
        match pick {
            0 | 1 => OpClass::IntAlu,
            2 => OpClass::IntMul,
            3 => OpClass::FpAdd,
            4 => OpClass::FpMul,
            _ => OpClass::Load,
        }
    }

    fn rand_cfg(g: &mut Gen) -> SegmentedIqConfig {
        SegmentedIqConfig {
            num_segments: g.usize(1..6),
            segment_size: [4, 8, 16][g.usize(0..3)],
            promote_width: g.usize(1..5),
            max_chains: g.option(|g| g.usize(2..48)),
            pushdown: g.bool(),
            bypass: g.bool(),
            two_chain_tracking: g.bool(),
            deadlock_recovery: g.bool(),
            predicted_load_latency: 4,
            countdown_includes_descent: g.bool(),
        }
    }

    /// Drives one queue through a fully deterministic script: random
    /// dependence graph, every third load misses (fill + writeback 12
    /// cycles later), optional mid-run flush. Returns the issue schedule
    /// `(cycle, tag)` and the final statistics.
    fn drive(
        iq: &mut SegmentedIq,
        program: &[RandInst],
        limit: u64,
        flush_at: Option<u64>,
        ckpt_at: Option<u64>,
    ) -> (Vec<(u64, InstTag)>, SegmentedStats) {
        let mut fus = FuPool::table1();
        let mut last_writer: [Option<InstTag>; 32] = [None; 32];
        let mut completed: Vec<bool> = vec![false; program.len()];
        let mut dispatched: Vec<bool> = vec![false; program.len()];
        let mut fills: Vec<(u64, InstTag)> = Vec::new();
        let mut next = 0usize;
        let mut schedule = Vec::new();

        for now in 1..=limit {
            // Mid-run snapshot: serialize the queue and carry on in a
            // freshly constructed replacement restored from the bytes.
            // Everything observable afterwards must be unchanged.
            if ckpt_at == Some(now) {
                let mut w = chainiq_ckpt::Writer::new();
                chainiq_ckpt::save_section(&mut w, iq);
                let bytes = w.into_bytes();
                let mut fresh = SegmentedIq::new(iq.config);
                let mut r = chainiq_ckpt::Reader::new(&bytes);
                chainiq_ckpt::restore_section(&mut r, &mut fresh)
                    .expect("mid-run snapshot must restore");
                *iq = fresh;
            }
            let mut k = 0;
            while k < fills.len() {
                if fills[k].0 == now {
                    let (_, tag) = fills.swap_remove(k);
                    iq.on_load_fill(tag);
                    iq.announce_ready(tag, now);
                    iq.on_writeback(tag);
                    completed[tag.0 as usize] = true;
                } else {
                    k += 1;
                }
            }
            iq.tick(now, schedule.len() == program.len());
            for sel in iq.select_issue(now, &mut fus) {
                if sel.op == OpClass::Load && sel.tag.0 % 3 == 0 {
                    iq.on_load_miss(sel.tag);
                    iq.announce_ready(sel.tag, now + 12);
                    fills.push((now + 12, sel.tag));
                } else {
                    iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
                    iq.on_writeback(sel.tag);
                    completed[sel.tag.0 as usize] = true;
                }
                schedule.push((now, sel.tag));
            }
            fus.next_cycle();
            for _ in 0..4 {
                if next >= program.len() {
                    break;
                }
                let r = &program[next];
                let tag = InstTag(next as u64);
                let src = |s: Option<u8>| {
                    s.map(|reg| SrcOperand {
                        reg: ArchReg::int(reg),
                        producer: last_writer[reg as usize].filter(|p| !completed[p.0 as usize]),
                        known_ready_at: if last_writer[reg as usize]
                            .map(|p| completed[p.0 as usize])
                            .unwrap_or(true)
                        {
                            Some(0)
                        } else {
                            None
                        },
                    })
                };
                let info = DispatchInfo {
                    tag,
                    op: op_of(r.op_pick),
                    dest: Some(ArchReg::int(r.dest)),
                    srcs: [src(r.src1), src(r.src2)],
                    predicted_hit: r.predicted_hit,
                    lrp_pick: None,
                    thread: 0,
                };
                match iq.dispatch(now, info) {
                    Ok(()) => {
                        last_writer[r.dest as usize] = Some(tag);
                        dispatched[next] = true;
                        next += 1;
                    }
                    Err(DispatchStall::QueueFull | DispatchStall::NoChainWire) => break,
                }
            }
            if flush_at == Some(now) {
                iq.flush();
                fills.clear();
                // Model a squash: values of discarded in-flight producers
                // are treated as ready for everything dispatched later.
                for i in 0..program.len() {
                    if dispatched[i] {
                        completed[i] = true;
                    }
                }
            }
        }
        (schedule, iq.full_stats())
    }

    prop_check! {
        /// The indexed read paths (follower lists, ready sets, active
        /// countdown sets) must reproduce the naive full-scan kernel
        /// cycle for cycle: identical issue schedules, identical final
        /// statistics, for any program, geometry and feature mix.
        fn indexed_kernel_matches_naive_reference(g, cases = 40) {
            let program = g.vec(1..100, rand_inst);
            let cfg = rand_cfg(g);
            let limit = 1500;
            let flush_at = if g.bool() { Some(limit / 2) } else { None };
            let mut fast = SegmentedIq::new(cfg);
            let mut naive = SegmentedIq::new(cfg);
            naive.set_naive_kernel(true);
            let (sched_fast, stats_fast) = drive(&mut fast, &program, limit, flush_at, None);
            let (sched_naive, stats_naive) = drive(&mut naive, &program, limit, flush_at, None);
            prop_assert_eq!(sched_fast, sched_naive, "issue schedules diverge");
            prop_assert_eq!(
                format!("{stats_fast:?}"),
                format!("{stats_naive:?}"),
                "final statistics diverge"
            );
            prop_assert_eq!(fast.occupancy(), naive.occupancy());
        }

        /// Snapshot-at-N then restore into a freshly constructed queue
        /// must be observationally identical to running straight through:
        /// same issue schedule, same final statistics, same occupancy.
        fn queue_restore_equals_continuous(g, cases = 30) {
            let program = g.vec(1..100, rand_inst);
            let cfg = rand_cfg(g);
            let limit = 1200;
            let ckpt_at = g.usize(1..1200) as u64;
            let mut cont = SegmentedIq::new(cfg);
            let mut snap = SegmentedIq::new(cfg);
            let (sched_c, stats_c) = drive(&mut cont, &program, limit, None, None);
            let (sched_s, stats_s) = drive(&mut snap, &program, limit, None, Some(ckpt_at));
            prop_assert_eq!(sched_c, sched_s, "issue schedules diverge after restore");
            prop_assert_eq!(
                format!("{stats_c:?}"),
                format!("{stats_s:?}"),
                "final statistics diverge after restore"
            );
            prop_assert_eq!(cont.occupancy(), snap.occupancy());
        }
    }
}
