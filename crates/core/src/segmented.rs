//! The segmented instruction queue (§3) with all §4 enhancements.
//!
//! # Kernel data structures (DESIGN.md §9)
//!
//! The v3 kernel removes every per-cycle sweep and every ordered-tree
//! operation from the cycle loop:
//!
//! - Entries live in a slab (`slots`); the per-segment age lists, the
//!   per-(segment, wire) follower lists and the per-producer waiter
//!   lists are *slab-intrusive* doubly-linked lists threaded through
//!   `u32` prev/next arrays beside the slab — attach, detach and
//!   promotion are O(1) splices ([`crate::slab_list`]).
//! - Self-timed countdowns are *virtual*: an operand stores its
//!   countdown base and the cycle it started ticking (`since`); the
//!   current value is computed on read against `countdown_epoch`, the
//!   cycle whose decrement has logically happened. The old
//!   whole-window decrement sweep is gone.
//! - Promotion eligibility is a per-segment bitset over slab slots,
//!   updated incrementally: signal deliveries recompute the target's
//!   bit, and pure time passage is handled by a *crossing wheel* — the
//!   cycle a ticking entry's delay value first drops below its
//!   segment's threshold is computed in closed form and scheduled on a
//!   calendar queue ([`crate::wheel`]). A cycle with no crossings costs
//!   one empty-bucket probe.
//! - Future readiness records live on a second wheel instead of an
//!   ordered set; matured records are revalidated against the live
//!   entry exactly as before.
//!
//! Every *write* path keeps the indexes coherent unconditionally; the
//! `naive` flag only reroutes the *read* paths that have an indexed fast
//! path through reference full scans (signal delivery, wakeup targeting,
//! ready statistics, deadlock probing, and promotion eligibility), which
//! is what the differential tests compare against.
// chainiq-analyze: hot-path

use chainiq_isa::{Cycle, OpClass};

use crate::bitset::BitSet;
use crate::slab_list::{self, Link, ListHead, NIL};
use crate::tagmap::TagMap;
use crate::wheel::Wheel;

use crate::chain::{ChainRef, ChainTable, SignalKind, WireSignal};
use crate::fu::FuPool;
use crate::queue::{IqStats, IssueQueue, IssuedInst};
use crate::regtable::{RegInfoTable, RegSched};
use crate::stats::SegmentedStats;
use crate::tag::{DispatchInfo, DispatchStall, InstTag, OperandPick};

/// Configuration of a [`SegmentedIq`]. Every §4 enhancement is an
/// independent switch so the ablation benches can isolate each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedIqConfig {
    /// Number of segments (the pipeline depth of the queue).
    pub num_segments: usize,
    /// Instruction slots per segment (the paper uses 32).
    pub segment_size: usize,
    /// Maximum instructions promoted between adjacent segments per cycle
    /// (the paper matches it to the 8-wide issue width).
    pub promote_width: usize,
    /// Chain wires available; `None` models the unlimited-chains queue of
    /// §6.1.
    pub max_chains: Option<usize>,
    /// Enable the §4.1 pushdown mechanism.
    pub pushdown: bool,
    /// Enable the §4.2 dispatch bypass of empty segments.
    pub bypass: bool,
    /// Allow instructions to follow two chains (§3.2). When false, the
    /// dispatch stage's left/right-predictor pick chooses a single chain
    /// (§4.3) and dual-dependence instructions stop consuming chains.
    pub two_chain_tracking: bool,
    /// Enable §4.5 deadlock detection/recovery.
    pub deadlock_recovery: bool,
    /// Predicted latency of a load from issue to value (EA calculation
    /// plus the L1 hit latency; 4 with Table 1 numbers).
    pub predicted_load_latency: i64,
    /// Include the landing segment's descent time in the countdown-based
    /// delay estimates of values that are not chain-tracked. The paper's
    /// §3.1 delay values are pure dataflow estimates (assume immediate
    /// issue); under dispatch backlog that underestimate floods segment 0
    /// with the dependents of HMP-suppressed loads, so the paper-shaped
    /// experiments enable this refinement (see DESIGN.md §4).
    pub countdown_includes_descent: bool,
}

impl SegmentedIqConfig {
    /// The paper's main configuration: `entries / 32` segments of 32
    /// slots, 8-wide promotion, all enhancements on.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive multiple of 32.
    #[must_use]
    pub fn paper(entries: usize, max_chains: Option<usize>) -> Self {
        assert!(
            entries > 0 && entries.is_multiple_of(32),
            "paper configs are multiples of 32 entries"
        );
        SegmentedIqConfig {
            num_segments: entries / 32,
            segment_size: 32,
            promote_width: 8,
            max_chains,
            pushdown: true,
            bypass: true,
            two_chain_tracking: true,
            deadlock_recovery: true,
            predicted_load_latency: 4,
            countdown_includes_descent: true,
        }
    }

    /// A tiny three-segment queue for unit tests and doc examples.
    #[must_use]
    pub fn small_for_tests() -> Self {
        SegmentedIqConfig {
            num_segments: 3,
            segment_size: 8,
            promote_width: 4,
            max_chains: None,
            pushdown: true,
            bypass: true,
            two_chain_tracking: true,
            deadlock_recovery: true,
            predicted_load_latency: 4,
            countdown_includes_descent: true,
        }
    }

    /// Total instruction slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.num_segments * self.segment_size
    }

    /// Promotion threshold of segment `j`: an instruction may enter
    /// segment `j` only with a delay value below this (2, 4, 6, … from
    /// the bottom; §3.1).
    #[must_use]
    pub fn threshold(&self, segment: usize) -> i64 {
        2 * (segment as i64 + 1)
    }
}

/// One scheduling operand: the chain-relative position that maintains the
/// entry's delay value. The delay value of §3.1 is `2 * head_loc +
/// rel_latency`; pulses decrement `head_loc`, self-timed mode decrements
/// `rel_latency` every unsuspended cycle.
///
/// The countdown is *virtual*: `rel_latency` is the base value as of
/// cycle `since`, and the current value is `base - (epoch - since)`
/// (floored at zero) whenever the operand is ticking (`self_timed` and
/// not `suspended`). Suspends materialize the elapsed time into the
/// base; resumes and the self-timed transition restart `since` at the
/// current epoch. No per-cycle mutation ever touches the operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SchedOperand {
    /// Chain listened to, if any (`None` = pure countdown).
    chain: Option<ChainRef>,
    /// Countdown base: expected cycles from head issue to operand
    /// availability, as of cycle `since` while ticking.
    rel_latency: i64,
    /// Head's segment as last observed by this entry.
    head_loc: i64,
    /// Head has issued; `rel_latency` counts down.
    self_timed: bool,
    /// Countdown frozen by a miss (§3.4).
    suspended: bool,
    /// The cycle `rel_latency` is relative to: the countdown has been
    /// decremented for every tick in `(since, epoch]`.
    since: Cycle,
}

impl SchedOperand {
    fn ticking(&self) -> bool {
        self.self_timed && !self.suspended
    }

    /// Remaining relative latency as of `epoch`.
    // chainiq-analyze: hot
    #[inline]
    fn rel_at(&self, epoch: Cycle) -> i64 {
        if self.ticking() {
            (self.rel_latency - epoch.saturating_sub(self.since) as i64).max(0)
        } else {
            self.rel_latency.max(0)
        }
    }

    /// §3.1 delay value as of `epoch`.
    // chainiq-analyze: hot
    #[inline]
    fn delay_at(&self, epoch: Cycle) -> i64 {
        2 * self.head_loc.max(0) + self.rel_at(epoch)
    }

    /// Applies a chain-wire signal at `epoch`, materializing the virtual
    /// countdown so the (re)started clock is measured from `epoch`.
    /// Returns whether any state changed — a pulse on an already
    /// self-timed operand, a suspend while suspended or a resume while
    /// running are all no-ops, and the caller can skip the eligibility
    /// recompute for them.
    // chainiq-analyze: hot
    fn apply_at(&mut self, kind: SignalKind, epoch: Cycle) -> bool {
        match kind {
            SignalKind::Pulse => {
                if self.self_timed {
                    return false;
                }
                if self.head_loc > 0 {
                    self.head_loc -= 1;
                } else {
                    self.self_timed = true;
                    self.since = epoch;
                }
            }
            SignalKind::Suspend => {
                if self.suspended {
                    return false;
                }
                if self.ticking() {
                    self.rel_latency = self.rel_at(epoch);
                }
                self.suspended = true;
            }
            SignalKind::Resume => {
                if !self.suspended {
                    return false;
                }
                if self.self_timed {
                    self.since = epoch;
                }
                self.suspended = false;
            }
        }
        true
    }
}

/// Data-readiness tracking for one operand (drives *issue*, as opposed to
/// the scheduling operands that drive *promotion*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DataOperand {
    producer: InstTag,
    ready_at: Option<Cycle>,
}

#[derive(Debug, Clone)]
struct Entry {
    tag: InstTag,
    op: OpClass,
    data_ops: [Option<DataOperand>; 2],
    sched_ops: [Option<SchedOperand>; 2],
    heads_chain: Option<ChainRef>,
    /// Cycle this entry last arrived in its segment; an entry cannot be
    /// selected for issue in the same cycle it entered segment 0.
    moved_at: Cycle,
    /// Segment currently holding the entry (kept in sync with the
    /// `segs` lists; 0 = issue buffer).
    seg: usize,
    /// Earliest cycle at which every data operand is known ready
    /// (`Some(0)` when there are none), or `None` while any producer is
    /// still unannounced. Changes only under `announce_ready`.
    ready_cache: Option<Cycle>,
    /// Slot holds a buffered instruction (false = free-listed).
    live: bool,
    /// This entry is included in its segment's `ready_count` (its
    /// `ready_cache` has passed `last_now`).
    counted: bool,
}

impl Entry {
    // chainiq-analyze: hot
    fn delay_at(&self, epoch: Cycle) -> i64 {
        self.sched_ops.iter().flatten().map(|op| op.delay_at(epoch)).max().unwrap_or(0)
    }

    fn compute_ready_cache(&self) -> Option<Cycle> {
        let mut latest: Cycle = 0;
        for d in self.data_ops.iter().flatten() {
            match d.ready_at {
                Some(r) => latest = latest.max(r),
                None => return None,
            }
        }
        Some(latest)
    }

    fn data_ready(&self, now: Cycle) -> bool {
        self.ready_cache.is_some_and(|c| c <= now)
    }

    /// Applies a signal to every operand subscribed to `chain`; reports
    /// whether any of them actually changed state.
    // chainiq-analyze: hot
    fn apply_signal_at(&mut self, chain: ChainRef, kind: SignalKind, epoch: Cycle) -> bool {
        let mut changed = false;
        for op in self.sched_ops.iter_mut().flatten() {
            if op.chain == Some(chain) {
                changed |= op.apply_at(kind, epoch);
            }
        }
        changed
    }

    /// The first cycle at which this entry's delay value drops below
    /// `th` through pure time passage (every constraining operand is
    /// ticking), or `None` if only a future signal can get it there.
    /// The result depends only on each operand's `(since, base)` pair —
    /// not on when it is computed — which is what makes the scheduled
    /// crossings reproducible across snapshot restore.
    // chainiq-analyze: hot
    fn crossing_at(&self, th: i64, epoch: Cycle) -> Option<Cycle> {
        let mut latest: Option<Cycle> = None;
        for op in self.sched_ops.iter().flatten() {
            if op.delay_at(epoch) < th {
                continue; // already below: does not constrain the max
            }
            if !op.ticking() {
                return None;
            }
            let h2 = 2 * op.head_loc.max(0);
            if h2 >= th {
                return None; // only a pulse can lower the head term
            }
            // Need h2 + (base - (e - since)) < th; the remaining
            // latency is still positive up to the crossing, so the
            // floor never engages before it: e* = since + base - (th -
            // 1 - h2). `delay >= th` at `epoch` guarantees e* > epoch.
            let e_star = op.since + (op.rel_latency - (th - 1 - h2)) as u64;
            latest = Some(latest.map_or(e_star, |l| l.max(e_star)));
        }
        latest
    }
}

/// No pending eligibility recheck for a slot.
const NO_RECHECK: Cycle = Cycle::MAX;

/// A signal parked in a climb bucket. Its visible segment is implicit —
/// always the index of the bucket holding it (an invariant of the climb:
/// asserts push at their own segment and a hop moves whole buckets one
/// step up) — so only the payload is stored, and a hop never rewrites
/// the signals it moves. Serialization materializes the segment to keep
/// the checkpoint format unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BufSig {
    chain: ChainRef,
    kind: SignalKind,
}

/// Splices `slot` into a tag-ordered segment age list, scanning from the
/// tail backward. Dispatch and promotion feed mostly-increasing tags, so
/// the scan almost always stops at the tail. The probe reads the dense
/// tag mirror, not the slab — a long scan stays inside a few cache
/// lines instead of striding across full entries.
// chainiq-analyze: hot
fn seg_splice(h: &mut ListHead, links: &mut [Link], tags: &[InstTag], tag: InstTag, slot: u32) {
    let mut after = h.tail;
    while after != NIL && tags[after as usize] > tag {
        after = links[after as usize].prev;
    }
    slab_list::insert_after(h, links, after, slot);
}

/// `seg_splice` with a batch hint: `hint` is the previously spliced slot
/// (or `NIL`), still resident in the same list. A promotion batch feeds
/// ascending tags into a destination list whose tail is young dispatch
/// traffic, so a tail-backward scan re-walks the same suffix for every
/// pick; resuming forward from the previous pick's position makes the
/// whole batch traverse that suffix once. Falls back to the tail scan
/// whenever the hint does not precede the new tag (pushdown picks restart
/// the tag order).
// chainiq-analyze: hot
fn seg_splice_hinted(
    h: &mut ListHead,
    links: &mut [Link],
    tags: &[InstTag],
    tag: InstTag,
    slot: u32,
    hint: &mut u32,
) {
    if *hint != NIL && tags[*hint as usize] < tag {
        let mut after = *hint;
        loop {
            let next = links[after as usize].next;
            if next == NIL || tags[next as usize] > tag {
                break;
            }
            after = next;
        }
        slab_list::insert_after(h, links, after, slot);
    } else {
        seg_splice(h, links, tags, tag, slot);
    }
    *hint = slot;
}

/// The segmented instruction queue with chain-based promotion.
///
/// See the [crate-level docs](crate) for the design summary and a usage
/// example, and [`SegmentedIqConfig`] for the switches. Beyond the
/// [`IssueQueue`] contract it exposes [`SegmentedIq::segmented_stats`]
/// (chain usage, promotion/pushdown/deadlock counters) used by the
/// Table 2 experiments.
#[derive(Debug, Clone)]
pub struct SegmentedIq {
    config: SegmentedIqConfig,
    /// Entry slab: contiguous storage addressed by the slot numbers the
    /// per-segment lists and indexes carry. Slots are recycled LIFO.
    slots: Vec<Entry>,
    /// Dense mirror of each slot's tag (meaningful for live slots only).
    /// The age-list walks — splice probes and promotion picks — read
    /// this instead of the wide slab entries, so a walk touches 8-byte
    /// strides that stay cache-resident.
    slot_tags: Vec<InstTag>,
    free_slots: Vec<u32>,
    /// Per-segment age-list heads, tag-ordered; index 0 is the issue
    /// buffer, higher indices are closer to dispatch. The links live in
    /// `seg_link`, one per slab slot.
    seg_list: Vec<ListHead>,
    seg_link: Vec<Link>,
    /// Residents per segment (the lists don't know their own length).
    seg_len: Vec<usize>,
    /// Follower-list heads per `(segment, wire id)`: the entries of one
    /// segment subscribed to one chain wire, in subscription order
    /// (delivery is per-entry independent, so order is immaterial). The
    /// inner vectors grow with the chain table's wire count.
    fol_heads: Vec<Vec<ListHead>>,
    /// Per-wire occupancy summary: bit `seg & 63` is set when
    /// `fol_heads[seg][id]` is (or may be) non-empty. Most wires have
    /// subscribers in at most one or two segments, so signal delivery
    /// tests this one dense word instead of chasing the per-segment
    /// list head for every hop of the climb. Bits are exact while
    /// `num_segments <= 64`; beyond that, aliased segments only set
    /// (never clear) their shared bit, degrading to a conservative
    /// over-approximation — false positives walk an empty list.
    fol_live: Vec<u64>,
    /// Follower links; node id `2 * slot + k` is slot `slot`'s
    /// subscription for scheduling operand `k`.
    fol_links: Vec<Link>,
    /// Exact chain subscribed per follower node. A signal is delivered
    /// through a node only on an exact generation match, so a stale
    /// subscriber of a recycled wire is skipped rather than double-hit.
    fol_chain: Vec<ChainRef>,
    /// Waiter-list heads per producer tag: the buffered data operands
    /// waiting on that producer's wakeup announcement.
    waiter_heads: TagMap<ListHead>,
    /// Waiter links; node id `2 * slot + k` is slot `slot`'s data
    /// operand `k` (one node per distinct producer per entry).
    wait_links: Vec<Link>,
    /// Data-ready entries per segment, as of `last_now` (the entries with
    /// `counted` set).
    ready_count: Vec<u64>,
    /// Entries whose readiness lies in the future, on a calendar wheel
    /// keyed by `ready_at`. Records can go stale (a later announce moved
    /// the readiness); the drain revalidates against the live entry
    /// instead of erasing eagerly.
    ready_wheel: Wheel<(InstTag, u32)>,
    /// Promotion-eligibility masks, one bitset over slab slots per
    /// segment: bit set ⟺ the resident's delay value is below the
    /// destination threshold. Maintained at attach/detach, at every
    /// signal delivery, and by the crossing wheel for pure time passage.
    elig: Vec<BitSet>,
    /// Scheduled eligibility crossings: `(cycle, slot)` records drained
    /// each tick. A record fires only if it still matches `recheck_at`.
    crossings: Wheel<u32>,
    /// Per-slot guard for `crossings` records: the cycle of the one
    /// valid pending recheck, or [`NO_RECHECK`]. Detach and reschedule
    /// invalidate stale wheel records by moving this aside.
    recheck_at: Vec<Cycle>,
    /// The cycle whose self-timed decrement has logically happened; all
    /// delay-value reads are relative to this.
    countdown_epoch: Cycle,
    /// The cycle the ready counters were last advanced to.
    last_now: Cycle,
    /// Free slots per segment as of the end of the previous cycle — the
    /// information promotion logic is allowed to use (§3.1).
    free_prev: Vec<usize>,
    /// Signals travelling up the pipelined chain wires, bucketed by the
    /// segment they are currently visible in (promotion and dispatch
    /// consult only the buckets that can reach them, instead of scanning
    /// every signal in flight — the dominant cost under heavy chain
    /// traffic).
    sig_bufs: Vec<Vec<BufSig>>,
    /// Per-bucket summary of the chains with a signal in `sig_bufs[s]`:
    /// bit `id mod 256` set for every buffered signal's wire. Promotion
    /// and bypassed dispatch must replay the buckets they move past, but
    /// a mover subscribes to at most two chains — the filter proves the
    /// common "nothing here concerns you" case without scanning the
    /// bucket. False positives (id aliasing) cost a wasted scan; false
    /// negatives cannot happen.
    sig_filter: Vec<[u64; 4]>,
    /// Per-segment follower-wire summary, same 256-bit keying as
    chains: ChainTable,
    /// One register information table per hardware thread context,
    /// grown on demand (index = `DispatchInfo::thread`).
    regs: Vec<RegInfoTable>,
    stats: SegmentedStats,
    /// Whether `select_issue` issued anything in the current cycle
    /// (input to next cycle's deadlock detector).
    issued_this_cycle: bool,
    /// Whether the previous cycle made any progress (issue or promotion).
    progress_last_cycle: bool,
    /// Scratch buffers so the per-cycle hot paths never allocate.
    scratch_pairs: Vec<(InstTag, u32)>,
    scratch_picks: Vec<(InstTag, u32)>,
    scratch_wake: Vec<(InstTag, u32)>,
    scratch_cross: Vec<u32>,
    scratch_slots: Vec<u32>,
    /// Route the read paths through the reference full scans instead of
    /// the indexes (the write paths maintain the indexes either way).
    /// Differential testing only; never set in production.
    naive: bool,
}

impl SegmentedIq {
    /// Creates an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `config` is zero.
    #[must_use]
    pub fn new(config: SegmentedIqConfig) -> Self {
        assert!(config.num_segments > 0 && config.segment_size > 0 && config.promote_width > 0);
        SegmentedIq {
            config,
            slots: Vec::with_capacity(config.capacity()),
            slot_tags: Vec::with_capacity(config.capacity()),
            free_slots: Vec::new(),
            seg_list: vec![ListHead::EMPTY; config.num_segments],
            seg_link: Vec::new(),
            seg_len: vec![0; config.num_segments],
            fol_heads: vec![Vec::new(); config.num_segments],
            fol_live: Vec::new(),
            fol_links: Vec::new(),
            fol_chain: Vec::new(),
            waiter_heads: TagMap::new(),
            wait_links: Vec::new(),
            ready_count: vec![0; config.num_segments],
            ready_wheel: Wheel::new(64),
            elig: vec![BitSet::new(); config.num_segments],
            crossings: Wheel::new(64),
            recheck_at: Vec::new(),
            countdown_epoch: 0,
            last_now: 0,
            free_prev: vec![config.segment_size; config.num_segments],
            sig_bufs: vec![Vec::new(); config.num_segments],
            sig_filter: vec![[0u64; 4]; config.num_segments],
            chains: ChainTable::new(config.max_chains),
            regs: vec![RegInfoTable::new()],
            stats: SegmentedStats::default(),
            issued_this_cycle: false,
            progress_last_cycle: true,
            scratch_pairs: Vec::new(),
            scratch_picks: Vec::new(),
            scratch_wake: Vec::new(),
            scratch_cross: Vec::new(),
            scratch_slots: Vec::new(),
            naive: false,
        }
    }

    /// Routes every read path through the reference full-scan kernel
    /// (the indexes stay maintained either way). The differential tests
    /// drive one queue in each mode and demand identical behavior; the
    /// flag does not exist for production use.
    #[cfg(any(test, feature = "naive_kernel"))]
    pub fn set_naive_kernel(&mut self, naive: bool) {
        self.naive = naive;
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SegmentedIqConfig {
        &self.config
    }

    /// Segmented-specific statistics (chain usage, promotions, deadlock
    /// recoveries, …).
    #[must_use]
    pub fn segmented_stats(&self) -> &SegmentedStats {
        &self.stats
    }

    /// Chains currently live.
    #[must_use]
    pub fn live_chains(&self) -> usize {
        self.chains.live()
    }

    /// Number of instructions in segment `k` (0 = issue buffer).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn segment_len(&self, k: usize) -> usize {
        self.seg_len[k]
    }

    /// Finds the slab slot holding `tag`, if buffered (test and
    /// visualization paths; the hot paths carry slots directly).
    fn find_slot(&self, tag: InstTag) -> Option<u32> {
        self.slots.iter().position(|e| e.live && e.tag == tag).map(|s| s as u32)
    }

    /// The current delay value of the queued instruction `tag`, if it is
    /// still buffered (primarily for tests and visualization).
    #[must_use]
    pub fn delay_of(&self, tag: InstTag) -> Option<i64> {
        self.find_slot(tag).map(|s| self.slots[s as usize].delay_at(self.countdown_epoch))
    }

    /// The segment currently holding `tag`, if buffered.
    #[must_use]
    pub fn segment_of(&self, tag: InstTag) -> Option<usize> {
        self.find_slot(tag).map(|s| self.slots[s as usize].seg)
    }

    fn top(&self) -> usize {
        self.config.num_segments - 1
    }

    fn free(&self, k: usize) -> usize {
        self.config.segment_size - self.seg_len[k]
    }

    /// Stores `entry` in a free slab slot and returns the slot number,
    /// growing the parallel link/guard arrays alongside the slab.
    // chainiq-analyze: hot
    fn alloc_slot(&mut self, entry: Entry) -> u32 {
        let tag = entry.tag;
        if let Some(s) = self.free_slots.pop() {
            debug_assert!(!self.slots[s as usize].live);
            self.slots[s as usize] = entry;
            self.slot_tags[s as usize] = tag;
            s
        } else {
            self.slots.push(entry);
            self.slot_tags.push(tag);
            self.seg_link.push(Link::default());
            self.fol_links.extend([Link::default(); 2]);
            self.fol_chain.extend([ChainRef { id: 0, gen: 0 }; 2]);
            self.wait_links.extend([Link::default(); 2]);
            self.recheck_at.push(NO_RECHECK);
            let n = self.slots.len();
            for b in &mut self.elig {
                b.ensure(n);
            }
            (n - 1) as u32
        }
    }

    /// The distinct chain subscriptions of `ops`: `(operand index,
    /// chain)`, skipping a second operand on the same exact chain (an
    /// entry with both operands on one chain subscribes once). The set
    /// depends only on the immutable `chain` fields, so attach and
    /// detach always agree.
    fn subscriptions(
        ops: &[Option<SchedOperand>; 2],
    ) -> impl Iterator<Item = (usize, ChainRef)> + '_ {
        let first = ops[0].as_ref().and_then(|o| o.chain);
        ops.iter().enumerate().filter_map(move |(k, op)| {
            let chain = op.as_ref().and_then(|o| o.chain)?;
            (k == 0 || Some(chain) != first).then_some((k, chain))
        })
    }

    /// Whether bucket filter `f` may hold a signal for any chain
    /// subscribed by `ops`. No false negatives; a false positive (wire
    /// ids aliasing modulo 256) only costs a wasted bucket scan.
    // chainiq-analyze: hot
    #[inline]
    fn filter_hits(f: &[u64; 4], ops: &[Option<SchedOperand>; 2]) -> bool {
        Self::subscriptions(ops).any(|(_, chain)| {
            let b = (chain.id & 255) as usize;
            f[b >> 6] & (1u64 << (b & 63)) != 0
        })
    }

    /// Records `chain` in bucket filter `f`.
    #[inline]
    fn filter_add(f: &mut [u64; 4], chain: ChainRef) {
        let b = (chain.id & 255) as usize;
        f[b >> 6] |= 1u64 << (b & 63);
    }

    /// Recomputes the promotion-eligibility bit of an attached `slot`
    /// and (re)schedules its time-only crossing. Idempotent: if nothing
    /// changed, neither the mask nor the wheel is touched — safe to call
    /// redundantly (the naive delivery path calls it for bystanders).
    // chainiq-analyze: hot
    fn recompute_elig(&mut self, slot: u32) {
        let e = &self.slots[slot as usize];
        let seg = e.seg;
        if seg == 0 {
            return; // the issue buffer has no promotion threshold
        }
        let th = self.config.threshold(seg - 1);
        let epoch = self.countdown_epoch;
        if e.delay_at(epoch) < th {
            self.elig[seg].set(slot);
            self.recheck_at[slot as usize] = NO_RECHECK;
            return;
        }
        self.elig[seg].clear(slot);
        match e.crossing_at(th, epoch) {
            Some(c) if self.recheck_at[slot as usize] != c => {
                self.recheck_at[slot as usize] = c;
                self.crossings.schedule(c, slot);
            }
            Some(_) => {} // the pending recheck is already exactly there
            None => self.recheck_at[slot as usize] = NO_RECHECK,
        }
    }

    /// Inserts `slot` (with `tag` and `seg` already set in its entry)
    /// into the per-segment lists and eligibility mask, and counts it
    /// ready if its entry is.
    // chainiq-analyze: hot
    fn attach(&mut self, slot: u32) {
        let e = &self.slots[slot as usize];
        let (tag, seg, counted) = (e.tag, e.seg, e.counted);
        let ops = e.sched_ops;
        seg_splice(&mut self.seg_list[seg], &mut self.seg_link, &self.slot_tags, tag, slot);
        self.seg_len[seg] += 1;
        for (k, chain) in Self::subscriptions(&ops) {
            let wires = &mut self.fol_heads[seg];
            let id = chain.id as usize;
            if wires.len() <= id {
                wires.resize(id + 1, ListHead::EMPTY);
            }
            let node = 2 * slot + k as u32;
            slab_list::push_back(&mut wires[id], &mut self.fol_links, node);
            self.fol_chain[node as usize] = chain;
            if self.fol_live.len() <= id {
                self.fol_live.resize(id + 1, 0);
            }
            self.fol_live[id] |= 1u64 << (seg & 63);
        }
        if counted {
            self.ready_count[seg] += 1;
        }
        self.recompute_elig(slot);
    }

    /// Removes `slot` from the per-segment lists and eligibility mask
    /// (it stays in the slab, the ready wheel and the waiter lists —
    /// callers either re-attach after moving it or finish with
    /// `remove_fully`).
    // chainiq-analyze: hot
    fn detach(&mut self, slot: u32) {
        let e = &self.slots[slot as usize];
        let (seg, counted) = (e.seg, e.counted);
        let ops = e.sched_ops;
        slab_list::remove(&mut self.seg_list[seg], &mut self.seg_link, slot);
        self.seg_len[seg] -= 1;
        for (k, chain) in Self::subscriptions(&ops) {
            let node = 2 * slot + k as u32;
            let head = &mut self.fol_heads[seg][chain.id as usize];
            slab_list::remove(head, &mut self.fol_links, node);
            // Only exact bits may be cleared; with more than 64 segments
            // the aliased bit stays set (conservative, still correct).
            if head.is_empty() && self.config.num_segments <= 64 {
                self.fol_live[chain.id as usize] &= !(1u64 << seg);
            }
        }
        if counted {
            self.ready_count[seg] -= 1;
        }
        self.elig[seg].clear(slot);
        self.recheck_at[slot as usize] = NO_RECHECK;
    }

    /// Moves an attached `slot` one segment down (`seg` → `seg - 1`) in
    /// a single pass: one age-list re-splice, one follower-node move per
    /// subscription, one ready-count transfer and one eligibility
    /// recompute — the work a detach/attach pair would do twice. The
    /// promotion loop runs this tens of times per cycle under heavy
    /// chain traffic.
    // chainiq-analyze: hot
    fn move_down(&mut self, slot: u32, now: Cycle, splice_hint: &mut u32) {
        let e = &mut self.slots[slot as usize];
        let (tag, seg, counted) = (e.tag, e.seg, e.counted);
        let dst = seg - 1;
        e.seg = dst;
        e.moved_at = now;
        let ops = e.sched_ops;
        slab_list::remove(&mut self.seg_list[seg], &mut self.seg_link, slot);
        self.seg_len[seg] -= 1;
        seg_splice_hinted(
            &mut self.seg_list[dst],
            &mut self.seg_link,
            &self.slot_tags,
            tag,
            slot,
            splice_hint,
        );
        self.seg_len[dst] += 1;
        for (k, chain) in Self::subscriptions(&ops) {
            let node = 2 * slot + k as u32;
            let id = chain.id as usize;
            let head = &mut self.fol_heads[seg][id];
            slab_list::remove(head, &mut self.fol_links, node);
            // Only exact bits may be cleared; with more than 64 segments
            // the aliased bit stays set (conservative, still correct).
            if head.is_empty() && self.config.num_segments <= 64 {
                self.fol_live[id] &= !(1u64 << seg);
            }
            let wires = &mut self.fol_heads[dst];
            if wires.len() <= id {
                wires.resize(id + 1, ListHead::EMPTY);
            }
            slab_list::push_back(&mut wires[id], &mut self.fol_links, node);
            self.fol_live[id] |= 1u64 << (dst & 63);
            // `fol_chain[node]` already names this chain.
        }
        if counted {
            self.ready_count[seg] -= 1;
            self.ready_count[dst] += 1;
        }
        self.elig[seg].clear(slot);
        self.recheck_at[slot as usize] = NO_RECHECK;
        self.recompute_elig(slot);
    }

    /// Removes `slot` from the queue entirely (issue path), returning the
    /// chain its instruction headed, if any. Stale ready-wheel records
    /// are left behind; the drain revalidates liveness.
    // chainiq-analyze: hot
    fn remove_fully(&mut self, slot: u32) -> Option<ChainRef> {
        self.detach(slot);
        let e = &mut self.slots[slot as usize];
        e.live = false;
        let (heads, dops) = (e.heads_chain, e.data_ops);
        for (k, d) in dops.iter().enumerate() {
            let Some(d) = d else { continue };
            if k == 1 && dops[0].is_some_and(|d0| d0.producer == d.producer) {
                continue; // second operand shared the first's waiter node
            }
            let key = d.producer.0;
            if let Some(head) = self.waiter_heads.get_mut(key) {
                slab_list::remove(head, &mut self.wait_links, 2 * slot + k as u32);
                if head.is_empty() {
                    self.waiter_heads.remove(key);
                }
            }
        }
        self.free_slots.push(slot);
        heads
    }

    /// Re-seats `slot` in the ready accounting after a data-operand
    /// mutation.
    // chainiq-analyze: hot
    fn refresh_ready(&mut self, slot: u32) {
        let e = &mut self.slots[slot as usize];
        let new = e.compute_ready_cache();
        if new == e.ready_cache {
            return;
        }
        e.ready_cache = new;
        let (tag, seg, was_counted) = (e.tag, e.seg, e.counted);
        match new {
            Some(c) if c <= self.last_now => {
                if !was_counted {
                    e.counted = true;
                    self.ready_count[seg] += 1;
                }
            }
            Some(c) => {
                if was_counted {
                    e.counted = false;
                    self.ready_count[seg] -= 1;
                }
                self.ready_wheel.schedule(c, (tag, slot));
            }
            None => {
                if was_counted {
                    e.counted = false;
                    self.ready_count[seg] -= 1;
                }
            }
        }
    }

    /// Advances the ready counters to `now`, revalidating each matured
    /// record against the live entry (records outlive re-announces and
    /// issued entries; only a live, still-uncounted, actually-ready
    /// entry is counted — so the wheel's drain order is immaterial).
    // chainiq-analyze: hot
    fn drain_ready(&mut self, now: Cycle) {
        self.last_now = now;
        let mut matured = std::mem::take(&mut self.scratch_wake);
        matured.clear();
        self.ready_wheel.drain_into(now, &mut matured);
        for &(tag, slot) in &matured {
            let e = &mut self.slots[slot as usize];
            if e.live && e.tag == tag && !e.counted && e.ready_cache.is_some_and(|rc| rc <= now) {
                e.counted = true;
                self.ready_count[e.seg] += 1;
            }
        }
        self.scratch_wake = matured;
    }

    /// Delivers `sig` to the entries of its segment: through the wire's
    /// follower list normally, or to every resident in naive mode (the
    /// per-operand chain check makes the two target sets equivalent).
    /// Eligibility is recomputed wherever the signal changed operand
    /// state; a no-op application leaves the mask and wheel untouched by
    /// definition, so skipping the recompute keeps both modes'
    /// masks identical (naive recomputes unconditionally, including
    /// bystanders — the reference stays maximally simple).
    // chainiq-analyze: hot
    fn deliver_to_segment(&mut self, sig: WireSignal) {
        let epoch = self.countdown_epoch;
        if self.naive {
            let mut cur = self.seg_list[sig.segment].head;
            while cur != NIL {
                self.slots[cur as usize].apply_signal_at(sig.chain, sig.kind, epoch);
                self.recompute_elig(cur);
                cur = self.seg_link[cur as usize].next;
            }
        } else {
            let id = sig.chain.id as usize;
            // One dense word answers "any subscriber here?" for the
            // common all-empty hop without touching the list heads.
            match self.fol_live.get(id) {
                Some(live) if live & (1u64 << (sig.segment & 63)) != 0 => {}
                _ => {
                    return; // no subscriber of this wire in this segment
                }
            }
            let Some(&head) = self.fol_heads[sig.segment].get(id) else {
                return; // no subscriber has ever touched this wire here
            };
            let mut cur = head.head;
            while cur != NIL {
                // Exact-generation match: a subscriber of a released and
                // recycled wire must not be hit by the new chain's
                // signals twice through its two nodes.
                if self.fol_chain[cur as usize] == sig.chain {
                    let slot = cur >> 1;
                    if self.slots[slot as usize].apply_signal_at(sig.chain, sig.kind, epoch) {
                        self.recompute_elig(slot);
                    }
                }
                cur = self.fol_links[cur as usize].next;
            }
        }
    }

    /// Applies a signal to every register table.
    // chainiq-analyze: hot
    fn deliver_to_regs(&mut self, sig: WireSignal) {
        for t in &mut self.regs {
            t.apply_signal(sig);
        }
    }

    /// Asserts a signal at `segment` this cycle: applies it to the
    /// entries there (and the register table if at the top) and queues it
    /// for upward propagation.
    // chainiq-analyze: hot
    fn assert_signal(&mut self, chain: ChainRef, kind: SignalKind, segment: usize) {
        self.stats.wire_signal_hops += 1;
        let sig = WireSignal { chain, kind, segment };
        self.deliver_to_segment(sig);
        if segment == self.config.num_segments - 1 {
            self.deliver_to_regs(sig);
        } else {
            self.sig_bufs[segment].push(BufSig { chain, kind });
            Self::filter_add(&mut self.sig_filter[segment], chain);
        }
    }

    /// Moves the wire signals one segment up and delivers them. Buckets
    /// are processed top-down — oldest signals first, matching the
    /// assert-time order the single-list kernel used (signals in
    /// different buckets land in disjoint segments, so only the
    /// same-bucket order is observable, and that is preserved). Each
    /// bucket moves up wholesale by vector swap — the destination bucket
    /// was drained on the previous iteration — so a signal is written
    /// once at assert and never copied again while it climbs.
    // chainiq-analyze: hot
    fn propagate_signals(&mut self) {
        let top = self.top();
        for s in (0..top).rev() {
            if self.sig_bufs[s].is_empty() {
                continue;
            }
            self.stats.wire_signal_hops += self.sig_bufs[s].len() as u64;
            let dst = s + 1;
            let buf = std::mem::take(&mut self.sig_bufs[s]);
            for &b in &buf {
                let sig = WireSignal { chain: b.chain, kind: b.kind, segment: dst };
                self.deliver_to_segment(sig);
                if dst >= top {
                    self.deliver_to_regs(sig);
                }
            }
            if dst < top {
                let drained = std::mem::replace(&mut self.sig_bufs[dst], buf);
                self.sig_bufs[s] = drained;
                self.sig_filter[dst] = self.sig_filter[s];
            } else {
                // Top arrivals went to the register tables; keep the
                // allocation for future asserts.
                let mut buf = buf;
                buf.clear();
                self.sig_bufs[s] = buf;
            }
            self.sig_filter[s] = [0u64; 4];
        }
    }

    /// Fires the eligibility rechecks that matured by `now`. Each record
    /// is guarded by `recheck_at` (stale records from detached or
    /// rescheduled slots are skipped) and the handler is a pure
    /// recompute, so drain order and redundant firings are immaterial.
    // chainiq-analyze: hot
    fn drain_crossings(&mut self, now: Cycle) {
        let mut matured = std::mem::take(&mut self.scratch_cross);
        matured.clear();
        self.crossings.drain_into(now, &mut matured);
        for &slot in &matured {
            // `recheck_at` holds the cycle of the one valid record per
            // slot; anything else on the wheel is stale.
            if self.recheck_at[slot as usize] <= now {
                self.recheck_at[slot as usize] = NO_RECHECK;
                self.recompute_elig(slot);
            }
        }
        self.scratch_cross = matured;
    }

    /// Selects up to `budget` entries of `seg` for promotion: eligible
    /// (delay below the destination threshold) oldest-first, then — if
    /// pushdown applies — oldest ineligible entries. The naive kernel
    /// walks the age list recomputing every delay (the reference); the
    /// indexed kernel reads the incrementally-maintained eligibility
    /// mask, whose bits are exactly `delay < threshold` at the current
    /// epoch, and age-orders the set bits by tag.
    // chainiq-analyze: hot
    fn choose_promotions_into(&self, seg: usize, budget: usize, picks: &mut Vec<(InstTag, u32)>) {
        let threshold = self.config.threshold(seg - 1);
        let epoch = self.countdown_epoch;
        if self.naive {
            let mut cur = self.seg_list[seg].head;
            while cur != NIL && picks.len() < budget {
                let e = &self.slots[cur as usize];
                if e.delay_at(epoch) < threshold {
                    picks.push((e.tag, cur));
                }
                cur = self.seg_link[cur as usize].next;
            }
        } else if self.elig[seg].any() {
            // The eligible set routinely exceeds the budget (free space
            // in the destination, not eligibility, is the usual limit),
            // so walking the tag-ordered age list probing bits — and
            // stopping at `budget` — beats collecting the whole set off
            // the mask and sorting it.
            let mut cur = self.seg_list[seg].head;
            while cur != NIL && picks.len() < budget {
                if self.elig[seg].get(cur) {
                    picks.push((self.slot_tags[cur as usize], cur));
                }
                cur = self.seg_link[cur as usize].next;
            }
        }
        if self.pushdown_applies(seg, budget, picks.len()) {
            let mut room = (budget - picks.len()).min(self.config.promote_width);
            let mut cur = self.seg_list[seg].head;
            while cur != NIL && room > 0 {
                let ineligible = if self.naive {
                    self.slots[cur as usize].delay_at(epoch) >= threshold
                } else {
                    !self.elig[seg].get(cur)
                };
                if ineligible {
                    picks.push((self.slot_tags[cur as usize], cur));
                    room -= 1;
                }
                cur = self.seg_link[cur as usize].next;
            }
        }
    }

    fn pushdown_applies(&self, seg: usize, budget: usize, picked: usize) -> bool {
        self.config.pushdown
            && picked < budget
            && self.free(seg) < self.config.promote_width
            && self.free_prev[seg - 1] * 2 > 3 * self.config.promote_width
    }

    /// Moves `slot` from `seg` to `seg - 1`, asserting the chain wire if
    /// it heads a chain. `splice_hint` carries the destination-list
    /// position between the picks of one batch (see `seg_splice_hinted`);
    /// callers reset it to `NIL` per destination list.
    // chainiq-analyze: hot
    fn promote_one(
        &mut self,
        now: Cycle,
        seg: usize,
        slot: u32,
        pushdown: bool,
        splice_hint: &mut u32,
    ) {
        // A promotion moves against the upward-travelling wire signals: a
        // signal currently visible in the destination segment would reach
        // the source segment next cycle and miss the mover, so deliver it
        // on the way past (exactly the `seg - 1` bucket). The application
        // is position-independent, so it happens before the move.
        let epoch = self.countdown_epoch;
        let ops = self.slots[slot as usize].sched_ops;
        if self.naive || Self::filter_hits(&self.sig_filter[seg - 1], &ops) {
            for i in 0..self.sig_bufs[seg - 1].len() {
                let b = self.sig_bufs[seg - 1][i];
                self.slots[slot as usize].apply_signal_at(b.chain, b.kind, epoch);
            }
        }
        let heads_chain = self.slots[slot as usize].heads_chain;
        self.move_down(slot, now, splice_hint);
        // The mover left `seg` before its pulse is asserted there, so it
        // cannot receive its own pulse (§3.3); the pulse is delivered to
        // the entries staying behind and buffered for the climb.
        if let Some(chain) = heads_chain {
            self.assert_signal(chain, SignalKind::Pulse, seg);
        }
        if pushdown {
            self.stats.pushdowns += 1;
        } else {
            self.stats.promotions += 1;
        }
    }

    // chainiq-analyze: hot
    fn run_promotion(&mut self, now: Cycle) -> u64 {
        let mut promoted = 0u64;
        let mut picks = std::mem::take(&mut self.scratch_picks);
        for seg in 1..self.config.num_segments {
            let space = self.free_prev[seg - 1].min(self.free(seg - 1));
            let budget = space.min(self.config.promote_width);
            if budget == 0 {
                continue;
            }
            let threshold = self.config.threshold(seg - 1);
            picks.clear();
            self.choose_promotions_into(seg, budget, &mut picks);
            let mut splice_hint = NIL;
            for &(_, slot) in &picks {
                // Re-read the live delay: an earlier pick's pulse this
                // cycle may have changed it since the pick was made.
                let is_pushdown =
                    self.slots[slot as usize].delay_at(self.countdown_epoch) >= threshold;
                self.promote_one(now, seg, slot, is_pushdown, &mut splice_hint);
                promoted += 1;
            }
        }
        self.scratch_picks = picks;
        promoted
    }

    /// §4.5 recovery: guarantee a free slot in every segment and keep the
    /// oldest ready instruction moving toward issue.
    fn run_deadlock_recovery(&mut self, now: Cycle) {
        self.drain_ready(now);
        self.stats.deadlock_cycles += 1;
        // If the issue buffer is full of unready instructions, recycle
        // the youngest back to the top.
        let mut recycled: Option<u32> = None;
        let seg0_has_ready = if self.naive {
            let mut found = false;
            let mut cur = self.seg_list[0].head;
            while cur != NIL {
                if self.slots[cur as usize].data_ready(now) {
                    found = true;
                    break;
                }
                cur = self.seg_link[cur as usize].next;
            }
            found
        } else {
            self.ready_count[0] > 0
        };
        if self.free(0) == 0 && !seg0_has_ready {
            // The age list is tag-ordered, so the youngest is the tail.
            let slot = self.seg_list[0].tail;
            if slot != NIL {
                self.detach(slot);
                recycled = Some(slot);
                self.stats.recovery_recycles += 1;
            }
        }
        // Bottom-up, every full segment force-promotes one instruction
        // (eligible if available, else the oldest ineligible).
        let epoch = self.countdown_epoch;
        for seg in 1..self.config.num_segments {
            if self.free(seg) > 0 || self.free(seg - 1) == 0 {
                continue;
            }
            let threshold = self.config.threshold(seg - 1);
            let mut pick = None;
            let mut cur = self.seg_list[seg].head;
            while cur != NIL {
                if self.slots[cur as usize].delay_at(epoch) < threshold {
                    pick = Some(cur);
                    break;
                }
                cur = self.seg_link[cur as usize].next;
            }
            if pick.is_none() && self.seg_list[seg].head != NIL {
                pick = Some(self.seg_list[seg].head);
            }
            if let Some(slot) = pick {
                let mut splice_hint = NIL;
                self.promote_one(now, seg, slot, false, &mut splice_hint);
                self.stats.recovery_promotions += 1;
            }
        }
        if let Some(slot) = recycled {
            let top = self.top();
            // Recovery freed a slot in the top segment if it was full.
            // The recycled entry keeps its `moved_at` and sees no
            // in-flight signals, exactly as the scan kernel moved it.
            let dest = (0..=top).rev().find(|&k| self.free(k) > 0).unwrap_or(top);
            self.slots[slot as usize].seg = dest;
            self.attach(slot);
        }
    }

    /// Reference ready-count sample by full scan (naive mode).
    fn ready_scan_naive(&self, now: Cycle) -> (u64, u64) {
        let mut ready0 = 0u64;
        let mut ready_all = 0u64;
        for k in 0..self.config.num_segments {
            let mut cur = self.seg_list[k].head;
            while cur != NIL {
                if self.slots[cur as usize].data_ready(now) {
                    ready_all += 1;
                    if k == 0 {
                        ready0 += 1;
                    }
                }
                cur = self.seg_link[cur as usize].next;
            }
        }
        (ready0, ready_all)
    }

    /// Builds the scheduling operand for one source register, from the
    /// register information table. A ticking operand starts its virtual
    /// countdown at the dispatch cycle `now`.
    fn sched_for(&self, sched: RegSched, now: Cycle) -> Option<SchedOperand> {
        match sched {
            RegSched::Available => None,
            RegSched::Countdown { remaining } => Some(SchedOperand {
                chain: None,
                rel_latency: remaining,
                head_loc: 0,
                self_timed: true,
                suspended: false,
                since: now,
            }),
            RegSched::OnChain { chain, latency, head_loc, self_timed, suspended } => {
                Some(SchedOperand {
                    chain: Some(chain),
                    rel_latency: latency,
                    head_loc: if self_timed { 0 } else { head_loc },
                    self_timed,
                    suspended,
                    since: now,
                })
            }
        }
    }

    /// Predicted produce latency of an instruction (loads use the
    /// configured hit latency; §3.3).
    fn predicted_latency(&self, op: OpClass) -> i64 {
        if op == OpClass::Load {
            self.config.predicted_load_latency
        } else {
            i64::from(op.exec_latency())
        }
    }

    /// The §4.2 dispatch target: the highest non-empty segment (empty
    /// leading segments are bypassed), or the segment above it when full.
    fn dispatch_target(&self) -> Option<usize> {
        let top = self.top();
        if !self.config.bypass {
            return (self.free(top) > 0).then_some(top);
        }
        let highest_nonempty = (0..=top).rev().find(|&k| self.seg_len[k] > 0).unwrap_or(0);
        if self.free(highest_nonempty) > 0 {
            Some(highest_nonempty)
        } else if highest_nonempty < top {
            Some(highest_nonempty + 1)
        } else {
            None
        }
    }
}

impl IssueQueue for SegmentedIq {
    fn capacity(&self) -> usize {
        self.config.capacity()
    }

    fn occupancy(&self) -> usize {
        self.seg_len.iter().sum()
    }

    // chainiq-analyze: hot
    fn tick(&mut self, now: Cycle, execution_idle: bool) {
        // Snapshot each segment's free-slot count as of the end of the
        // previous cycle (= start of this one, after last cycle's issue
        // and dispatch) — the information §3.1 allows promotion to use.
        for k in 0..self.config.num_segments {
            self.free_prev[k] = self.free(k);
        }
        self.drain_ready(now);

        // Per-cycle statistics, sampled from the maintained counters (the
        // scan kernel recomputed readiness per entry here every cycle).
        self.stats.iq.cycles += 1;
        let mut occupancy = 0u64;
        let mut empty = 0u64;
        for &len in &self.seg_len {
            occupancy += len as u64;
            if len == 0 {
                empty += 1;
            }
        }
        self.stats.iq.occupancy_accum += occupancy;
        self.stats.seg0_occupancy_accum += self.seg_len[0] as u64;
        self.stats.num_segments = self.config.num_segments;
        self.stats.empty_segment_cycles += empty;
        let (ready0, ready_all) = if self.naive {
            self.ready_scan_naive(now)
        } else {
            let mut all = 0u64;
            for &c in &self.ready_count {
                all += c;
            }
            (self.ready_count[0], all)
        };
        self.stats.ready_in_seg0_accum += ready0;
        self.stats.ready_total_accum += ready_all;
        self.chains.sample(now);

        // 1. Signals asserted last cycle move one segment up (delivered
        //    against the previous cycle's epoch: suspends gate this
        //    cycle's decrement).
        self.propagate_signals();

        // 2. This cycle's self-timed decrement happens *virtually*:
        //    advancing the epoch is the whole-window countdown tick.
        self.countdown_epoch = now;
        for t in &mut self.regs {
            t.tick();
        }

        // 3. Eligibility crossings that matured by the new epoch.
        self.drain_crossings(now);

        // 4. Chain/threshold-driven promotion.
        let promoted = self.run_promotion(now);

        // 4. Deadlock detection (§4.5): queue non-empty, nothing issued
        //    or promoted, nothing executing.
        let made_progress = promoted > 0 || self.issued_this_cycle;
        if self.config.deadlock_recovery
            && !made_progress
            && !self.progress_last_cycle
            && execution_idle
            && !self.is_empty()
        {
            self.run_deadlock_recovery(now);
        }
        self.progress_last_cycle = made_progress;
        self.issued_this_cycle = false;
    }

    fn dispatch(&mut self, now: Cycle, info: DispatchInfo) -> Result<(), DispatchStall> {
        // Find a landing segment before committing to anything.
        let Some(target) = self.dispatch_target() else {
            self.stats.iq.stalls_full += 1;
            return Err(DispatchStall::QueueFull);
        };

        // Operand scheduling status, from this thread's register
        // information table.
        let thread = info.thread as usize;
        if thread >= self.regs.len() {
            self.regs.resize_with(thread + 1, RegInfoTable::new);
        }
        let mut srcs: [Option<RegSched>; 2] = [None, None];
        for (i, s) in info.srcs.iter().enumerate() {
            if let Some(s) = s {
                srcs[i] = Some(self.regs[thread].get(s.reg));
            }
        }
        let chain_of = |s: &RegSched| match s {
            RegSched::OnChain { chain, .. } => Some(*chain),
            _ => None,
        };
        let mut chains_seen: [Option<ChainRef>; 2] = [None, None];
        let mut n_chains = 0usize;
        for s in srcs.iter().flatten() {
            if let Some(c) = chain_of(s) {
                chains_seen[n_chains] = Some(c);
                n_chains += 1;
            }
        }
        let dual_dep = n_chains == 2 && chains_seen[0] != chains_seen[1];

        let is_load = info.op == OpClass::Load;
        let load_heads_chain = is_load && !info.predicted_hit;
        let dual_heads_chain = dual_dep && self.config.two_chain_tracking;
        let needs_chain = load_heads_chain || dual_heads_chain;

        // Allocate the chain wire (the only other stall source).
        let heads_chain = if needs_chain {
            match self.chains.alloc(info.tag, is_load) {
                Some(c) => Some(c),
                None => {
                    self.chains.note_wire_stall();
                    self.stats.iq.stalls_no_chain += 1;
                    return Err(DispatchStall::NoChainWire);
                }
            }
        } else {
            None
        };

        // Build scheduling operands; under single-chain tracking (§4.3)
        // keep only the predicted-critical chain when two would be needed.
        let mut sched_ops: [Option<SchedOperand>; 2] = [None, None];
        if dual_dep && !self.config.two_chain_tracking {
            let pick = info.lrp_pick.unwrap_or(OperandPick::Left);
            let keep = match pick {
                OperandPick::Left => (0..2).find(|&i| srcs[i].is_some()).unwrap_or(0),
                OperandPick::Right => (0..2).rev().find(|&i| srcs[i].is_some()).unwrap_or(0),
            };
            for (i, s) in srcs.iter().enumerate() {
                if let Some(s) = s {
                    if i == keep || chain_of(s).is_none() {
                        sched_ops[i] = self.sched_for(*s, now);
                    }
                }
            }
        } else {
            for (i, s) in srcs.iter().enumerate() {
                if let Some(s) = s {
                    sched_ops[i] = self.sched_for(*s, now);
                }
            }
        }

        // Data-readiness operands.
        let mut data_ops: [Option<DataOperand>; 2] = [None, None];
        for (i, s) in info.srcs.iter().enumerate() {
            if let Some(s) = s {
                if let Some(producer) = s.producer {
                    data_ops[i] = Some(DataOperand { producer, ready_at: s.known_ready_at });
                }
            }
        }

        // Update the register information table for the destination.
        if let Some(dest) = info.dest {
            let produce = self.predicted_latency(info.op);
            // Countdown estimates assume the instruction issues as soon
            // as its operands are ready; optionally add the descent time
            // of the landing segment (see `countdown_includes_descent`).
            // Load values use the chain-style two-cycles-per-segment
            // estimate (their dependents flooding segment 0 is the §4.4
            // failure mode); cheap ALU values stay optimistic so address
            // computations are not held back.
            let descent = if self.config.countdown_includes_descent {
                if info.op == OpClass::Load {
                    2 * target as i64
                } else {
                    target as i64
                }
            } else {
                0
            };
            let new_sched = if let Some(chain) = heads_chain {
                RegSched::OnChain {
                    chain,
                    latency: produce,
                    head_loc: target as i64,
                    self_timed: false,
                    suspended: false,
                }
            } else {
                // Follow the slowest operand (freshly built: `since` is
                // `now`, so `delay_at(now)` is the undecayed delay).
                let slowest = sched_ops.iter().flatten().max_by_key(|o| o.delay_at(now)).copied();
                match slowest {
                    None => RegSched::Countdown { remaining: descent.max(0) + produce },
                    Some(op) => match op.chain {
                        None => RegSched::Countdown {
                            remaining: op.delay_at(now).max(descent) + produce,
                        },
                        // Keep listening on the chain even in self-timed
                        // mode so suspend/resume reaches dependents'
                        // dependents.
                        Some(chain) => RegSched::OnChain {
                            chain,
                            latency: op.rel_latency.max(0) + produce,
                            head_loc: op.head_loc,
                            self_timed: op.self_timed,
                            suspended: op.suspended,
                        },
                    },
                }
            };
            self.regs[thread].set(dest, new_sched);
        }

        // Statistics.
        self.stats.iq.dispatched += 1;
        if info.num_srcs() == 2 {
            self.stats.two_src_dispatches += 1;
        }
        if dual_dep {
            self.stats.dual_dep_dispatches += 1;
        }
        if self.config.bypass && target < self.top() {
            self.stats.bypassed_dispatches += 1;
            self.stats.segments_bypassed += (self.top() - target) as u64;
        }

        let mut entry = Entry {
            tag: info.tag,
            op: info.op,
            data_ops,
            sched_ops,
            heads_chain,
            moved_at: now,
            seg: target,
            ready_cache: None,
            live: true,
            counted: false,
        };
        // The register table lags the wire pipeline: signals between the
        // landing segment and the top have been seen by neither the table
        // nor (ever again) this segment. Deliver them now so a bypassed
        // dispatch starts from the state a resident entry would hold
        // (top-down = assert-time order, as the single-list kernel
        // applied them).
        let epoch = self.countdown_epoch;
        for s in (target..self.top()).rev() {
            if !self.naive && !Self::filter_hits(&self.sig_filter[s], &entry.sched_ops) {
                continue;
            }
            for sig in &self.sig_bufs[s] {
                entry.apply_signal_at(sig.chain, sig.kind, epoch);
            }
        }
        entry.ready_cache = entry.compute_ready_cache();
        match entry.ready_cache {
            Some(c) if c <= self.last_now => entry.counted = true,
            _ => {}
        }
        let future = match entry.ready_cache {
            Some(c) if c > self.last_now => Some(c),
            _ => None,
        };
        let tag = info.tag;
        let slot = self.alloc_slot(entry);
        if let Some(c) = future {
            self.ready_wheel.schedule(c, (tag, slot));
        }
        // Subscribe to producer announcements; two operands waiting on
        // the same producer share one node (announce sets both anyway).
        for (k, d) in data_ops.iter().enumerate() {
            let Some(d) = d else { continue };
            if k == 1 && data_ops[0].is_some_and(|d0| d0.producer == d.producer) {
                continue;
            }
            let mut head = self.waiter_heads.get(d.producer.0).unwrap_or(ListHead::EMPTY);
            slab_list::push_back(&mut head, &mut self.wait_links, 2 * slot + k as u32);
            self.waiter_heads.insert(d.producer.0, head);
        }
        self.attach(slot);
        Ok(())
    }

    // chainiq-analyze: hot
    fn select_issue(&mut self, now: Cycle, fus: &mut FuPool) -> Vec<IssuedInst> {
        self.drain_ready(now);
        let mut ready = std::mem::take(&mut self.scratch_pairs);
        ready.clear();
        // Tag-order walk of the issue buffer's age list, preserving the
        // scan kernel's oldest-first selection (the buffer is one
        // segment — the walk is the fast path and the reference at once).
        let mut cur = self.seg_list[0].head;
        while cur != NIL {
            let e = &self.slots[cur as usize];
            if e.data_ready(now) && e.moved_at < now {
                ready.push((e.tag, cur));
            }
            cur = self.seg_link[cur as usize].next;
        }
        let mut issued = Vec::with_capacity(ready.len());
        for &(tag, slot) in &ready {
            let op = self.slots[slot as usize].op;
            if fus.slots_left() == 0 {
                break;
            }
            if !fus.try_issue(now, op) {
                continue; // unit busy; try other op kinds
            }
            if let Some(chain) = self.remove_fully(slot) {
                self.assert_signal(chain, SignalKind::Pulse, 0);
            }
            issued.push(IssuedInst { tag, op });
        }
        self.scratch_pairs = ready;
        self.stats.iq.issued += issued.len() as u64;
        if !issued.is_empty() {
            self.issued_this_cycle = true;
        }
        issued
    }

    // chainiq-analyze: hot
    fn announce_ready(&mut self, producer: InstTag, ready_at: Cycle) {
        let mut targets = std::mem::take(&mut self.scratch_pairs);
        targets.clear();
        if self.naive {
            for k in 0..self.config.num_segments {
                let mut cur = self.seg_list[k].head;
                while cur != NIL {
                    targets.push((self.slots[cur as usize].tag, cur));
                    cur = self.seg_link[cur as usize].next;
                }
            }
        } else if let Some(head) = self.waiter_heads.get(producer.0) {
            // One node per (producer, entry): dispatch deduplicates
            // same-producer operand pairs, so no slot repeats here.
            let mut cur = head.head;
            while cur != NIL {
                let slot = cur >> 1;
                targets.push((self.slots[slot as usize].tag, slot));
                cur = self.wait_links[cur as usize].next;
            }
        }
        for &(_, slot) in &targets {
            let e = &mut self.slots[slot as usize];
            let mut touched = false;
            for d in e.data_ops.iter_mut().flatten() {
                if d.producer == producer {
                    d.ready_at = Some(ready_at);
                    touched = true;
                }
            }
            if touched {
                self.refresh_ready(slot);
            }
        }
        self.scratch_pairs = targets;
    }

    fn on_load_miss(&mut self, tag: InstTag) {
        if let Some(chain) = self.chains.chain_of_head(tag) {
            self.assert_signal(chain, SignalKind::Suspend, 0);
        }
    }

    fn on_load_fill(&mut self, tag: InstTag) {
        if let Some(chain) = self.chains.chain_of_head(tag) {
            self.assert_signal(chain, SignalKind::Resume, 0);
        }
    }

    fn on_writeback(&mut self, tag: InstTag) {
        self.chains.release_by_head(tag);
    }

    fn flush(&mut self) {
        self.slots.clear();
        self.slot_tags.clear();
        self.free_slots.clear();
        // Drop the slab-parallel link storage with the slab itself.
        for h in &mut self.seg_list {
            *h = ListHead::EMPTY;
        }
        self.seg_link.clear();
        self.seg_len.fill(0);
        for heads in &mut self.fol_heads {
            heads.clear();
        }
        self.fol_live.clear();
        self.fol_links.clear();
        self.fol_chain.clear();
        self.waiter_heads.clear();
        self.wait_links.clear();
        self.ready_count.fill(0);
        self.ready_wheel.reset(self.last_now);
        self.crossings.reset(self.last_now);
        self.recheck_at.clear();
        for e in &mut self.elig {
            e.clear_all();
        }
        for b in &mut self.sig_bufs {
            b.clear();
        }
        self.sig_filter.fill([0u64; 4]);
        self.chains.release_all();
        for t in &mut self.regs {
            t.reset();
        }
    }

    fn stats(&self) -> IqStats {
        self.stats.iq
    }
}

impl SegmentedIq {
    /// Snapshot of the full segmented statistics, including chain usage.
    #[must_use]
    pub fn full_stats(&self) -> SegmentedStats {
        let mut s = self.stats.clone();
        s.chains = *self.chains.stats();
        s
    }
}

impl chainiq_ckpt::Pack for SegmentedIqConfig {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.num_segments.pack(w);
        self.segment_size.pack(w);
        self.promote_width.pack(w);
        self.max_chains.pack(w);
        self.pushdown.pack(w);
        self.bypass.pack(w);
        self.two_chain_tracking.pack(w);
        self.deadlock_recovery.pack(w);
        self.predicted_load_latency.pack(w);
        self.countdown_includes_descent.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(SegmentedIqConfig {
            num_segments: Pack::unpack(r)?,
            segment_size: Pack::unpack(r)?,
            promote_width: Pack::unpack(r)?,
            max_chains: Pack::unpack(r)?,
            pushdown: Pack::unpack(r)?,
            bypass: Pack::unpack(r)?,
            two_chain_tracking: Pack::unpack(r)?,
            deadlock_recovery: Pack::unpack(r)?,
            predicted_load_latency: Pack::unpack(r)?,
            countdown_includes_descent: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for SchedOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.chain.pack(w);
        self.rel_latency.pack(w);
        self.head_loc.pack(w);
        self.self_timed.pack(w);
        self.suspended.pack(w);
        self.since.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(SchedOperand {
            chain: Pack::unpack(r)?,
            rel_latency: Pack::unpack(r)?,
            head_loc: Pack::unpack(r)?,
            self_timed: Pack::unpack(r)?,
            suspended: Pack::unpack(r)?,
            since: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for DataOperand {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.producer.pack(w);
        self.ready_at.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(DataOperand { producer: Pack::unpack(r)?, ready_at: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for Entry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.op.pack(w);
        self.data_ops.pack(w);
        self.sched_ops.pack(w);
        self.heads_chain.pack(w);
        self.moved_at.pack(w);
        self.seg.pack(w);
        self.ready_cache.pack(w);
        self.live.pack(w);
        self.counted.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Entry {
            tag: Pack::unpack(r)?,
            op: Pack::unpack(r)?,
            data_ops: Pack::unpack(r)?,
            sched_ops: Pack::unpack(r)?,
            heads_chain: Pack::unpack(r)?,
            moved_at: Pack::unpack(r)?,
            seg: Pack::unpack(r)?,
            ready_cache: Pack::unpack(r)?,
            live: Pack::unpack(r)?,
            counted: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Snapshot for SegmentedIq {
    const COMPONENT: &'static str = "core.segmented";
    const VERSION: u16 = 2;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        // V2 serializes *canonical* state only: the slab (whose entries
        // carry segment, operands and readiness), the free-list order,
        // the clocks and the wire/chain/register machinery. Every index —
        // age lists, follower and waiter lists, eligibility masks, both
        // wheels, ready counts — is a pure function of that state and is
        // rebuilt on restore. Scratch buffers are transient and the
        // `naive` kernel-mode flag is a property of the running queue,
        // not of the simulated state; neither is serialized.
        self.config.pack(w);
        self.slots.pack(w);
        self.free_slots.pack(w);
        self.last_now.pack(w);
        self.countdown_epoch.pack(w);
        self.free_prev.pack(w);
        // The climb keeps each buffered signal's segment implicit (== its
        // bucket index); serialization materializes it, emitting exactly
        // the V2 `Vec<Vec<WireSignal>>` byte layout.
        self.sig_bufs.len().pack(w);
        for (s, buf) in self.sig_bufs.iter().enumerate() {
            buf.len().pack(w);
            for b in buf {
                b.chain.pack(w);
                b.kind.pack(w);
                s.pack(w);
            }
        }
        self.chains.pack(w);
        self.regs.pack(w);
        self.stats.pack(w);
        self.issued_this_cycle.pack(w);
        self.progress_last_cycle.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let corrupt =
            |context: &str| chainiq_ckpt::CkptError::Corrupt { context: context.to_string() };
        let config: SegmentedIqConfig = Pack::unpack(r)?;
        if config != self.config {
            return Err(corrupt("segmented IQ config differs from the running queue"));
        }
        let slots: Vec<Entry> = Pack::unpack(r)?;
        let free_slots: Vec<u32> = Pack::unpack(r)?;
        let last_now: Cycle = Pack::unpack(r)?;
        let countdown_epoch: Cycle = Pack::unpack(r)?;
        let free_prev: Vec<usize> = Pack::unpack(r)?;
        let sig_bufs: Vec<Vec<WireSignal>> = Pack::unpack(r)?;
        let chains: ChainTable = Pack::unpack(r)?;
        let regs: Vec<RegInfoTable> = Pack::unpack(r)?;
        let stats: SegmentedStats = Pack::unpack(r)?;
        let issued_this_cycle: bool = Pack::unpack(r)?;
        let progress_last_cycle: bool = Pack::unpack(r)?;

        let n = config.num_segments;
        if free_prev.len() != n || sig_bufs.len() != n {
            return Err(corrupt("segmented IQ per-segment vector lengths"));
        }
        if regs.is_empty() {
            return Err(corrupt("segmented IQ without a register table"));
        }
        if countdown_epoch != last_now {
            // Snapshots are only taken between cycles, where the virtual
            // countdown clock has caught up with the drain clock.
            return Err(corrupt("countdown epoch disagrees with the queue clock"));
        }
        let mut seg_len = vec![0usize; n];
        for e in slots.iter().filter(|e| e.live) {
            if e.seg >= n {
                return Err(corrupt("slab entry names an out-of-range segment"));
            }
            seg_len[e.seg] += 1;
            if e.counted != e.ready_cache.is_some_and(|c| c <= last_now) {
                return Err(corrupt("ready count flag disagrees with the readiness cache"));
            }
        }
        if seg_len.iter().any(|&l| l > config.segment_size) {
            return Err(corrupt("overfull segment in checkpoint"));
        }
        // The free list must cover exactly the dead slots, each once (its
        // order is canonical: slot allocation pops it LIFO).
        let mut on_free = vec![false; slots.len()];
        for &s in &free_slots {
            if slots.get(s as usize).is_none_or(|e| e.live) {
                return Err(corrupt("free list points at a live slab slot"));
            }
            if std::mem::replace(&mut on_free[s as usize], true) {
                return Err(corrupt("free list repeats a slab slot"));
            }
        }
        if slots.iter().zip(&on_free).any(|(e, &f)| !e.live && !f) {
            return Err(corrupt("dead slab slot missing from the free list"));
        }

        self.slots = slots;
        self.slot_tags = self.slots.iter().map(|e| e.tag).collect();
        self.free_slots = free_slots;
        self.last_now = last_now;
        self.countdown_epoch = countdown_epoch;
        self.free_prev = free_prev;
        // Buffered signals are canonical only up to the climb invariant:
        // a signal's visible segment is the bucket holding it.
        for (s, buf) in sig_bufs.iter().enumerate() {
            if buf.iter().any(|sig| sig.segment != s) {
                return Err(corrupt("buffered wire signal outside its climb bucket"));
            }
        }
        self.sig_bufs = sig_bufs
            .into_iter()
            .map(|buf| buf.into_iter().map(|s| BufSig { chain: s.chain, kind: s.kind }).collect())
            .collect();
        self.sig_filter = vec![[0u64; 4]; n];
        for (s, buf) in self.sig_bufs.iter().enumerate() {
            for sig in buf {
                Self::filter_add(&mut self.sig_filter[s], sig.chain);
            }
        }
        self.chains = chains;
        self.regs = regs;
        self.stats = stats;
        self.issued_this_cycle = issued_this_cycle;
        self.progress_last_cycle = progress_last_cycle;

        // Rebuild every index from the slab. Age lists are tag-ordered
        // within a segment; wheel bucket insertion orders need not match
        // the continuous run's (drain handlers are order-independent).
        let nslots = self.slots.len();
        self.seg_list = vec![ListHead::EMPTY; n];
        self.seg_link = vec![Link::default(); nslots];
        self.seg_len = seg_len;
        self.fol_heads = vec![vec![ListHead::EMPTY; self.chains.wire_count()]; n];
        self.fol_live = vec![0; self.chains.wire_count()];
        self.fol_links = vec![Link::default(); 2 * nslots];
        self.fol_chain = vec![ChainRef { id: 0, gen: 0 }; 2 * nslots];
        self.waiter_heads = TagMap::new();
        self.wait_links = vec![Link::default(); 2 * nslots];
        self.ready_count = vec![0; n];
        self.recheck_at = vec![NO_RECHECK; nslots];
        self.elig = vec![BitSet::new(); n];
        for e in &mut self.elig {
            e.ensure(nslots);
        }
        self.ready_wheel.reset(last_now);
        self.crossings.reset(last_now);

        let mut order: Vec<u32> =
            (0..nslots as u32).filter(|&s| self.slots[s as usize].live).collect();
        order.sort_unstable_by_key(|&s| (self.slots[s as usize].seg, self.slots[s as usize].tag));
        for &slot in &order {
            let seg = self.slots[slot as usize].seg;
            slab_list::push_back(&mut self.seg_list[seg], &mut self.seg_link, slot);
        }
        for slot in 0..nslots as u32 {
            let e = &self.slots[slot as usize];
            if !e.live {
                continue;
            }
            let (seg, tag) = (e.seg, e.tag);
            let (sched_ops, data_ops) = (e.sched_ops, e.data_ops);
            let (counted, ready_cache) = (e.counted, e.ready_cache);
            for (k, chain) in SegmentedIq::subscriptions(&sched_ops) {
                let heads = &mut self.fol_heads[seg];
                if heads.len() <= chain.id as usize {
                    heads.resize(chain.id as usize + 1, ListHead::EMPTY);
                }
                let node = 2 * slot + k as u32;
                slab_list::push_back(&mut heads[chain.id as usize], &mut self.fol_links, node);
                self.fol_chain[node as usize] = chain;
                if self.fol_live.len() <= chain.id as usize {
                    self.fol_live.resize(chain.id as usize + 1, 0);
                }
                self.fol_live[chain.id as usize] |= 1u64 << (seg & 63);
            }
            for (k, d) in data_ops.iter().enumerate() {
                let Some(d) = d else { continue };
                if k == 1 && data_ops[0].is_some_and(|d0| d0.producer == d.producer) {
                    continue;
                }
                let mut head = self.waiter_heads.get(d.producer.0).unwrap_or(ListHead::EMPTY);
                slab_list::push_back(&mut head, &mut self.wait_links, 2 * slot + k as u32);
                self.waiter_heads.insert(d.producer.0, head);
            }
            if counted {
                self.ready_count[seg] += 1;
            }
            if let Some(c) = ready_cache {
                if c > last_now {
                    self.ready_wheel.schedule(c, (tag, slot));
                }
            }
            self.recompute_elig(slot);
        }
        self.scratch_pairs.clear();
        self.scratch_picks.clear();
        self.scratch_wake.clear();
        self.scratch_cross.clear();
        self.scratch_slots.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::SrcOperand;
    use chainiq_isa::ArchReg;

    fn cfg3x8() -> SegmentedIqConfig {
        SegmentedIqConfig::small_for_tests()
    }

    fn ready_src(reg: ArchReg) -> SrcOperand {
        SrcOperand::ready(reg)
    }

    fn dep_src(reg: ArchReg, producer: InstTag) -> SrcOperand {
        SrcOperand { reg, producer: Some(producer), known_ready_at: None }
    }

    /// Drives the queue until `want` instructions have issued or `limit`
    /// cycles pass, announcing fixed-latency completions automatically.
    fn run_until_issued(iq: &mut SegmentedIq, want: usize, limit: u64) -> Vec<(InstTag, Cycle)> {
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 1..=limit {
            iq.tick(now, issued.len() == want);
            for sel in iq.select_issue(now, &mut fus) {
                iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
                issued.push((sel.tag, now));
            }
            fus.next_cycle();
            if issued.len() >= want {
                break;
            }
        }
        issued
    }

    #[test]
    fn capacity_and_threshold() {
        let c = SegmentedIqConfig::paper(512, Some(128));
        assert_eq!(c.num_segments, 16);
        assert_eq!(c.capacity(), 512);
        assert_eq!(c.threshold(0), 2);
        assert_eq!(c.threshold(1), 4);
        assert_eq!(c.threshold(7), 16);
    }

    #[test]
    fn empty_queue_dispatch_bypasses_to_issue_buffer() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.segment_of(InstTag(0)), Some(0), "bypass all empty segments");
        assert_eq!(iq.full_stats().bypassed_dispatches, 1);
        assert_eq!(iq.full_stats().segments_bypassed, 2);
    }

    #[test]
    fn bypass_disabled_dispatches_to_top() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.segment_of(InstTag(0)), Some(2));
    }

    #[test]
    fn ready_chain_promotes_and_issues_in_order() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        let issued = run_until_issued(&mut iq, 1, 20);
        assert_eq!(issued.len(), 1);
        // Two promotions (seg2 -> seg1 -> seg0) then issue: 3 cycles.
        assert_eq!(issued[0].1, 3);
    }

    #[test]
    fn dependent_issues_after_producer() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntMul, ArchReg::int(1), &[]))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let issued = run_until_issued(&mut iq, 2, 30);
        assert_eq!(issued.len(), 2);
        let (t0, c0) = issued[0];
        let (t1, c1) = issued[1];
        assert_eq!((t0, t1), (InstTag(0), InstTag(1)));
        assert!(c1 >= c0 + 3, "IntMul takes 3 cycles; dependent at {c1} vs producer at {c0}");
    }

    #[test]
    fn back_to_back_single_cycle_chain() {
        let mut iq = SegmentedIq::new(cfg3x8());
        // A chain of dependent 1-cycle adds should issue on consecutive cycles.
        for i in 0..4u64 {
            let srcs: Vec<SrcOperand> =
                if i == 0 { vec![] } else { vec![dep_src(ArchReg::int(i as u8), InstTag(i - 1))] };
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &srcs,
                ),
            )
            .unwrap();
        }
        let issued = run_until_issued(&mut iq, 4, 30);
        assert_eq!(issued.len(), 4);
        for w in issued.windows(2) {
            assert_eq!(w[1].1, w[0].1 + 1, "dependent adds must issue back-to-back");
        }
    }

    #[test]
    fn figure1_delay_values() {
        // The paper's Figure 1: delays computed at dispatch, with ADD
        // latency 1 and "MUL" latency 2 (we use FpAdd for the 2-cycle op).
        let mut iq = SegmentedIq::new(SegmentedIqConfig {
            num_segments: 3,
            segment_size: 16,
            promote_width: 8,
            max_chains: None,
            pushdown: false,
            bypass: false,
            deadlock_recovery: true,
            two_chain_tracking: true,
            predicted_load_latency: 4,
            countdown_includes_descent: false,
        });
        let r = ArchReg::int;
        let add = OpClass::IntAlu;
        let mul = OpClass::FpAdd; // 2-cycle stand-in for the example's MUL
        let t = InstTag;
        // i0: add *,* -> r1        i1: mul *,* -> r2
        iq.dispatch(0, DispatchInfo::compute(t(0), add, r(1), &[])).unwrap();
        iq.dispatch(0, DispatchInfo::compute(t(1), mul, r(2), &[])).unwrap();
        // i2: add r2,* -> r4
        iq.dispatch(0, DispatchInfo::compute(t(2), add, r(4), &[dep_src(r(2), t(1))])).unwrap();
        // i3: mul r4,* -> r6
        iq.dispatch(0, DispatchInfo::compute(t(3), mul, r(6), &[dep_src(r(4), t(2))])).unwrap();
        // i4: mul r6,* -> r8
        iq.dispatch(0, DispatchInfo::compute(t(4), mul, r(8), &[dep_src(r(6), t(3))])).unwrap();
        // i5: add r1,* -> r3
        iq.dispatch(0, DispatchInfo::compute(t(5), add, r(3), &[dep_src(r(1), t(0))])).unwrap();
        // i6: add r3,* -> r5
        iq.dispatch(0, DispatchInfo::compute(t(6), add, r(5), &[dep_src(r(3), t(5))])).unwrap();
        // i7: add r5,* -> r7
        iq.dispatch(0, DispatchInfo::compute(t(7), add, r(7), &[dep_src(r(5), t(6))])).unwrap();
        // i8: add r6,r7 -> r9
        iq.dispatch(
            0,
            DispatchInfo::compute(t(8), add, r(9), &[dep_src(r(6), t(3)), dep_src(r(7), t(7))]),
        )
        .unwrap();
        let expect = [0, 0, 2, 3, 5, 1, 2, 3, 5];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(iq.delay_of(t(i as u64)), Some(*want), "figure 1 delay value of i{i}");
        }
    }

    #[test]
    fn load_heads_a_chain_and_writeback_releases_it() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(2)), false),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 1);
        iq.on_writeback(InstTag(0));
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn predicted_hit_load_creates_no_chain() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(2)), true),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn chain_wire_exhaustion_stalls_dispatch() {
        let mut cfg = cfg3x8();
        cfg.max_chains = Some(1);
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let err = iq
            .dispatch(
                0,
                DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
            )
            .unwrap_err();
        assert_eq!(err, DispatchStall::NoChainWire);
        assert_eq!(iq.occupancy(), 1, "stalled dispatch must not enter the queue");
        assert_eq!(iq.full_stats().iq.stalls_no_chain, 1);
    }

    #[test]
    fn dual_dependence_heads_new_chain_in_base_config() {
        let mut iq = SegmentedIq::new(cfg3x8());
        // Two chain-head loads producing r1 and r2.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // A consumer of both: dual-dep, becomes a head itself.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[dep_src(ArchReg::int(1), InstTag(0)), dep_src(ArchReg::int(2), InstTag(1))],
            ),
        )
        .unwrap();
        assert_eq!(iq.live_chains(), 3);
        assert_eq!(iq.full_stats().dual_dep_dispatches, 1);
    }

    #[test]
    fn lrp_mode_follows_single_chain_without_new_head() {
        let mut cfg = cfg3x8();
        cfg.two_chain_tracking = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(1), ArchReg::int(2), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let mut consumer = DispatchInfo::compute(
            InstTag(2),
            OpClass::IntAlu,
            ArchReg::int(3),
            &[dep_src(ArchReg::int(1), InstTag(0)), dep_src(ArchReg::int(2), InstTag(1))],
        );
        consumer.lrp_pick = Some(OperandPick::Right);
        iq.dispatch(0, consumer).unwrap();
        assert_eq!(iq.live_chains(), 2, "no extra chain under LRP");
    }

    #[test]
    fn queue_full_stalls() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 1;
        cfg.segment_size = 2;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..2 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let err = iq
            .dispatch(0, DispatchInfo::compute(InstTag(9), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap_err();
        assert_eq!(err, DispatchStall::QueueFull);
        assert_eq!(iq.full_stats().iq.stalls_full, 1);
    }

    #[test]
    fn single_segment_acts_as_conventional_queue() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 1;
        cfg.segment_size = 32;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..4u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        let issued = run_until_issued(&mut iq, 4, 5);
        assert_eq!(issued.len(), 4);
        assert!(issued.iter().all(|&(_, c)| c == 1), "all ready, 8-wide: one cycle");
    }

    #[test]
    fn far_future_instructions_stay_in_upper_segments() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // A chain-head load (unissuable: its data operand never becomes
        // ready because we never announce the producer).
        iq.dispatch(
            0,
            DispatchInfo::load(
                InstTag(0),
                ArchReg::int(1),
                dep_src(ArchReg::int(9), InstTag(99)),
                false,
            ),
        )
        .unwrap();
        // A deep dependent: delay = 2*head_loc + rel_latency is large.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(1),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        for now in 1..10 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        // The head sinks to segment 0 but cannot issue; the dependent
        // must not enter segment 0 behind it.
        assert_eq!(iq.segment_of(InstTag(0)), Some(0));
        assert!(iq.segment_of(InstTag(1)).unwrap() > 0, "dependent held back by its chain");
    }

    #[test]
    fn pushdown_moves_ineligible_when_below_is_empty() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        cfg.segment_size = 8;
        cfg.promote_width = 4;
        let mut iq = SegmentedIq::new(cfg);
        // A chain-head load whose data never becomes ready: it sinks to
        // segment 0 and parks there.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        // Let the head sink toward segment 0 (it is data-ready and will
        // issue; never announce its completion so dependents stay unready
        // and the chain never self-times past its latency).
        for now in 1..4 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        // Fill the top segment with deep dependents: delay stays at or
        // above the destination threshold, so they are ineligible.
        for i in 1..=8u64 {
            iq.dispatch(
                4,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::FpMul,
                    ArchReg::fp(i as u8),
                    &[dep_src(ArchReg::int(1), InstTag(0))],
                ),
            )
            .unwrap();
        }
        assert_eq!(iq.free(2), 0, "top segment is full");
        for now in 5..12 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        assert!(iq.full_stats().pushdowns > 0, "full top segment should push down");
    }

    #[test]
    fn deadlock_recovery_restores_progress() {
        // Reproduce §4.5: a mis-assigned instruction's dependents fill a
        // lower segment below their producer.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 2;
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // Two unready instructions land in segment 0 (bypass off, but
        // delay 0 since their producers are "available" per the table —
        // we fake it by having unknown producers with no chain).
        for i in 0..2u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &[dep_src(ArchReg::int(20), InstTag(50))],
                ),
            )
            .unwrap();
            // Force them down by ticking (delay 0 -> promote).
            let mut fus = FuPool::table1();
            iq.tick(i + 1, false);
            let _ = iq.select_issue(i + 1, &mut fus);
        }
        // Now fill the top with a ready instruction that cannot promote.
        iq.dispatch(0, DispatchInfo::compute(InstTag(2), OpClass::IntAlu, ArchReg::int(9), &[]))
            .unwrap();
        iq.dispatch(0, DispatchInfo::compute(InstTag(3), OpClass::IntAlu, ArchReg::int(10), &[]))
            .unwrap();
        // Nothing is executing in the backend, so execution_idle = true.
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 10..60 {
            iq.tick(now, issued.is_empty());
            issued.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
            if !issued.is_empty() {
                break;
            }
        }
        assert!(!issued.is_empty(), "recovery must eventually let the ready instruction issue");
        assert!(iq.full_stats().deadlock_cycles > 0, "the deadlock detector should have fired");
    }

    #[test]
    fn run_deadlock_recovery_recycles_and_force_promotes() {
        // Direct exercise of §4.5's two mechanisms, without relying on
        // tick()'s detector: a full issue buffer of unready instructions
        // below their (conceptual) producers, and a full upper segment
        // holding the one ready instruction.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 2;
        cfg.bypass = false;
        cfg.pushdown = false;
        let mut iq = SegmentedIq::new(cfg);
        // Two unready instructions (producer never announced) pushed down
        // into segment 0 by normal promotion.
        for i in 0..2u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(
                    InstTag(i),
                    OpClass::IntAlu,
                    ArchReg::int(i as u8 + 1),
                    &[dep_src(ArchReg::int(20), InstTag(50))],
                ),
            )
            .unwrap();
            let mut fus = FuPool::table1();
            iq.tick(i + 1, false);
            let _ = iq.select_issue(i + 1, &mut fus);
        }
        assert_eq!(iq.free(0), 0, "setup: issue buffer full of unready instructions");
        // Segment 1 fills with a ready instruction (tag 2) and another
        // unready one, so both recovery mechanisms have work.
        iq.dispatch(0, DispatchInfo::compute(InstTag(2), OpClass::IntAlu, ArchReg::int(9), &[]))
            .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(3),
                OpClass::IntAlu,
                ArchReg::int(10),
                &[dep_src(ArchReg::int(21), InstTag(51))],
            ),
        )
        .unwrap();
        assert_eq!(iq.free(1), 0, "setup: top segment full");
        let occupancy_before = iq.occupancy();

        iq.run_deadlock_recovery(5);

        let s = iq.full_stats();
        assert_eq!(s.deadlock_cycles, 1);
        assert_eq!(s.recovery_recycles, 1, "full unready issue buffer recycles one entry");
        assert_eq!(s.recovery_promotions, 1, "the full upper segment force-promotes one");
        assert_eq!(iq.occupancy(), occupancy_before, "recovery reorders, never drops");
        assert_eq!(iq.segment_of(InstTag(1)), Some(1), "youngest seg-0 entry recycled to the top");
        assert_eq!(iq.segment_of(InstTag(2)), Some(0), "oldest upper entry forced into seg 0");
        assert_eq!(iq.segment_of(InstTag(0)), Some(0), "oldest unready entry keeps its slot");

        // Boundary: with a ready instruction now in the issue buffer, a
        // second invocation must not recycle again (the buffer is no
        // longer all-unready) and has no promotion headroom.
        iq.run_deadlock_recovery(6);
        let s = iq.full_stats();
        assert_eq!(s.deadlock_cycles, 2);
        assert_eq!(s.recovery_recycles, 1, "no recycle when a seg-0 entry is ready");
        assert_eq!(s.recovery_promotions, 1, "no promotion into a full issue buffer");

        // The recovered layout makes progress: the ready instruction
        // issues on the next cycles.
        let mut fus = FuPool::table1();
        let mut issued = Vec::new();
        for now in 7..20 {
            iq.tick(now, issued.is_empty());
            issued.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
            if !issued.is_empty() {
                break;
            }
        }
        assert_eq!(
            issued.first().map(|sel| sel.tag),
            Some(InstTag(2)),
            "the force-promoted ready instruction must be the one that issues"
        );
    }

    #[test]
    fn suspend_freezes_dependents_until_fill() {
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        // Chain-head load, ready to issue.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // Dependent of the load.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        let mut fus = FuPool::table1();
        let mut load_issued_at = None;
        for now in 1..8 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                load_issued_at = Some(now);
                // Simulate a miss discovered at EA+3: suspend, do not
                // announce readiness yet.
                iq.on_load_miss(InstTag(0));
            }
            fus.next_cycle();
            if load_issued_at.is_some() {
                break;
            }
        }
        let t0 = load_issued_at.expect("load should issue");
        // Let many cycles pass; the dependent must be frozen (suspended).
        for now in t0 + 1..t0 + 20 {
            iq.tick(now, false);
            assert!(iq.select_issue(now, &mut fus).is_empty());
            fus.next_cycle();
        }
        let frozen_delay = iq.delay_of(InstTag(1)).unwrap();
        assert!(frozen_delay > 0, "suspended dependent must not count down to 0");
        // Fill arrives: resume + announce.
        iq.on_load_fill(InstTag(0));
        iq.announce_ready(InstTag(0), t0 + 25);
        let mut issued_after = Vec::new();
        for now in t0 + 20..t0 + 40 {
            iq.tick(now, false);
            issued_after.extend(iq.select_issue(now, &mut fus));
            fus.next_cycle();
        }
        assert_eq!(issued_after.len(), 1);
        assert_eq!(issued_after[0].tag, InstTag(1));
    }

    #[test]
    fn bypassed_dispatch_receives_inflight_signals() {
        // A chain head issues from segment 0 while the queue above is
        // partially occupied; a member dispatched afterwards into a
        // middle segment (bypass) must not wait for a pulse that already
        // passed its landing segment.
        let mut cfg = cfg3x8();
        cfg.num_segments = 4;
        cfg.countdown_includes_descent = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Head load (ready) and an occupant that keeps segment 2 non-empty.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(1),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        // Let the head sink and issue; its pulse starts climbing.
        let mut head_issued_at = None;
        for now in 1..8 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                iq.announce_ready(sel.tag, now + 4);
                head_issued_at = Some(now);
            }
            fus.next_cycle();
            if head_issued_at.is_some() {
                break;
            }
        }
        let t0 = head_issued_at.expect("head must issue");
        // Dispatch a late member the very next cycle: the issue pulse is
        // between segments. Its operand state comes from the (laggy)
        // table plus the in-flight signals at or above its landing
        // segment — its delay must eventually drain to 0, not freeze.
        iq.dispatch(
            t0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        for now in t0 + 1..t0 + 20 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        assert!(
            iq.delay_of(InstTag(2)).map(|d| d == 0).unwrap_or(true),
            "late member's delay must drain, got {:?}",
            iq.delay_of(InstTag(2))
        );
    }

    #[test]
    fn empty_segments_are_counted_for_gating() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.tick(1, true);
        let s = iq.full_stats();
        assert_eq!(s.num_segments, 3);
        assert_eq!(s.empty_segment_cycles, 3, "all three segments empty");
        assert!((s.gateable_segment_frac() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn promotion_bandwidth_is_limited_per_boundary() {
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 16;
        cfg.promote_width = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        for i in 0..10u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        iq.tick(1, false);
        assert_eq!(iq.segment_len(0), 4, "at most promote_width move per cycle");
        assert_eq!(iq.segment_len(1), 6);
        iq.tick(2, false);
        assert_eq!(iq.segment_len(0), 8);
    }

    #[test]
    fn promotion_respects_previous_cycle_free_count() {
        // §3.1: a segment promotes based on the destination's free slots
        // as of the previous cycle. Fill segment 0 completely, then free
        // it; promotion into it can start only one cycle later.
        let mut cfg = cfg3x8();
        cfg.num_segments = 2;
        cfg.segment_size = 4;
        cfg.promote_width = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Four ready instructions sink into segment 0 and stay (we never
        // let them issue by exhausting the FU pool with a tiny pool).
        for i in 0..4u64 {
            iq.dispatch(
                0,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        iq.tick(1, false); // all four promote into segment 0
        assert_eq!(iq.segment_len(0), 4);
        // Four more wait in segment 1.
        for i in 4..8u64 {
            iq.dispatch(
                1,
                DispatchInfo::compute(InstTag(i), OpClass::IntAlu, ArchReg::int(1), &[]),
            )
            .unwrap();
        }
        // Cycle 2: segment 0 drains by issue, but its free count as of
        // the previous cycle was zero, so nothing promotes this cycle.
        iq.tick(2, false);
        let issued = iq.select_issue(2, &mut fus);
        assert_eq!(issued.len(), 4);
        assert_eq!(iq.segment_len(0), 0);
        assert_eq!(iq.segment_len(1), 4, "free_prev was 0: no promotion yet");
        // Cycle 3: last cycle's free count now permits promotion.
        iq.tick(3, false);
        assert_eq!(iq.segment_len(0), 4);
    }

    #[test]
    fn suspend_reaches_upper_segments_with_wire_latency() {
        // A suspend asserted at segment 0 must take one cycle per segment
        // to become visible above (§3.3 pipelining).
        let mut cfg = cfg3x8();
        cfg.num_segments = 4;
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        let mut fus = FuPool::table1();
        // Chain-head load and one dependent.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::FpMul,
                ArchReg::fp(0),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        // Run until the head issues; immediately report a miss.
        let mut issued_at = None;
        for now in 1..10 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                assert_eq!(sel.tag, InstTag(0));
                iq.on_load_miss(InstTag(0));
                issued_at = Some(now);
            }
            fus.next_cycle();
            if issued_at.is_some() {
                break;
            }
        }
        let t0 = issued_at.expect("head issues");
        // The dependent sits above segment 0; after enough cycles for the
        // suspend to climb, its delay freezes above zero.
        for now in t0 + 1..t0 + 12 {
            iq.tick(now, false);
            let _ = iq.select_issue(now, &mut fus);
            fus.next_cycle();
        }
        let frozen = iq.delay_of(InstTag(1)).expect("still queued");
        assert!(frozen > 0, "suspended dependent frozen at {frozen}");
        // Resume releases it.
        iq.on_load_fill(InstTag(0));
        iq.announce_ready(InstTag(0), t0 + 14);
        let mut done = false;
        for now in t0 + 12..t0 + 40 {
            iq.tick(now, false);
            done |= !iq.select_issue(now, &mut fus).is_empty();
            fus.next_cycle();
        }
        assert!(done, "dependent must issue after the fill");
    }

    #[test]
    fn two_src_statistics_are_counted() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(0),
                OpClass::IntAlu,
                ArchReg::int(3),
                &[ready_src(ArchReg::int(1)), ready_src(ArchReg::int(2))],
            ),
        )
        .unwrap();
        assert_eq!(iq.full_stats().two_src_dispatches, 1);
        assert_eq!(iq.full_stats().dual_dep_dispatches, 0, "both operands available");
    }

    #[test]
    fn threads_have_independent_register_tables() {
        // Thread 1's write to r1 must not disturb thread 0's chain
        // tracking of its own r1.
        let mut iq = SegmentedIq::new(cfg3x8());
        // Thread 0: chain-head load producing r1.
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        // Thread 1: plain ALU writing its own r1.
        let mut alien = DispatchInfo::compute(InstTag(1), OpClass::IntAlu, ArchReg::int(1), &[]);
        alien.thread = 1;
        iq.dispatch(0, alien).unwrap();
        // Thread 0's dependent of r1 must still join the load's chain
        // (delay > 0), not see thread 1's countdown.
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(2),
                OpClass::IntAlu,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        assert!(
            iq.delay_of(InstTag(2)).unwrap() >= 4,
            "thread 0's dependent tracks the load chain: {:?}",
            iq.delay_of(InstTag(2))
        );
    }

    #[test]
    fn flush_empties_everything() {
        let mut iq = SegmentedIq::new(cfg3x8());
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.flush();
        assert!(iq.is_empty());
        assert_eq!(iq.live_chains(), 0);
    }

    #[test]
    fn tick_stats_counters_pinned() {
        // Pinned against the original scan-based stats path: the
        // counters sampled at the top of `tick` must not move when they
        // are re-sourced from the maintained ready/occupancy sets.
        let mut cfg = cfg3x8();
        cfg.bypass = false;
        let mut iq = SegmentedIq::new(cfg);
        iq.dispatch(
            0,
            DispatchInfo::load(InstTag(0), ArchReg::int(1), ready_src(ArchReg::int(9)), false),
        )
        .unwrap();
        iq.dispatch(
            0,
            DispatchInfo::compute(
                InstTag(1),
                OpClass::IntMul,
                ArchReg::int(2),
                &[dep_src(ArchReg::int(1), InstTag(0))],
            ),
        )
        .unwrap();
        iq.dispatch(0, DispatchInfo::compute(InstTag(2), OpClass::IntAlu, ArchReg::int(3), &[]))
            .unwrap();
        let issued = run_until_issued(&mut iq, 3, 40);
        assert_eq!(issued.len(), 3);
        let s = iq.full_stats();
        assert_eq!(
            (
                s.ready_in_seg0_accum,
                s.ready_total_accum,
                s.seg0_occupancy_accum,
                s.iq.occupancy_accum,
                s.empty_segment_cycles,
                s.wire_signal_hops,
                s.promotions,
            ),
            (3, 11, 3, 14, 14, 6, 6),
            "stats sampled by tick must match the scan-based implementation"
        );
    }

    #[test]
    fn occupancy_and_capacity() {
        let mut iq = SegmentedIq::new(cfg3x8());
        assert_eq!(iq.capacity(), 24);
        assert!(iq.is_empty());
        iq.dispatch(0, DispatchInfo::compute(InstTag(0), OpClass::IntAlu, ArchReg::int(1), &[]))
            .unwrap();
        assert_eq!(iq.occupancy(), 1);
    }
}

/// Differential tests: the indexed kernel against the naive full-scan
/// reference. Both modes share every write path (the indexes are always
/// maintained); these tests drive both over random programs, cache-miss
/// traffic and mid-run flushes, and demand cycle-identical issue
/// schedules and statistics.
#[cfg(test)]
mod differential {
    use super::*;
    use crate::tag::SrcOperand;
    use chainiq_devtest::{prop_assert_eq, prop_check, Gen};
    use chainiq_isa::ArchReg;

    #[derive(Debug, Clone)]
    struct RandInst {
        op_pick: u8,
        dest: u8,
        src1: Option<u8>,
        src2: Option<u8>,
        predicted_hit: bool,
    }

    fn rand_inst(g: &mut Gen) -> RandInst {
        RandInst {
            op_pick: g.u8(0..6),
            dest: g.u8(0..24),
            src1: g.option(|g| g.u8(0..24)),
            src2: g.option(|g| g.u8(0..24)),
            predicted_hit: g.bool(),
        }
    }

    fn op_of(pick: u8) -> OpClass {
        match pick {
            0 | 1 => OpClass::IntAlu,
            2 => OpClass::IntMul,
            3 => OpClass::FpAdd,
            4 => OpClass::FpMul,
            _ => OpClass::Load,
        }
    }

    fn rand_cfg(g: &mut Gen) -> SegmentedIqConfig {
        SegmentedIqConfig {
            num_segments: g.usize(1..6),
            segment_size: [4, 8, 16][g.usize(0..3)],
            promote_width: g.usize(1..5),
            max_chains: g.option(|g| g.usize(2..48)),
            pushdown: g.bool(),
            bypass: g.bool(),
            two_chain_tracking: g.bool(),
            deadlock_recovery: g.bool(),
            predicted_load_latency: 4,
            countdown_includes_descent: g.bool(),
        }
    }

    /// Drives one queue through a fully deterministic script: random
    /// dependence graph, every third load misses (fill + writeback 12
    /// cycles later), optional mid-run flush. Returns the issue schedule
    /// `(cycle, tag)` and the final statistics.
    fn drive(
        iq: &mut SegmentedIq,
        program: &[RandInst],
        limit: u64,
        flush_at: Option<u64>,
        ckpt_at: Option<u64>,
    ) -> (Vec<(u64, InstTag)>, SegmentedStats) {
        let mut fus = FuPool::table1();
        let mut last_writer: [Option<InstTag>; 32] = [None; 32];
        let mut completed: Vec<bool> = vec![false; program.len()];
        let mut dispatched: Vec<bool> = vec![false; program.len()];
        let mut fills: Vec<(u64, InstTag)> = Vec::new();
        let mut next = 0usize;
        let mut schedule = Vec::new();

        for now in 1..=limit {
            // Mid-run snapshot: serialize the queue and carry on in a
            // freshly constructed replacement restored from the bytes.
            // Everything observable afterwards must be unchanged.
            if ckpt_at == Some(now) {
                let mut w = chainiq_ckpt::Writer::new();
                chainiq_ckpt::save_section(&mut w, iq);
                let bytes = w.into_bytes();
                let mut fresh = SegmentedIq::new(iq.config);
                let mut r = chainiq_ckpt::Reader::new(&bytes);
                chainiq_ckpt::restore_section(&mut r, &mut fresh)
                    .expect("mid-run snapshot must restore");
                *iq = fresh;
            }
            let mut k = 0;
            while k < fills.len() {
                if fills[k].0 == now {
                    let (_, tag) = fills.swap_remove(k);
                    iq.on_load_fill(tag);
                    iq.announce_ready(tag, now);
                    iq.on_writeback(tag);
                    completed[tag.0 as usize] = true;
                } else {
                    k += 1;
                }
            }
            iq.tick(now, schedule.len() == program.len());
            for sel in iq.select_issue(now, &mut fus) {
                if sel.op == OpClass::Load && sel.tag.0 % 3 == 0 {
                    iq.on_load_miss(sel.tag);
                    iq.announce_ready(sel.tag, now + 12);
                    fills.push((now + 12, sel.tag));
                } else {
                    iq.announce_ready(sel.tag, now + u64::from(sel.op.exec_latency()));
                    iq.on_writeback(sel.tag);
                    completed[sel.tag.0 as usize] = true;
                }
                schedule.push((now, sel.tag));
            }
            fus.next_cycle();
            for _ in 0..4 {
                if next >= program.len() {
                    break;
                }
                let r = &program[next];
                let tag = InstTag(next as u64);
                let src = |s: Option<u8>| {
                    s.map(|reg| SrcOperand {
                        reg: ArchReg::int(reg),
                        producer: last_writer[reg as usize].filter(|p| !completed[p.0 as usize]),
                        known_ready_at: if last_writer[reg as usize]
                            .map(|p| completed[p.0 as usize])
                            .unwrap_or(true)
                        {
                            Some(0)
                        } else {
                            None
                        },
                    })
                };
                let info = DispatchInfo {
                    tag,
                    op: op_of(r.op_pick),
                    dest: Some(ArchReg::int(r.dest)),
                    srcs: [src(r.src1), src(r.src2)],
                    predicted_hit: r.predicted_hit,
                    lrp_pick: None,
                    thread: 0,
                };
                match iq.dispatch(now, info) {
                    Ok(()) => {
                        last_writer[r.dest as usize] = Some(tag);
                        dispatched[next] = true;
                        next += 1;
                    }
                    Err(DispatchStall::QueueFull | DispatchStall::NoChainWire) => break,
                }
            }
            if flush_at == Some(now) {
                iq.flush();
                fills.clear();
                // Model a squash: values of discarded in-flight producers
                // are treated as ready for everything dispatched later.
                for i in 0..program.len() {
                    if dispatched[i] {
                        completed[i] = true;
                    }
                }
            }
        }
        (schedule, iq.full_stats())
    }

    prop_check! {
        /// The indexed read paths (follower lists, ready sets, active
        /// countdown sets) must reproduce the naive full-scan kernel
        /// cycle for cycle: identical issue schedules, identical final
        /// statistics, for any program, geometry and feature mix.
        fn indexed_kernel_matches_naive_reference(g, cases = 40) {
            let program = g.vec(1..100, rand_inst);
            let cfg = rand_cfg(g);
            let limit = 1500;
            let flush_at = if g.bool() { Some(limit / 2) } else { None };
            let mut fast = SegmentedIq::new(cfg);
            let mut naive = SegmentedIq::new(cfg);
            naive.set_naive_kernel(true);
            let (sched_fast, stats_fast) = drive(&mut fast, &program, limit, flush_at, None);
            let (sched_naive, stats_naive) = drive(&mut naive, &program, limit, flush_at, None);
            prop_assert_eq!(sched_fast, sched_naive, "issue schedules diverge");
            prop_assert_eq!(
                format!("{stats_fast:?}"),
                format!("{stats_naive:?}"),
                "final statistics diverge"
            );
            prop_assert_eq!(fast.occupancy(), naive.occupancy());
        }

        /// Snapshot-at-N then restore into a freshly constructed queue
        /// must be observationally identical to running straight through:
        /// same issue schedule, same final statistics, same occupancy.
        fn queue_restore_equals_continuous(g, cases = 30) {
            let program = g.vec(1..100, rand_inst);
            let cfg = rand_cfg(g);
            let limit = 1200;
            let ckpt_at = g.usize(1..1200) as u64;
            let mut cont = SegmentedIq::new(cfg);
            let mut snap = SegmentedIq::new(cfg);
            let (sched_c, stats_c) = drive(&mut cont, &program, limit, None, None);
            let (sched_s, stats_s) = drive(&mut snap, &program, limit, None, Some(ckpt_at));
            prop_assert_eq!(sched_c, sched_s, "issue schedules diverge after restore");
            prop_assert_eq!(
                format!("{stats_c:?}"),
                format!("{stats_s:?}"),
                "final statistics diverge after restore"
            );
            prop_assert_eq!(cont.occupancy(), snap.occupancy());
        }
    }
}
