//! Fixed-width multi-word bitsets over slab slot indices.
//!
//! The v3 kernel keeps one of these per segment, marking the slab slots
//! whose entries are *promotion-eligible* (delay value below the
//! destination threshold). A whole-segment `any()` check skips idle
//! segments outright, and the age-list walk probes single bits instead
//! of re-deriving eligibility; the masks are updated incrementally at
//! every delay mutation (see DESIGN.md §9).
// chainiq-analyze: hot-path

/// A growable `[u64; W]` bitset indexed by slab slot number.
#[derive(Debug, Clone, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    pub(crate) fn new() -> Self {
        BitSet { words: Vec::new() }
    }

    /// Grows the word array to cover bit `nbits - 1` (never shrinks).
    pub(crate) fn ensure(&mut self, nbits: usize) {
        let need = nbits.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Sets bit `i`; the caller must have `ensure`d capacity.
    // chainiq-analyze: hot
    #[inline]
    pub(crate) fn set(&mut self, i: u32) {
        self.words[(i >> 6) as usize] |= 1u64 << (i & 63);
    }

    /// Clears bit `i` (out-of-range indices are untouched by
    /// construction: a bit can only have been set within capacity).
    // chainiq-analyze: hot
    #[inline]
    pub(crate) fn clear(&mut self, i: u32) {
        if let Some(w) = self.words.get_mut((i >> 6) as usize) {
            *w &= !(1u64 << (i & 63));
        }
    }

    #[inline]
    pub(crate) fn get(&self, i: u32) -> bool {
        self.words.get((i >> 6) as usize).is_some_and(|w| w & (1u64 << (i & 63)) != 0)
    }

    pub(crate) fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Whether any bit is set.
    // chainiq-analyze: hot
    #[inline]
    pub(crate) fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Calls `f` for every set bit, in ascending index order (test
    /// support: the promotion path walks the segment age list and probes
    /// bits individually, so full iteration only backs the reference
    /// model).
    #[cfg(test)]
    pub(crate) fn for_each(&self, mut f: impl FnMut(u32)) {
        for (wi, &w) in self.words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let b = w.trailing_zeros();
                f((wi as u32) << 6 | b);
                w &= w - 1;
            }
        }
    }

    /// Number of set bits (test support).
    #[cfg(test)]
    pub(crate) fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_devtest::{prop_assert, prop_assert_eq, prop_check};

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitSet::new();
        b.ensure(130);
        for &i in &[0u32, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        b.clear(64);
        assert!(!b.get(64) && b.get(63) && b.get(65));
        b.clear_all();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn clear_beyond_capacity_is_noop() {
        let mut b = BitSet::new();
        b.ensure(10);
        b.clear(1000);
        assert_eq!(b.count(), 0);
    }

    prop_check! {
        /// The bitset agrees with a reference `Vec<bool>` under random
        /// set/clear traffic, across word boundaries — including widths
        /// that are not multiples of 64 and the 512-entry window.
        fn matches_reference_model(g, cases = 64) {
            const WIDTHS: [usize; 9] = [1, 7, 63, 64, 65, 100, 511, 512, 513];
            let width = WIDTHS[g.pick(WIDTHS.len())];
            let mut b = BitSet::new();
            b.ensure(width);
            let mut model = vec![false; width];
            for _ in 0..400 {
                let i = g.usize(0..width) as u32;
                if g.bool() {
                    b.set(i);
                    model[i as usize] = true;
                } else {
                    b.clear(i);
                    model[i as usize] = false;
                }
            }
            let mut seen = Vec::new();
            b.for_each(|i| seen.push(i as usize));
            let want: Vec<usize> =
                model.iter().enumerate().filter(|(_, &v)| v).map(|(i, _)| i).collect();
            prop_assert_eq!(seen, want, "iteration must be exactly the set bits, ascending");
            for (i, &v) in model.iter().enumerate() {
                prop_assert!(b.get(i as u32) == v, "bit {i} disagrees");
            }
        }
    }
}
