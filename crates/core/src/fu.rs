//! The function-unit pool of Table 1.

use chainiq_isa::{Cycle, FuKind, OpClass};

/// Table 1's execution resources: a configurable number of units of each
/// [`FuKind`]. Pipelined ops occupy a unit for one cycle (the issue
/// slot); unpipelined ops (divide, square root) occupy it for their full
/// latency.
///
/// The pool also enforces the per-cycle issue width: `try_issue` fails
/// once `issue_width` instructions have issued this cycle, regardless of
/// unit availability. Call [`FuPool::next_cycle`] at every cycle
/// boundary.
///
/// # Examples
///
/// ```
/// use chainiq_core::FuPool;
/// use chainiq_isa::OpClass;
///
/// let mut fus = FuPool::table1();
/// // Eight integer ALUs, but the 8-wide issue limit binds first.
/// for _ in 0..8 {
///     assert!(fus.try_issue(0, OpClass::IntAlu));
/// }
/// assert!(!fus.try_issue(0, OpClass::IntAlu));
/// fus.next_cycle();
/// assert!(fus.try_issue(1, OpClass::IntAlu));
/// ```
#[derive(Debug, Clone)]
pub struct FuPool {
    /// `busy_until[kind][unit]`: the unit is free when `now >= busy_until`.
    busy_until: [Vec<Cycle>; 4],
    issue_width: usize,
    issued_this_cycle: usize,
}

impl FuPool {
    /// Creates a pool with `units_per_kind` of each kind and the given
    /// per-cycle issue width.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(units_per_kind: usize, issue_width: usize) -> Self {
        assert!(units_per_kind > 0 && issue_width > 0);
        FuPool {
            busy_until: std::array::from_fn(|_| vec![0; units_per_kind]),
            issue_width,
            issued_this_cycle: 0,
        }
    }

    /// Table 1: eight units of each kind, 8-wide issue.
    #[must_use]
    pub fn table1() -> Self {
        FuPool::new(8, 8)
    }

    /// The per-cycle issue width.
    #[must_use]
    pub fn issue_width(&self) -> usize {
        self.issue_width
    }

    /// Issue slots still available this cycle.
    #[must_use]
    pub fn slots_left(&self) -> usize {
        self.issue_width - self.issued_this_cycle
    }

    /// Attempts to claim an issue slot and a free unit for `op` at `now`.
    /// On success the unit is reserved; on failure nothing changes.
    pub fn try_issue(&mut self, now: Cycle, op: OpClass) -> bool {
        if self.issued_this_cycle >= self.issue_width {
            return false;
        }
        let kind = op.fu_kind();
        let units = &mut self.busy_until[kind.index()];
        let Some(unit) = units.iter_mut().find(|b| **b <= now) else {
            return false;
        };
        *unit = if op.is_pipelined() { now + 1 } else { now + u64::from(op.exec_latency()) };
        self.issued_this_cycle += 1;
        true
    }

    /// Checks availability without reserving.
    #[must_use]
    pub fn can_issue(&self, now: Cycle, op: OpClass) -> bool {
        self.issued_this_cycle < self.issue_width
            && self.busy_until[op.fu_kind().index()].iter().any(|b| *b <= now)
    }

    /// Resets the per-cycle issue counter. Call at each cycle boundary.
    pub fn next_cycle(&mut self) {
        self.issued_this_cycle = 0;
    }

    /// Number of units of `kind` busy at `now` (for occupancy stats).
    #[must_use]
    pub fn busy_units(&self, now: Cycle, kind: FuKind) -> usize {
        self.busy_until[kind.index()].iter().filter(|b| **b > now).count()
    }
}

impl chainiq_ckpt::Pack for FuPool {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.busy_until.pack(w);
        self.issue_width.pack(w);
        self.issued_this_cycle.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let busy_until: [Vec<Cycle>; 4] = Pack::unpack(r)?;
        let issue_width: usize = Pack::unpack(r)?;
        let issued_this_cycle: usize = Pack::unpack(r)?;
        let units = busy_until[0].len();
        if units == 0
            || busy_until.iter().any(|v| v.len() != units)
            || issue_width == 0
            || issued_this_cycle > issue_width
        {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "function-unit pool shape".to_string(),
            });
        }
        Ok(FuPool { busy_until, issue_width, issued_this_cycle })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_unit_frees_next_cycle() {
        let mut fus = FuPool::new(1, 8);
        assert!(fus.try_issue(0, OpClass::FpMul)); // 4-cycle but pipelined
        fus.next_cycle();
        assert!(fus.try_issue(1, OpClass::FpMul));
    }

    #[test]
    fn unpipelined_unit_blocks_for_full_latency() {
        let mut fus = FuPool::new(1, 8);
        assert!(fus.try_issue(0, OpClass::FpDiv)); // 12 cycles, unpipelined
        fus.next_cycle();
        assert!(!fus.try_issue(1, OpClass::FpDiv));
        assert!(!fus.can_issue(11, OpClass::FpDiv));
        assert!(fus.can_issue(12, OpClass::FpDiv));
    }

    #[test]
    fn issue_width_binds_across_kinds() {
        let mut fus = FuPool::new(8, 2);
        assert!(fus.try_issue(0, OpClass::IntAlu));
        assert!(fus.try_issue(0, OpClass::FpAdd));
        assert!(!fus.try_issue(0, OpClass::IntMul), "issue width exhausted");
        assert_eq!(fus.slots_left(), 0);
    }

    #[test]
    fn divider_does_not_block_multiplier_unit_count() {
        // IntMul and IntDiv share the int-mul unit kind.
        let mut fus = FuPool::new(1, 8);
        assert!(fus.try_issue(0, OpClass::IntDiv));
        fus.next_cycle();
        assert!(!fus.try_issue(1, OpClass::IntMul), "shared unit busy with divide");
    }

    #[test]
    fn busy_units_counts() {
        let mut fus = FuPool::table1();
        fus.try_issue(0, OpClass::FpSqrt);
        assert_eq!(fus.busy_units(5, FuKind::FpMul), 1);
        assert_eq!(fus.busy_units(24, FuKind::FpMul), 0);
        assert_eq!(fus.busy_units(5, FuKind::IntAlu), 0);
    }

    #[test]
    fn loads_use_int_alu_for_ea() {
        let mut fus = FuPool::new(1, 8);
        assert!(fus.try_issue(0, OpClass::Load));
        assert!(!fus.try_issue(0, OpClass::IntAlu), "EA calc consumed the ALU");
    }

    #[test]
    #[should_panic]
    fn zero_units_panics() {
        let _ = FuPool::new(0, 8);
    }
}
