//! A calendar-queue event wheel bucketed by expiry cycle.
//!
//! The v3 kernel schedules *future* readiness records and self-timed
//! eligibility rechecks here instead of keeping them in ordered trees: a
//! cycle with nothing expiring costs one empty-bucket probe, O(1), and
//! scheduling is a push onto the target bucket. Each record stores its
//! full absolute cycle, so entries more than one wheel revolution in the
//! future simply stay in their bucket and are skipped (at one compare per
//! revolution) until their cycle actually arrives — no overflow
//! structure, no sorting, deterministic drain order (ascending cycle,
//! insertion order within a cycle).
// chainiq-analyze: hot-path

use chainiq_isa::Cycle;

/// The event wheel. `T` is the payload revalidated by the consumer at
/// drain time (records are allowed to go stale; the wheel never needs to
/// delete eagerly).
#[derive(Debug, Clone)]
pub struct Wheel<T> {
    buckets: Vec<Vec<(Cycle, T)>>,
    /// Bucket index mask; `buckets.len()` is a power of two.
    mask: u64,
    /// The cycle the wheel was last drained to.
    last: Cycle,
    /// Live records (for occupancy asserts in tests).
    len: usize,
    /// Reusable staging buffer for the catch-up sweep path.
    scratch: Vec<(Cycle, T)>,
}

impl<T: Copy> Wheel<T> {
    /// Creates a wheel of `size` buckets (rounded up to a power of two).
    pub fn new(size: usize) -> Self {
        let size = size.next_power_of_two().max(2);
        Wheel {
            buckets: vec![Vec::new(); size],
            mask: (size - 1) as u64,
            last: 0,
            len: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules `item` to be returned by the drain covering `cycle`.
    /// `cycle` must be strictly after the last drained cycle.
    // chainiq-analyze: hot
    #[inline]
    pub fn schedule(&mut self, cycle: Cycle, item: T) {
        debug_assert!(cycle > self.last, "scheduling into the past");
        self.buckets[(cycle & self.mask) as usize].push((cycle, item));
        self.len += 1;
    }

    /// Advances to `now`, appending every record with `cycle <= now` to
    /// `out` (ascending cycle, insertion order within a cycle). Records
    /// a full revolution or more ahead stay put.
    // chainiq-analyze: hot
    pub fn drain_into(&mut self, now: Cycle, out: &mut Vec<T>) {
        if now <= self.last {
            return;
        }
        let before = out.len();
        let span = now - self.last;
        if span >= self.buckets.len() as u64 {
            // Rare catch-up path (the kernel ticks every cycle): one full
            // sweep visits every bucket, which covers every elapsed
            // cycle; a stable sort restores the ascending-cycle contract
            // (same-cycle records share a bucket, so their relative
            // insertion order survives).
            self.scratch.clear();
            for b in &mut self.buckets {
                b.retain(|&(c, item)| {
                    if c <= now {
                        self.scratch.push((c, item));
                        false
                    } else {
                        true
                    }
                });
            }
            self.scratch.sort_by_key(|&(c, _)| c);
            out.extend(self.scratch.iter().map(|&(_, item)| item));
        } else {
            for c in self.last + 1..=now {
                let b = &mut self.buckets[(c & self.mask) as usize];
                if b.is_empty() {
                    continue;
                }
                b.retain(|&(cyc, item)| {
                    if cyc <= now {
                        out.push(item);
                        false
                    } else {
                        true
                    }
                });
            }
        }
        self.len -= out.len() - before;
        self.last = now;
    }

    /// Empties the wheel and rebases the drain clock to `now` (flush /
    /// snapshot-restore rebuilds).
    pub fn reset(&mut self, now: Cycle) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.last = now;
        self.len = 0;
    }

    /// Number of undelivered records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no records are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The pending records in drain order (ascending cycle, insertion
    /// order within a cycle) — the canonical form for snapshots. Raw
    /// bucket layout is an implementation detail and is never exposed.
    #[must_use]
    pub fn entries_sorted(&self) -> Vec<(Cycle, T)> {
        let mut out: Vec<(Cycle, T)> = self.buckets.iter().flatten().copied().collect();
        // Same-cycle records share one bucket, so a stable sort keeps
        // their insertion order.
        out.sort_by_key(|&(c, _)| c);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_devtest::{prop_assert, prop_assert_eq, prop_check};

    #[test]
    fn drains_in_cycle_then_insertion_order() {
        let mut w: Wheel<u32> = Wheel::new(8);
        w.schedule(3, 30);
        w.schedule(1, 10);
        w.schedule(3, 31);
        w.schedule(2, 20);
        let mut out = Vec::new();
        w.drain_into(3, &mut out);
        assert_eq!(out, vec![10, 20, 30, 31]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn far_future_record_survives_revolutions() {
        let mut w: Wheel<u32> = Wheel::new(4);
        w.schedule(1 + 4 * 10, 99); // ten revolutions out, same bucket as cycle 1
        let mut out = Vec::new();
        for now in 1..=40 {
            w.drain_into(now, &mut out);
            assert!(out.is_empty(), "fired early at {now}");
        }
        w.drain_into(41, &mut out);
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn catch_up_gap_covers_every_bucket() {
        let mut w: Wheel<u32> = Wheel::new(4);
        w.schedule(2, 2);
        w.schedule(5, 5);
        w.schedule(100, 100);
        let mut out = Vec::new();
        w.drain_into(50, &mut out); // span >= size: sweep path
        out.sort_unstable();
        assert_eq!(out, vec![2, 5]);
        out.clear();
        w.drain_into(100, &mut out);
        assert_eq!(out, vec![100]);
    }

    prop_check! {
        /// Against a reference sorted model: any schedule pattern
        /// (including bucket wraparound and far-future expiries) drains
        /// exactly the due set, never early, never late, in
        /// ascending-cycle order.
        fn matches_sorted_model(g, cases = 64) {
            let size = 1usize << g.usize(1..7);
            let mut w: Wheel<u64> = Wheel::new(size);
            // Model: (cycle, seq) pairs still pending.
            let mut pending: Vec<(u64, u64)> = Vec::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..200 {
                if g.bool() {
                    // Schedule between 1 cycle and several revolutions out.
                    let cycle = now + g.u64(1..(4 * size as u64 + 2));
                    w.schedule(cycle, seq);
                    pending.push((cycle, seq));
                    seq += 1;
                } else {
                    now += g.u64(1..(2 * size as u64));
                    let mut out = Vec::new();
                    w.drain_into(now, &mut out);
                    let mut want: Vec<(u64, u64)> =
                        pending.iter().copied().filter(|&(c, _)| c <= now).collect();
                    // Ascending cycle; insertion (seq) order within one.
                    want.sort();
                    pending.retain(|&(c, _)| c > now);
                    prop_assert_eq!(
                        out,
                        want.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
                        "drain to {now} disagrees with model"
                    );
                }
            }
            prop_assert!(w.len() == pending.len(), "live-record count drifted");
        }
    }
}
