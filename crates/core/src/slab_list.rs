//! Slab-intrusive doubly-linked lists.
//!
//! The v3 kernel threads its per-segment age lists, per-chain follower
//! lists and per-producer waiter lists through `u32` prev/next fields
//! held in parallel arrays beside the entry slab, gem5-style (SNIPPETS.md
//! snippets 1 and 3): a node is named by its array index, so attaching,
//! detaching and promoting an entry are O(1) pointer splices with zero
//! node allocation. The link storage is owned by the caller — one
//! `Vec<Link>` can back many lists as long as each node is on at most one
//! of them at a time.
// chainiq-analyze: hot-path

/// Null link/index sentinel.
pub const NIL: u32 = u32::MAX;

/// Intrusive prev/next pair for one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Previous node id, or [`NIL`].
    pub prev: u32,
    /// Next node id, or [`NIL`].
    pub next: u32,
}

impl Default for Link {
    fn default() -> Self {
        Link { prev: NIL, next: NIL }
    }
}

/// Head/tail handle of one list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListHead {
    /// First node id, or [`NIL`].
    pub head: u32,
    /// Last node id, or [`NIL`].
    pub tail: u32,
}

impl Default for ListHead {
    fn default() -> Self {
        ListHead::EMPTY
    }
}

impl ListHead {
    /// The empty list.
    pub const EMPTY: ListHead = ListHead { head: NIL, tail: NIL };

    /// Whether the list holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head == NIL
    }
}

/// Appends `id` at the tail.
// chainiq-analyze: hot
#[inline]
pub fn push_back(h: &mut ListHead, links: &mut [Link], id: u32) {
    links[id as usize] = Link { prev: h.tail, next: NIL };
    if h.tail == NIL {
        h.head = id;
    } else {
        links[h.tail as usize].next = id;
    }
    h.tail = id;
}

/// Inserts `id` immediately after `after`; `after == NIL` inserts at the
/// front.
// chainiq-analyze: hot
#[inline]
pub fn insert_after(h: &mut ListHead, links: &mut [Link], after: u32, id: u32) {
    let next = if after == NIL { h.head } else { links[after as usize].next };
    links[id as usize] = Link { prev: after, next };
    if after == NIL {
        h.head = id;
    } else {
        links[after as usize].next = id;
    }
    if next == NIL {
        h.tail = id;
    } else {
        links[next as usize].prev = id;
    }
}

/// Unsplices `id` from the list it is on.
// chainiq-analyze: hot
#[inline]
pub fn remove(h: &mut ListHead, links: &mut [Link], id: u32) {
    let Link { prev, next } = links[id as usize];
    if prev == NIL {
        h.head = next;
    } else {
        links[prev as usize].next = next;
    }
    if next == NIL {
        h.tail = prev;
    } else {
        links[next as usize].prev = prev;
    }
    links[id as usize] = Link::default();
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_devtest::{prop_assert_eq, prop_check};

    fn collect(h: ListHead, links: &[Link]) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = h.head;
        while cur != NIL {
            out.push(cur);
            cur = links[cur as usize].next;
        }
        out
    }

    fn collect_rev(h: ListHead, links: &[Link]) -> Vec<u32> {
        let mut out = Vec::new();
        let mut cur = h.tail;
        while cur != NIL {
            out.push(cur);
            cur = links[cur as usize].prev;
        }
        out.reverse();
        out
    }

    #[test]
    fn push_insert_remove_basics() {
        let mut links = vec![Link::default(); 8];
        let mut h = ListHead::EMPTY;
        push_back(&mut h, &mut links, 3);
        push_back(&mut h, &mut links, 5);
        insert_after(&mut h, &mut links, NIL, 1); // front
        insert_after(&mut h, &mut links, 3, 4); // middle
        assert_eq!(collect(h, &links), vec![1, 3, 4, 5]);
        assert_eq!(collect_rev(h, &links), vec![1, 3, 4, 5]);
        remove(&mut h, &mut links, 1); // head
        remove(&mut h, &mut links, 5); // tail
        assert_eq!(collect(h, &links), vec![3, 4]);
        remove(&mut h, &mut links, 3);
        remove(&mut h, &mut links, 4);
        assert!(h.is_empty());
        assert_eq!(h, ListHead::EMPTY);
    }

    prop_check! {
        /// Random splice/unsplice traffic with node-slot reuse agrees
        /// with a reference `Vec<u32>` model, forwards and backwards —
        /// the recovery/slot-reuse shape the kernel leans on.
        fn matches_vec_model(g, cases = 64) {
            let slots = g.usize(1..32);
            let mut links = vec![Link::default(); slots];
            let mut h = ListHead::EMPTY;
            let mut model: Vec<u32> = Vec::new();
            for _ in 0..300 {
                let id = g.usize(0..slots) as u32;
                let on_list = model.contains(&id);
                if on_list {
                    // Unsplice; the slot is immediately reusable.
                    remove(&mut h, &mut links, id);
                    model.retain(|&x| x != id);
                } else if model.is_empty() || g.bool() {
                    push_back(&mut h, &mut links, id);
                    model.push(id);
                } else {
                    // Splice after a random resident (or at the front).
                    let pos = g.usize(0..model.len() + 1);
                    let after = if pos == 0 { NIL } else { model[pos - 1] };
                    insert_after(&mut h, &mut links, after, id);
                    model.insert(pos, id);
                }
                prop_assert_eq!(collect(h, &links), model.clone(), "forward walk");
                prop_assert_eq!(collect_rev(h, &links), model.clone(), "backward walk");
            }
        }
    }
}
