//! Property tests for the segmented instruction queue: whatever random
//! dependence graph is dispatched, the queue preserves its structural
//! invariants and eventually drains.

use chainiq_core::{
    DispatchInfo, DispatchStall, FuPool, InstTag, IssueQueue, SegmentedIq, SegmentedIqConfig,
    SrcOperand,
};
use chainiq_devtest::{prop_assert, prop_assert_eq, prop_check, Gen};
use chainiq_isa::{ArchReg, OpClass};

/// A compact description of one random instruction.
#[derive(Debug, Clone)]
struct RandInst {
    op_pick: u8,
    dest: u8,
    src1: Option<u8>,
    src2: Option<u8>,
    predicted_hit: bool,
}

fn rand_inst(g: &mut Gen) -> RandInst {
    RandInst {
        op_pick: g.u8(0..6),
        dest: g.u8(0..24),
        src1: g.option(|g| g.u8(0..24)),
        src2: g.option(|g| g.u8(0..24)),
        predicted_hit: g.bool(),
    }
}

fn op_of(pick: u8) -> OpClass {
    match pick {
        0 | 1 => OpClass::IntAlu,
        2 => OpClass::IntMul,
        3 => OpClass::FpAdd,
        4 => OpClass::FpMul,
        _ => OpClass::Load,
    }
}

/// Drives a queue with a random program: registers map to their last
/// writer (a legal dependence graph by construction). Returns the issue
/// order.
fn drive(iq: &mut SegmentedIq, program: &[RandInst], limit: u64) -> Vec<InstTag> {
    let mut fus = FuPool::table1();
    let mut last_writer: [Option<InstTag>; 32] = [None; 32];
    let mut completed: Vec<bool> = vec![false; program.len()];
    let mut next = 0usize;
    let mut issued_order = Vec::new();

    for now in 1..=limit {
        let all_done = issued_order.len() == program.len();
        iq.tick(now, all_done);
        for sel in iq.select_issue(now, &mut fus) {
            let lat = u64::from(sel.op.exec_latency());
            iq.announce_ready(sel.tag, now + lat);
            iq.on_writeback(sel.tag);
            completed[sel.tag.0 as usize] = true;
            issued_order.push(sel.tag);
        }
        fus.next_cycle();
        // Dispatch up to 4 per cycle.
        for _ in 0..4 {
            if next >= program.len() {
                break;
            }
            let r = &program[next];
            let tag = InstTag(next as u64);
            let src = |s: Option<u8>| {
                s.map(|reg| SrcOperand {
                    reg: ArchReg::int(reg),
                    producer: last_writer[reg as usize].filter(|p| !completed[p.0 as usize]),
                    known_ready_at: if last_writer[reg as usize]
                        .map(|p| completed[p.0 as usize])
                        .unwrap_or(true)
                    {
                        Some(0)
                    } else {
                        None
                    },
                })
            };
            let info = DispatchInfo {
                tag,
                op: op_of(r.op_pick),
                dest: Some(ArchReg::int(r.dest)),
                srcs: [src(r.src1), src(r.src2)],
                predicted_hit: r.predicted_hit,
                lrp_pick: None,
                thread: 0,
            };
            match iq.dispatch(now, info) {
                Ok(()) => {
                    last_writer[r.dest as usize] = Some(tag);
                    next += 1;
                }
                Err(DispatchStall::QueueFull | DispatchStall::NoChainWire) => break,
            }
        }
        // Loads complete like 4-cycle ops in this model (announced above
        // at exec latency; good enough for queue-local invariants).
        assert!(iq.occupancy() <= iq.capacity(), "occupancy within capacity");
    }
    issued_order
}

prop_check! {
    /// Every dispatched instruction issues exactly once and the queue
    /// drains — for any random dependence graph and any queue geometry.
    fn queue_always_drains(g, cases = 64) {
        let program = g.vec(1..120, rand_inst);
        let segs = g.usize(1..6);
        let chains = g.option(|g| g.usize(2..64));
        let mut iq = SegmentedIq::new(SegmentedIqConfig {
            num_segments: segs,
            segment_size: 16,
            promote_width: 4,
            max_chains: chains,
            pushdown: true,
            bypass: true,
            two_chain_tracking: true,
            deadlock_recovery: true,
            predicted_load_latency: 4,
            countdown_includes_descent: true,
        });
        let order = drive(&mut iq, &program, 4000);
        prop_assert_eq!(order.len(), program.len(), "all instructions must issue");
        prop_assert!(iq.is_empty());
        // No duplicates.
        let mut seen = vec![false; program.len()];
        for t in &order {
            prop_assert!(!seen[t.0 as usize], "{} issued twice", t);
            seen[t.0 as usize] = true;
        }
    }

    /// Dependences are respected: a consumer never issues before its
    /// producer.
    fn producers_issue_before_consumers(g, cases = 64) {
        let program = g.vec(1..100, rand_inst);
        let mut iq = SegmentedIq::new(SegmentedIqConfig::paper(64, None));
        let order = drive(&mut iq, &program, 4000);
        let pos_of = |t: InstTag| order.iter().position(|x| *x == t);
        // Recompute the dependence edges exactly as `drive` built them.
        let mut last_writer: [Option<InstTag>; 32] = [None; 32];
        for (i, r) in program.iter().enumerate() {
            for s in [r.src1, r.src2].into_iter().flatten() {
                if let Some(p) = last_writer[s as usize] {
                    let (pp, pc) = (pos_of(p), pos_of(InstTag(i as u64)));
                    if let (Some(pp), Some(pc)) = (pp, pc) {
                        prop_assert!(pp < pc, "producer {} must precede consumer #{i}", p);
                    }
                }
            }
            last_writer[r.dest as usize] = Some(InstTag(i as u64));
        }
    }

    /// The chain-wire budget is a hard invariant under any program.
    fn chain_budget_holds(g, cases = 64) {
        let program = g.vec(1..150, rand_inst);
        let budget = g.usize(1..32);
        let mut iq = SegmentedIq::new(SegmentedIqConfig::paper(64, Some(budget)));
        let _ = drive(&mut iq, &program, 4000);
        prop_assert!(iq.full_stats().chains.peak_live <= budget);
    }

    /// Delay values are never negative and never exceed a sane bound.
    fn delays_stay_bounded(g, cases = 64) {
        let program = g.vec(1..80, rand_inst);
        let mut iq = SegmentedIq::new(SegmentedIqConfig::small_for_tests());
        let mut fus = FuPool::table1();
        let mut next = 0usize;
        for now in 1..400u64 {
            iq.tick(now, false);
            for sel in iq.select_issue(now, &mut fus) {
                iq.announce_ready(sel.tag, now + 1);
                iq.on_writeback(sel.tag);
            }
            fus.next_cycle();
            if next < program.len() {
                let r = &program[next];
                let info = DispatchInfo {
                    tag: InstTag(next as u64),
                    op: op_of(r.op_pick),
                    dest: Some(ArchReg::int(r.dest)),
                    srcs: [None, None],
                    predicted_hit: r.predicted_hit,
                    lrp_pick: None,
                    thread: 0,
                };
                if iq.dispatch(now, info).is_ok() {
                    let d = iq.delay_of(InstTag(next as u64)).expect("present");
                    prop_assert!((0..10_000).contains(&d), "delay {d} out of range");
                    next += 1;
                }
            }
        }
    }
}
