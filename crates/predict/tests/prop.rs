//! Property tests for the predictors: each implementation matches a
//! simple reference model.

use chainiq_devtest::{prop_assert, prop_assert_eq, prop_check};
use chainiq_predict::{HitMissPredictor, HybridBranchPredictor, LeftRightPredictor, Operand};

prop_check! {
    /// The HMP equals the reference "clear-on-miss saturating streak"
    /// model for any outcome sequence on a single PC.
    fn hmp_matches_reference_model(g) {
        let outcomes = g.vec(1..300, |g| g.bool());
        let mut hmp = HitMissPredictor::default();
        let mut streak: u32 = 0; // reference counter, saturating at 15
        for hit in outcomes {
            prop_assert_eq!(hmp.peek(0x40), streak > 13, "streak {}", streak);
            hmp.update(0x40, hit);
            streak = if hit { (streak + 1).min(15) } else { 0 };
        }
    }

    /// HMP statistics never report accuracy or coverage outside [0, 1].
    fn hmp_stats_bounded(g) {
        let events = g.vec(1..300, |g| (g.u64(0..16), g.bool()));
        let mut hmp = HitMissPredictor::default();
        for (pc4, hit) in events {
            let pc = pc4 * 4;
            let p = hmp.predict_hit(pc);
            hmp.record_outcome(p, hit);
            hmp.update(pc, hit);
            let s = hmp.stats();
            prop_assert!((0.0..=1.0).contains(&s.hit_accuracy()));
            prop_assert!((0.0..=1.0).contains(&s.hit_coverage()));
            prop_assert!(s.predicted_hit <= s.predictions);
            prop_assert!(s.predicted_hit_was_hit <= s.predicted_hit);
        }
    }

    /// The LRP converges to a stable operand after at most 3 consistent
    /// updates, from any prior state.
    fn lrp_converges(g) {
        let noise = g.vec(0..20, |g| g.bool());
        let mut lrp = LeftRightPredictor::default();
        for later_right in noise {
            lrp.update(0x80, if later_right { Operand::Right } else { Operand::Left });
        }
        for _ in 0..3 {
            lrp.update(0x80, Operand::Right);
        }
        prop_assert_eq!(lrp.peek(0x80), Operand::Right);
    }

    /// The branch predictor's accuracy statistics are consistent and the
    /// prediction for an always-taken branch converges.
    fn branch_predictor_stats_consistent(g) {
        let outcomes = g.vec(1..300, |g| g.bool());
        let mut bp = HybridBranchPredictor::default();
        for taken in outcomes {
            bp.predict_and_train(0x1000, taken, 0x2000);
            let s = bp.stats();
            prop_assert!(s.correct <= s.lookups);
        }
        // Saturate with taken outcomes; the last prediction must be
        // correct.
        let mut last = false;
        for _ in 0..64 {
            last = bp.predict_and_train(0x1000, true, 0x2000).is_correct(true, 0x2000);
        }
        prop_assert!(last, "predictor must converge on an always-taken branch");
    }

    /// Unconditional transfers are mispredicted at most once per target
    /// change (BTB fill).
    fn unconditional_misses_only_on_cold_btb(g) {
        let targets = g.vec(1..60, |g| g.u64(1..8));
        let mut bp = HybridBranchPredictor::default();
        let mut last_target = None;
        for t in targets {
            let target = 0x1000 * t;
            let pred = bp.predict_and_train_unconditional(0x4000, target);
            if last_target == Some(target) {
                prop_assert!(pred.is_correct(true, target), "warm BTB must hit");
            }
            last_target = Some(target);
        }
    }
}
