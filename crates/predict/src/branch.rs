//! The Table 1 front-end branch predictor: an Alpha 21264-style hybrid
//! (tournament) predictor plus a branch target buffer.

use crate::counter::SaturatingCounter;

/// Configuration of the hybrid predictor; defaults reproduce Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPredictorConfig {
    /// Global history bits (and log2 of the global PHT size).
    pub global_history_bits: u32,
    /// Number of local history registers (power of two).
    pub local_histories: usize,
    /// Bits per local history register (and log2 of the local PHT size).
    pub local_history_bits: u32,
    /// BTB entries (power of two).
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_assoc: usize,
}

impl Default for BranchPredictorConfig {
    /// Table 1: global 13-bit history / 8K PHT; local 2K × 11-bit
    /// histories / 2K PHT; choice 13-bit global history / 8K PHT;
    /// BTB 4K entries, 4-way set associative.
    fn default() -> Self {
        BranchPredictorConfig {
            global_history_bits: 13,
            local_histories: 2048,
            local_history_bits: 11,
            btb_entries: 4096,
            btb_assoc: 4,
        }
    }
}

/// A direction + target prediction for one fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target from the BTB, if it had an entry for this PC.
    pub target: Option<u64>,
}

impl BranchPrediction {
    /// Whether this prediction turns out correct for a branch that
    /// resolved `(taken, target)`. A taken branch with no (or a wrong)
    /// BTB target is a misprediction even if the direction matched: the
    /// front end fetched from the wrong place.
    #[must_use]
    pub fn is_correct(&self, taken: bool, target: u64) -> bool {
        if self.taken != taken {
            return false;
        }
        !taken || self.target == Some(target)
    }
}

/// A tagged, set-associative branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    set_mask: u64,
    use_clock: u64,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    pc: u64,
    target: u64,
    last_use: u64,
    valid: bool,
}

impl Btb {
    /// Creates an empty BTB with `entries` total entries and the given
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a positive multiple of `assoc` and the
    /// set count is a power of two.
    #[must_use]
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(assoc > 0 && entries > 0 && entries.is_multiple_of(assoc), "bad BTB geometry");
        let num_sets = entries / assoc;
        assert!(num_sets.is_power_of_two(), "BTB set count must be a power of two");
        let entry = BtbEntry { pc: 0, target: 0, last_use: 0, valid: false };
        Btb {
            sets: vec![vec![entry; assoc]; num_sets],
            set_mask: (num_sets - 1) as u64,
            use_clock: 0,
        }
    }

    fn set_index(&self, pc: u64) -> usize {
        // Instructions are 4-byte aligned; drop the offset bits.
        ((pc >> 2) & self.set_mask) as usize
    }

    /// Looks up the target for `pc`, updating recency on a hit.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        let idx = self.set_index(pc);
        self.use_clock += 1;
        let clock = self.use_clock;
        self.sets[idx].iter_mut().find(|e| e.valid && e.pc == pc).map(|e| {
            e.last_use = clock;
            e.target
        })
    }

    /// Installs or updates the target for `pc`, evicting LRU on conflict.
    pub fn install(&mut self, pc: u64, target: u64) {
        let idx = self.set_index(pc);
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = &mut self.sets[idx];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.pc == pc) {
            e.target = target;
            e.last_use = clock;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_use } else { 0 })
            .expect("BTB sets are non-empty");
        *victim = BtbEntry { pc, target, last_use: clock, valid: true };
    }
}

/// Running accuracy counters for the branch predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Conditional-branch direction lookups.
    pub lookups: u64,
    /// Predictions that were fully correct (direction and target).
    pub correct: u64,
}

impl BranchStats {
    /// Prediction accuracy in `[0, 1]`; 1.0 when nothing was predicted.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.lookups == 0 {
            1.0
        } else {
            self.correct as f64 / self.lookups as f64
        }
    }
}

/// The hybrid local/global (tournament) predictor of Table 1.
///
/// The *local* component indexes 2K 11-bit per-branch history registers by
/// PC and uses each history to index a 2K-entry PHT of 3-bit counters (as
/// in the 21264). The *global* component indexes an 8K-entry PHT of 2-bit
/// counters with a 13-bit global history. A *choice* PHT of 2-bit
/// counters, indexed by the same global history, arbitrates.
///
/// The model trains predictor state at prediction time with the resolved
/// outcome (oracle history update) — a standard trace-driven
/// simplification that the surrounding pipeline compensates for by
/// charging the full in-flight resolution latency for every misprediction.
///
/// # Examples
///
/// ```
/// use chainiq_predict::HybridBranchPredictor;
///
/// let mut bp = HybridBranchPredictor::default();
/// // A loop branch: taken 100 times, then falls through.
/// for _ in 0..100 {
///     bp.predict_and_train(0x40, true, 0x10);
/// }
/// let last = bp.predict_and_train(0x40, true, 0x10);
/// assert!(last.is_correct(true, 0x10));
/// ```
#[derive(Debug, Clone)]
pub struct HybridBranchPredictor {
    config: BranchPredictorConfig,
    global_history: u64,
    global_pht: Vec<SaturatingCounter>,
    choice_pht: Vec<SaturatingCounter>,
    local_histories: Vec<u16>,
    local_pht: Vec<SaturatingCounter>,
    btb: Btb,
    stats: BranchStats,
}

impl Default for HybridBranchPredictor {
    fn default() -> Self {
        Self::new(BranchPredictorConfig::default())
    }
}

impl HybridBranchPredictor {
    /// Creates a predictor with all counters weakly not-taken and empty
    /// histories.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (non-power-of-two table sizes,
    /// zero history widths).
    #[must_use]
    pub fn new(config: BranchPredictorConfig) -> Self {
        assert!(config.global_history_bits > 0 && config.global_history_bits <= 20);
        assert!(config.local_history_bits > 0 && config.local_history_bits <= 16);
        assert!(config.local_histories.is_power_of_two());
        let global_entries = 1usize << config.global_history_bits;
        let local_entries = 1usize << config.local_history_bits;
        HybridBranchPredictor {
            config,
            global_history: 0,
            global_pht: vec![SaturatingCounter::new(2, 1); global_entries],
            choice_pht: vec![SaturatingCounter::new(2, 1); global_entries],
            local_histories: vec![0; config.local_histories],
            local_pht: vec![SaturatingCounter::new(3, 3); local_entries],
            btb: Btb::new(config.btb_entries, config.btb_assoc),
            stats: BranchStats::default(),
        }
    }

    /// Accumulated accuracy counters.
    #[must_use]
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }

    fn global_index(&self) -> usize {
        (self.global_history & ((1 << self.config.global_history_bits) - 1)) as usize
    }

    fn local_slot(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.config.local_histories - 1)
    }

    fn local_index(&self, pc: u64) -> usize {
        (self.local_histories[self.local_slot(pc)] as usize)
            & ((1usize << self.config.local_history_bits) - 1)
    }

    /// Predicts the conditional branch at `pc`, then trains all tables
    /// with the resolved outcome `(taken, target)`. Returns the
    /// prediction that the front end acted on.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool, target: u64) -> BranchPrediction {
        let gi = self.global_index();
        let li = self.local_index(pc);
        let global_pred = self.global_pht[gi].is_high();
        let local_pred = self.local_pht[li].is_high();
        let use_global = self.choice_pht[gi].is_high();
        let dir = if use_global { global_pred } else { local_pred };
        let btb_target = self.btb.lookup(pc);
        let prediction = BranchPrediction { taken: dir, target: btb_target };

        self.stats.lookups += 1;
        if prediction.is_correct(taken, target) {
            self.stats.correct += 1;
        }

        // Train direction tables.
        if taken {
            self.global_pht[gi].inc();
            self.local_pht[li].inc();
        } else {
            self.global_pht[gi].dec();
            self.local_pht[li].dec();
        }
        // Train the choice table toward whichever component was right,
        // when they disagree.
        if global_pred != local_pred {
            if global_pred == taken {
                self.choice_pht[gi].inc();
            } else {
                self.choice_pht[gi].dec();
            }
        }
        // Update histories.
        self.global_history = (self.global_history << 1) | u64::from(taken);
        let slot = self.local_slot(pc);
        self.local_histories[slot] = (self.local_histories[slot] << 1) | u16::from(taken);
        // Train the BTB with taken targets.
        if taken {
            self.btb.install(pc, target);
        }
        prediction
    }

    /// Predicts an *unconditional* transfer at `pc` (always taken; only
    /// the target can be wrong), trains the BTB, and returns whether the
    /// front end followed the correct path.
    pub fn predict_and_train_unconditional(&mut self, pc: u64, target: u64) -> BranchPrediction {
        let btb_target = self.btb.lookup(pc);
        let prediction = BranchPrediction { taken: true, target: btb_target };
        self.stats.lookups += 1;
        if prediction.is_correct(true, target) {
            self.stats.correct += 1;
        }
        self.btb.install(pc, target);
        prediction
    }
}

impl chainiq_ckpt::Pack for BranchPredictorConfig {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.global_history_bits.pack(w);
        self.local_histories.pack(w);
        self.local_history_bits.pack(w);
        self.btb_entries.pack(w);
        self.btb_assoc.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(BranchPredictorConfig {
            global_history_bits: Pack::unpack(r)?,
            local_histories: Pack::unpack(r)?,
            local_history_bits: Pack::unpack(r)?,
            btb_entries: Pack::unpack(r)?,
            btb_assoc: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for BranchStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.lookups.pack(w);
        self.correct.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(BranchStats { lookups: Pack::unpack(r)?, correct: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for BtbEntry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.pc.pack(w);
        self.target.pack(w);
        self.last_use.pack(w);
        self.valid.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(BtbEntry {
            pc: Pack::unpack(r)?,
            target: Pack::unpack(r)?,
            last_use: Pack::unpack(r)?,
            valid: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for Btb {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.sets.pack(w);
        self.set_mask.pack(w);
        self.use_clock.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let sets: Vec<Vec<BtbEntry>> = Pack::unpack(r)?;
        let set_mask: u64 = Pack::unpack(r)?;
        let use_clock: u64 = Pack::unpack(r)?;
        if sets.is_empty() || !sets.len().is_power_of_two() || set_mask != (sets.len() - 1) as u64 {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("BTB geometry: {} sets, mask {set_mask:#x}", sets.len()),
            });
        }
        Ok(Btb { sets, set_mask, use_clock })
    }
}

impl chainiq_ckpt::Snapshot for HybridBranchPredictor {
    const COMPONENT: &'static str = "predict.branch";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.config.pack(w);
        self.global_history.pack(w);
        self.global_pht.pack(w);
        self.choice_pht.pack(w);
        self.local_histories.pack(w);
        self.local_pht.pack(w);
        self.btb.pack(w);
        self.stats.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let config = BranchPredictorConfig::unpack(r)?;
        if config != self.config {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "branch predictor config differs from the running one".to_string(),
            });
        }
        let global_history: u64 = Pack::unpack(r)?;
        let global_pht: Vec<SaturatingCounter> = Pack::unpack(r)?;
        let choice_pht: Vec<SaturatingCounter> = Pack::unpack(r)?;
        let local_histories: Vec<u16> = Pack::unpack(r)?;
        let local_pht: Vec<SaturatingCounter> = Pack::unpack(r)?;
        let global_entries = 1usize << config.global_history_bits;
        let local_entries = 1usize << config.local_history_bits;
        if global_pht.len() != global_entries
            || choice_pht.len() != global_entries
            || local_histories.len() != config.local_histories
            || local_pht.len() != local_entries
        {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "branch predictor table sizes disagree with config".to_string(),
            });
        }
        self.global_history = global_history;
        self.global_pht = global_pht;
        self.choice_pht = choice_pht;
        self.local_histories = local_histories;
        self.local_pht = local_pht;
        self.btb = Pack::unpack(r)?;
        self.stats = Pack::unpack(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_becomes_predictable() {
        let mut bp = HybridBranchPredictor::default();
        let mut last_correct = false;
        // The histories take ~13 iterations to stabilize to all-ones, and
        // each intermediate history indexes a fresh untrained PHT entry.
        for _ in 0..256 {
            last_correct = bp.predict_and_train(0x100, true, 0x40).is_correct(true, 0x40);
        }
        assert!(last_correct);
        assert!(bp.stats().accuracy() > 0.9);
    }

    #[test]
    fn alternating_branch_is_learned_by_local_history() {
        let mut bp = HybridBranchPredictor::default();
        let mut t = false;
        // Warm up: a strict alternation is a classic local-history pattern.
        for _ in 0..200 {
            bp.predict_and_train(0x200, t, 0x40);
            t = !t;
        }
        let mut correct = 0;
        for _ in 0..100 {
            if bp.predict_and_train(0x200, t, 0x40).is_correct(t, 0x40) {
                correct += 1;
            }
            t = !t;
        }
        assert!(correct > 95, "local component should nail alternation, got {correct}/100");
    }

    #[test]
    fn taken_branch_without_btb_entry_is_wrong() {
        let p = BranchPrediction { taken: true, target: None };
        assert!(!p.is_correct(true, 0x40));
        let p = BranchPrediction { taken: true, target: Some(0x44) };
        assert!(!p.is_correct(true, 0x40));
        let p = BranchPrediction { taken: true, target: Some(0x40) };
        assert!(p.is_correct(true, 0x40));
    }

    #[test]
    fn not_taken_needs_no_target() {
        let p = BranchPrediction { taken: false, target: None };
        assert!(p.is_correct(false, 0xDEAD));
        assert!(!p.is_correct(true, 0x40));
    }

    #[test]
    fn btb_learns_and_evicts_lru() {
        let mut btb = Btb::new(8, 2); // 4 sets x 2 ways
        btb.install(0x00, 1);
        btb.install(0x40, 2); // same set as 0x00 (pc>>2 & 3: 0x00->0, 0x40->0)
        assert_eq!(btb.lookup(0x00), Some(1));
        btb.install(0x80, 3); // third PC in set 0 evicts LRU (0x40)
        assert_eq!(btb.lookup(0x40), None);
        assert_eq!(btb.lookup(0x00), Some(1));
        assert_eq!(btb.lookup(0x80), Some(3));
    }

    #[test]
    fn btb_updates_existing_target() {
        let mut btb = Btb::new(8, 2);
        btb.install(0x00, 1);
        btb.install(0x00, 9);
        assert_eq!(btb.lookup(0x00), Some(9));
    }

    #[test]
    fn unconditional_is_correct_once_btb_trained() {
        let mut bp = HybridBranchPredictor::default();
        let first = bp.predict_and_train_unconditional(0x300, 0x500);
        assert!(!first.is_correct(true, 0x500), "cold BTB cannot supply a target");
        let second = bp.predict_and_train_unconditional(0x300, 0x500);
        assert!(second.is_correct(true, 0x500));
    }

    #[test]
    fn random_branches_are_hard() {
        // A pseudo-random direction stream should hover near 50-60%.
        let mut bp = HybridBranchPredictor::default();
        let mut x = 0x12345678u64;
        let mut correct = 0;
        let n = 2000;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            if bp.predict_and_train(0x400, taken, 0x40).is_correct(taken, 0x40) {
                correct += 1;
            }
        }
        let acc = correct as f64 / n as f64;
        assert!(acc < 0.7, "random stream should not be predictable, got {acc}");
    }

    #[test]
    fn default_config_matches_table1() {
        let c = BranchPredictorConfig::default();
        assert_eq!(c.global_history_bits, 13);
        assert_eq!(1 << c.global_history_bits, 8192);
        assert_eq!(c.local_histories, 2048);
        assert_eq!(c.local_history_bits, 11);
        assert_eq!(1 << c.local_history_bits, 2048);
        assert_eq!(c.btb_entries, 4096);
        assert_eq!(c.btb_assoc, 4);
    }

    #[test]
    fn stats_accuracy_empty_is_one() {
        assert_eq!(BranchStats::default().accuracy(), 1.0);
    }
}
