//! Saturating counters, the shared primitive of all three predictors.

/// An n-bit saturating up/down counter.
///
/// # Examples
///
/// ```
/// use chainiq_predict::SaturatingCounter;
///
/// let mut c = SaturatingCounter::new(2, 1); // 2-bit, starts weakly-not
/// c.inc();
/// c.inc();
/// c.inc(); // saturates at 3
/// assert_eq!(c.value(), 3);
/// c.dec();
/// assert_eq!(c.value(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates a `bits`-wide counter with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 7, or if `initial` does
    /// not fit in `bits` bits.
    #[must_use]
    pub fn new(bits: u8, initial: u8) -> Self {
        assert!((1..=7).contains(&bits), "counter width out of range");
        let max = (1u8 << bits) - 1;
        assert!(initial <= max, "initial value does not fit");
        SaturatingCounter { value: initial, max }
    }

    /// Current value.
    #[must_use]
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    #[must_use]
    pub fn max(self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    pub fn dec(&mut self) {
        self.value = self.value.saturating_sub(1);
    }

    /// Resets to zero (the HMP's clear-on-miss behaviour).
    pub fn clear(&mut self) {
        self.value = 0;
    }

    /// `true` when the value is in the upper half of the range (the usual
    /// taken / strong threshold).
    #[must_use]
    pub fn is_high(self) -> bool {
        self.value > self.max / 2
    }
}

impl chainiq_ckpt::Pack for SaturatingCounter {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        w.put_u8(self.value);
        w.put_u8(self.max);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        let value = r.take_u8("counter value")?;
        let max = r.take_u8("counter max")?;
        let width_ok = max != 0 && max != u8::MAX && (u16::from(max) + 1).is_power_of_two();
        if !width_ok || value > max {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("saturating counter {value}/{max}"),
            });
        }
        Ok(SaturatingCounter { value, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SaturatingCounter::new(2, 0);
        c.dec();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn is_high_threshold() {
        // 2-bit: high for 2, 3.
        assert!(!SaturatingCounter::new(2, 0).is_high());
        assert!(!SaturatingCounter::new(2, 1).is_high());
        assert!(SaturatingCounter::new(2, 2).is_high());
        assert!(SaturatingCounter::new(2, 3).is_high());
        // 4-bit: high for 8..=15.
        assert!(!SaturatingCounter::new(4, 7).is_high());
        assert!(SaturatingCounter::new(4, 8).is_high());
    }

    #[test]
    fn clear_resets() {
        let mut c = SaturatingCounter::new(4, 15);
        c.clear();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "width out of range")]
    fn zero_width_panics() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_initial_panics() {
        let _ = SaturatingCounter::new(2, 4);
    }
}
