//! The left/right operand predictor of §4.3.

use crate::counter::SaturatingCounter;

/// Which source operand of a two-operand instruction is meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// The first (left) source operand.
    Left,
    /// The second (right) source operand.
    Right,
}

impl Operand {
    /// The other operand.
    #[must_use]
    pub fn other(self) -> Operand {
        match self {
            Operand::Left => Operand::Right,
            Operand::Right => Operand::Left,
        }
    }
}

/// Accuracy counters for the LRP.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LrpStats {
    /// Predictions made.
    pub predictions: u64,
    /// Predictions that named the operand that actually arrived later.
    pub correct: u64,
}

impl LrpStats {
    /// Prediction accuracy in `[0, 1]` (1.0 when nothing was predicted).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// The §4.3 left/right operand predictor: a PC-indexed table of 2-bit
/// counters predicting which of an instruction's two source operands will
/// be available *later* (the critical one). Assigning the instruction to
/// that operand's chain alone halves the chain-tracking hardware and
/// avoids allocating a new chain for every two-operand instruction.
///
/// Counter convention: low values predict [`Operand::Left`], high values
/// predict [`Operand::Right`]; training moves the counter toward the
/// operand that actually arrived later. A similar predictor was proposed
/// by Stark et al. (§4.3 cites it).
///
/// The paper does not state the table size; we use 4K direct-mapped
/// entries (documented in `DESIGN.md`).
///
/// # Examples
///
/// ```
/// use chainiq_predict::{LeftRightPredictor, Operand};
///
/// let mut lrp = LeftRightPredictor::default();
/// // Teach it that the right operand of this PC is critical.
/// lrp.update(0x40, Operand::Right);
/// lrp.update(0x40, Operand::Right);
/// assert_eq!(lrp.predict(0x40), Operand::Right);
/// ```
#[derive(Debug, Clone)]
pub struct LeftRightPredictor {
    table: Vec<SaturatingCounter>,
    mask: usize,
    stats: LrpStats,
}

impl Default for LeftRightPredictor {
    /// 4K entries, initialized to weakly-left.
    fn default() -> Self {
        Self::new(4096)
    }
}

impl LeftRightPredictor {
    /// Creates a predictor with `entries` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        LeftRightPredictor {
            table: vec![SaturatingCounter::new(2, 1); entries],
            mask: entries - 1,
            stats: LrpStats::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts which operand of the instruction at `pc` arrives later,
    /// recording the prediction in the statistics.
    pub fn predict(&mut self, pc: u64) -> Operand {
        self.stats.predictions += 1;
        self.peek(pc)
    }

    /// Reads the current prediction without recording it.
    #[must_use]
    pub fn peek(&self, pc: u64) -> Operand {
        if self.table[self.index(pc)].is_high() {
            Operand::Right
        } else {
            Operand::Left
        }
    }

    /// Trains with the operand that actually arrived later, crediting the
    /// most recent prediction for this PC.
    pub fn update(&mut self, pc: u64, later: Operand) {
        if self.peek(pc) == later {
            self.stats.correct = self.stats.correct.saturating_add(1);
        }
        let idx = self.index(pc);
        match later {
            Operand::Right => self.table[idx].inc(),
            Operand::Left => self.table[idx].dec(),
        }
    }

    /// Accumulated accuracy counters.
    ///
    /// `correct` can exceed `predictions` when `update` is called more
    /// often than `predict` (e.g. operands resolved for instructions that
    /// never consulted the predictor); accuracy saturates at 1.0.
    #[must_use]
    pub fn stats(&self) -> LrpStats {
        LrpStats {
            predictions: self.stats.predictions,
            correct: self.stats.correct.min(self.stats.predictions),
        }
    }
}

impl chainiq_ckpt::Pack for LrpStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.predictions.pack(w);
        self.correct.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(LrpStats { predictions: Pack::unpack(r)?, correct: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Snapshot for LeftRightPredictor {
    const COMPONENT: &'static str = "predict.lrp";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.table.pack(w);
        self.mask.pack(w);
        self.stats.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let table: Vec<SaturatingCounter> = Pack::unpack(r)?;
        let mask: usize = Pack::unpack(r)?;
        if table.is_empty() || !table.len().is_power_of_two() || mask != table.len() - 1 {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("LRP geometry: {} entries, mask {mask:#x}", table.len()),
            });
        }
        self.table = table;
        self.mask = mask;
        self.stats = Pack::unpack(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_left() {
        let lrp = LeftRightPredictor::default();
        assert_eq!(lrp.peek(0x0), Operand::Left);
    }

    #[test]
    fn learns_right_after_two_updates() {
        let mut lrp = LeftRightPredictor::default();
        lrp.update(0x40, Operand::Right); // 1 -> 2
        assert_eq!(lrp.peek(0x40), Operand::Right);
        lrp.update(0x40, Operand::Right); // 2 -> 3
        assert_eq!(lrp.peek(0x40), Operand::Right);
    }

    #[test]
    fn hysteresis_resists_single_flip() {
        let mut lrp = LeftRightPredictor::default();
        for _ in 0..4 {
            lrp.update(0x40, Operand::Right);
        }
        lrp.update(0x40, Operand::Left); // 3 -> 2, still Right
        assert_eq!(lrp.peek(0x40), Operand::Right);
        lrp.update(0x40, Operand::Left); // 2 -> 1, flips
        assert_eq!(lrp.peek(0x40), Operand::Left);
    }

    #[test]
    fn accuracy_tracks_stable_behaviour() {
        let mut lrp = LeftRightPredictor::default();
        for _ in 0..100 {
            lrp.predict(0x80);
            lrp.update(0x80, Operand::Right);
        }
        // Only the first prediction or two are wrong.
        assert!(lrp.stats().accuracy() > 0.95);
    }

    #[test]
    fn operand_other_swaps() {
        assert_eq!(Operand::Left.other(), Operand::Right);
        assert_eq!(Operand::Right.other(), Operand::Left);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_panics() {
        let _ = LeftRightPredictor::new(3);
    }

    #[test]
    fn stats_never_exceed_one() {
        let mut lrp = LeftRightPredictor::default();
        // Updates without predictions must not push accuracy above 1.
        for _ in 0..10 {
            lrp.update(0x10, Operand::Left);
        }
        lrp.predict(0x10);
        assert!(lrp.stats().accuracy() <= 1.0);
    }
}
