//! Branch, hit/miss and left/right predictors for the chainiq simulator.
//!
//! Three predictors from *"A Scalable Instruction Queue Design Using
//! Dependence Chains"* (ISCA 2002):
//!
//! * [`HybridBranchPredictor`] — the Table 1 front-end predictor, an Alpha
//!   21264-style tournament of a local and a global component plus a
//!   4K-entry 4-way [`Btb`];
//! * [`HitMissPredictor`] (§4.4) — 4-bit saturating counters indexed by
//!   load PC; increment on hit, clear on miss, predict *hit* only when the
//!   counter exceeds 13 (very-high-confidence hit predictions keep
//!   mispredicted misses — which flood segment 0 with unready
//!   instructions — rare);
//! * [`LeftRightPredictor`] (§4.3) — 2-bit counters indexed by PC that
//!   guess which of a two-operand instruction's inputs arrives *later*,
//!   so the instruction can follow a single chain.
//!
//! # Examples
//!
//! ```
//! use chainiq_predict::HitMissPredictor;
//!
//! let mut hmp = HitMissPredictor::default();
//! // A load must hit 14 times in a row before the HMP trusts it.
//! for _ in 0..14 { hmp.update(0x40, true); }
//! assert!(hmp.predict_hit(0x40));
//! // One miss clears the counter entirely.
//! hmp.update(0x40, false);
//! assert!(!hmp.predict_hit(0x40));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod branch;
mod counter;
mod hmp;
mod lrp;

pub use branch::{BranchPrediction, BranchPredictorConfig, Btb, HybridBranchPredictor};
pub use counter::SaturatingCounter;
pub use hmp::{HitMissPredictor, HmpStats};
pub use lrp::{LeftRightPredictor, LrpStats, Operand};
