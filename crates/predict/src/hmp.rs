//! The cache hit/miss predictor of §4.4.

use crate::counter::SaturatingCounter;

/// Accuracy and coverage counters for the HMP.
///
/// The paper reports two figures (§6.1): *hit-prediction accuracy* — the
/// fraction of hit predictions that were actually hits, "over 98%" — and
/// *hit coverage* — the fraction of actual hits that were predicted as
/// hits, "over 83%".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HmpStats {
    /// Predictions made.
    pub predictions: u64,
    /// Times a hit was predicted.
    pub predicted_hit: u64,
    /// Times a hit was predicted and the access did hit.
    pub predicted_hit_was_hit: u64,
    /// Actual hits observed.
    pub actual_hits: u64,
}

impl HmpStats {
    /// Fraction of hit predictions that were correct (1.0 if none made).
    #[must_use]
    pub fn hit_accuracy(&self) -> f64 {
        if self.predicted_hit == 0 {
            1.0
        } else {
            self.predicted_hit_was_hit as f64 / self.predicted_hit as f64
        }
    }

    /// Fraction of actual hits that were predicted as hits (1.0 if there
    /// were no hits).
    #[must_use]
    pub fn hit_coverage(&self) -> f64 {
        if self.actual_hits == 0 {
            1.0
        } else {
            self.predicted_hit_was_hit as f64 / self.actual_hits as f64
        }
    }
}

/// The §4.4 hit/miss predictor: a PC-indexed table of 4-bit saturating
/// counters, incremented on a hit, *cleared to zero* on a miss, predicting
/// a hit only when the counter exceeds 13.
///
/// The asymmetric update rule encodes the asymmetric cost: predicting a
/// miss as a hit floods segment 0 with unready instructions, so a hit is
/// predicted only with very high confidence. Delayed hits count as misses
/// (see [`chainiq_mem::ServicedBy::is_l1_hit`]).
///
/// The paper does not state the table size; we use 4K direct-mapped
/// entries (documented in `DESIGN.md`).
///
/// [`chainiq_mem::ServicedBy::is_l1_hit`]:
///     https://docs.rs/chainiq-mem
#[derive(Debug, Clone)]
pub struct HitMissPredictor {
    table: Vec<SaturatingCounter>,
    threshold: u8,
    mask: usize,
    stats: HmpStats,
    wrong_by_pc: std::collections::BTreeMap<u64, u64>,
}

impl Default for HitMissPredictor {
    /// 4K entries, predict hit when counter > 13.
    fn default() -> Self {
        Self::new(4096, 13)
    }
}

impl HitMissPredictor {
    /// Creates a predictor with `entries` 4-bit counters and the given
    /// predict-hit threshold (`counter > threshold`).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `threshold >= 15`.
    #[must_use]
    pub fn new(entries: usize, threshold: u8) -> Self {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        assert!(threshold < 15, "threshold must be below the 4-bit maximum");
        HitMissPredictor {
            table: vec![SaturatingCounter::new(4, 0); entries],
            threshold,
            mask: entries - 1,
            stats: HmpStats::default(),
            wrong_by_pc: std::collections::BTreeMap::new(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & self.mask
    }

    /// Predicts whether the load at `pc` will hit in the L1, and records
    /// the prediction for the accuracy statistics. Callers that want a
    /// side-effect-free peek can use [`HitMissPredictor::peek`].
    pub fn predict_hit(&mut self, pc: u64) -> bool {
        let hit = self.peek(pc);
        self.stats.predictions += 1;
        if hit {
            self.stats.predicted_hit += 1;
        }
        hit
    }

    /// Reads the current prediction without recording it.
    #[must_use]
    pub fn peek(&self, pc: u64) -> bool {
        self.table[self.index(pc)].value() > self.threshold
    }

    /// Trains with the resolved outcome of the load at `pc`.
    ///
    /// Statistics for accuracy/coverage are recorded by
    /// [`HitMissPredictor::record_outcome`], which pairs each dynamic
    /// load's outcome with the prediction it actually dispatched under
    /// (many dynamic instances of one PC can be in flight at once).
    pub fn update(&mut self, pc: u64, was_hit: bool) {
        if !was_hit && self.peek(pc) {
            *self.wrong_by_pc.entry(pc).or_default() += 1;
        }
        let idx = self.index(pc);
        if was_hit {
            self.table[idx].inc();
        } else {
            self.table[idx].clear();
        }
    }

    /// Credits the outcome of one dynamic load against the prediction it
    /// was dispatched with.
    pub fn record_outcome(&mut self, predicted_hit: bool, was_hit: bool) {
        if was_hit {
            self.stats.actual_hits += 1;
            if predicted_hit {
                self.stats.predicted_hit_was_hit += 1;
            }
        }
    }

    /// Wrong hit-predictions per load PC, most offended first (diagnostic
    /// aid for workload calibration).
    #[must_use]
    pub fn wrong_hit_predictions_by_pc(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.wrong_by_pc.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        v
    }

    /// Accumulated accuracy/coverage counters.
    #[must_use]
    pub fn stats(&self) -> &HmpStats {
        &self.stats
    }
}

impl chainiq_ckpt::Pack for HmpStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.predictions.pack(w);
        self.predicted_hit.pack(w);
        self.predicted_hit_was_hit.pack(w);
        self.actual_hits.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(HmpStats {
            predictions: Pack::unpack(r)?,
            predicted_hit: Pack::unpack(r)?,
            predicted_hit_was_hit: Pack::unpack(r)?,
            actual_hits: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Snapshot for HitMissPredictor {
    const COMPONENT: &'static str = "predict.hmp";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.table.pack(w);
        self.threshold.pack(w);
        self.mask.pack(w);
        self.stats.pack(w);
        self.wrong_by_pc.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let table: Vec<SaturatingCounter> = Pack::unpack(r)?;
        let threshold: u8 = Pack::unpack(r)?;
        let mask: usize = Pack::unpack(r)?;
        if table.is_empty() || !table.len().is_power_of_two() || mask != table.len() - 1 {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("HMP geometry: {} entries, mask {mask:#x}", table.len()),
            });
        }
        self.table = table;
        self.threshold = threshold;
        self.mask = mask;
        self.stats = Pack::unpack(r)?;
        self.wrong_by_pc = Pack::unpack(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_fourteen_hits_to_predict_hit() {
        let mut hmp = HitMissPredictor::default();
        for i in 0..14 {
            assert!(!hmp.peek(0x40), "after {i} hits the counter is {i} <= 13");
            hmp.update(0x40, true);
        }
        assert!(hmp.peek(0x40));
    }

    #[test]
    fn one_miss_clears_confidence() {
        let mut hmp = HitMissPredictor::default();
        for _ in 0..15 {
            hmp.update(0x40, true);
        }
        assert!(hmp.peek(0x40));
        hmp.update(0x40, false);
        assert!(!hmp.peek(0x40));
        // And it takes another 14 hits to recover.
        for _ in 0..13 {
            hmp.update(0x40, true);
        }
        assert!(!hmp.peek(0x40));
        hmp.update(0x40, true);
        assert!(hmp.peek(0x40));
    }

    #[test]
    fn counter_saturates_at_fifteen() {
        let mut hmp = HitMissPredictor::default();
        for _ in 0..100 {
            hmp.update(0x40, true);
        }
        assert!(hmp.peek(0x40));
    }

    #[test]
    fn accuracy_on_a_pure_hit_stream_is_one() {
        let mut hmp = HitMissPredictor::default();
        for _ in 0..100 {
            let p = hmp.predict_hit(0x80);
            hmp.record_outcome(p, true);
            hmp.update(0x80, true);
        }
        assert_eq!(hmp.stats().hit_accuracy(), 1.0);
        // 14 warm-up accesses are not covered.
        let cov = hmp.stats().hit_coverage();
        assert!((cov - 86.0 / 100.0).abs() < 1e-9, "coverage {cov}");
    }

    #[test]
    fn always_missing_load_never_predicts_hit() {
        let mut hmp = HitMissPredictor::default();
        for _ in 0..50 {
            let p = hmp.predict_hit(0xC0);
            assert!(!p);
            hmp.record_outcome(p, false);
            hmp.update(0xC0, false);
        }
        assert_eq!(hmp.stats().predicted_hit, 0);
        assert_eq!(hmp.stats().hit_accuracy(), 1.0);
    }

    #[test]
    fn distinct_pcs_do_not_interfere() {
        let mut hmp = HitMissPredictor::default();
        for _ in 0..20 {
            hmp.update(0x40, true);
        }
        // A different PC in a different slot is untrained.
        assert!(!hmp.peek(0x44));
        assert!(hmp.peek(0x40));
    }

    #[test]
    fn aliased_pcs_share_a_counter() {
        let mut hmp = HitMissPredictor::new(16, 13);
        // pc >> 2 masked to 4 bits: 0x0 and 0x100 alias (0x100>>2 = 0x40, &0xF = 0).
        for _ in 0..20 {
            hmp.update(0x0, true);
        }
        assert!(hmp.peek(0x100));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_table_panics() {
        let _ = HitMissPredictor::new(1000, 13);
    }

    #[test]
    fn stats_empty_defaults() {
        let s = HmpStats::default();
        assert_eq!(s.hit_accuracy(), 1.0);
        assert_eq!(s.hit_coverage(), 1.0);
    }
}
