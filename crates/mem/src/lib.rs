//! Event-driven cache hierarchy for the chainiq simulator.
//!
//! Models the memory system of Table 1 of *"A Scalable Instruction Queue
//! Design Using Dependence Chains"* (ISCA 2002):
//!
//! * split 64 KB 2-way L1 instruction and data caches, 64-byte lines
//!   (1-cycle instruction latency, 3-cycle data latency, up to 32
//!   outstanding misses each),
//! * a unified 1 MB 4-way L2 with 10-cycle latency, 32 MSHRs and
//!   64 bytes/cycle of bandwidth to/from the L1s,
//! * main memory with 100-cycle latency and 8 bytes/CPU-cycle bandwidth.
//!
//! The model resolves each access's completion time eagerly (latency
//! resolution) instead of queueing discrete events, while still capturing
//! the phenomena the paper's evaluation depends on:
//!
//! * **delayed hits** — a reference to a line with an outstanding fill
//!   merges into the MSHR and completes when the fill arrives (the paper
//!   notes these dominate swim's L1 misses),
//! * **MSHR exhaustion** — accesses are rejected and must be retried,
//! * **bandwidth contention** — line transfers serialize on the L1↔L2 and
//!   memory buses,
//! * **dirty writebacks** — evictions of dirty lines consume bus
//!   bandwidth.
//!
//! # Examples
//!
//! ```
//! use chainiq_mem::{Hierarchy, MemConfig, AccessKind, ServicedBy};
//!
//! let mut mem = Hierarchy::new(MemConfig::default());
//! let out = mem.access(0, 0x1000, AccessKind::Read).unwrap();
//! // A cold access misses all the way to memory.
//! assert_eq!(out.serviced_by, ServicedBy::Memory);
//! // Once the fill has landed, the same line hits in the L1.
//! let again = mem.access(out.completes_at + 1, 0x1008, AccessKind::Read).unwrap();
//! assert_eq!(again.serviced_by, ServicedBy::L1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bus;
mod cache;
mod hierarchy;
mod mshr;
mod stats;

pub use bus::Bus;
pub use cache::{CacheArray, CacheConfig, LookupOutcome};
pub use hierarchy::{AccessKind, AccessOutcome, Hierarchy, MemConfig, RejectReason, ServicedBy};
pub use mshr::{MshrFile, MshrGrant};
pub use stats::{CacheStats, MemStats};

/// A point in simulated time, in CPU cycles (re-exported convention shared
/// with `chainiq_isa::Cycle`).
pub type Cycle = u64;
