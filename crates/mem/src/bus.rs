//! Bandwidth-limited transfer links.

use crate::Cycle;

/// A serializing, bandwidth-limited link (L1↔L2 bus, memory bus).
///
/// A transfer of `bytes` occupies the bus for `ceil(bytes /
/// bytes_per_cycle)` cycles. Transfers serialize: a transfer requested
/// while the bus is busy starts when the bus frees up. The model is a
/// simple next-free-time reservation, which is exact for FIFO service.
///
/// # Examples
///
/// ```
/// use chainiq_mem::Bus;
///
/// // Table 1 memory bus: 8 bytes per CPU cycle.
/// let mut bus = Bus::new(8);
/// // A 64-byte line occupies 8 cycles: requested at 100, done at 108.
/// assert_eq!(bus.transfer(100, 64), 108);
/// // A back-to-back request at 101 must wait until 108, finishing at 116.
/// assert_eq!(bus.transfer(101, 64), 116);
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    bytes_per_cycle: u64,
    next_free: Cycle,
    busy_cycles: u64,
    transfers: u64,
}

impl Bus {
    /// Creates a bus carrying `bytes_per_cycle` bytes each cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    #[must_use]
    pub fn new(bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "bus bandwidth must be positive");
        Bus { bytes_per_cycle, next_free: 0, busy_cycles: 0, transfers: 0 }
    }

    /// Reserves the bus for a `bytes`-byte transfer requested at `ready`.
    /// Returns the cycle at which the transfer completes.
    pub fn transfer(&mut self, ready: Cycle, bytes: u64) -> Cycle {
        let start = self.next_free.max(ready);
        let duration = bytes.div_ceil(self.bytes_per_cycle);
        self.next_free = start + duration;
        self.busy_cycles += duration;
        self.transfers += 1;
        self.next_free
    }

    /// Earliest cycle at which a new transfer could start.
    #[must_use]
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles the bus has been occupied.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Total transfers carried.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

impl chainiq_ckpt::Pack for Bus {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.bytes_per_cycle.pack(w);
        self.next_free.pack(w);
        self.busy_cycles.pack(w);
        self.transfers.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let bytes_per_cycle: u64 = Pack::unpack(r)?;
        if bytes_per_cycle == 0 {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "bus with zero bandwidth".to_string(),
            });
        }
        Ok(Bus {
            bytes_per_cycle,
            next_free: Pack::unpack(r)?,
            busy_cycles: Pack::unpack(r)?,
            transfers: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_starts_immediately() {
        let mut bus = Bus::new(64);
        assert_eq!(bus.transfer(10, 64), 11);
    }

    #[test]
    fn transfers_serialize() {
        let mut bus = Bus::new(8);
        let a = bus.transfer(0, 64); // 0..8
        let b = bus.transfer(0, 64); // 8..16
        assert_eq!(a, 8);
        assert_eq!(b, 16);
        assert_eq!(bus.busy_cycles(), 16);
        assert_eq!(bus.transfers(), 2);
    }

    #[test]
    fn partial_lines_round_up() {
        let mut bus = Bus::new(8);
        assert_eq!(bus.transfer(0, 4), 1);
        assert_eq!(bus.transfer(0, 9), 3); // 2 cycles, starting at 1
    }

    #[test]
    fn gap_leaves_bus_idle() {
        let mut bus = Bus::new(8);
        bus.transfer(0, 8); // done at 1
        let done = bus.transfer(100, 8);
        assert_eq!(done, 101);
        assert_eq!(bus.busy_cycles(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        let _ = Bus::new(0);
    }
}
