//! Statistics containers for the memory hierarchy.

/// Per-cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found the line resident.
    pub hits: u64,
    /// Accesses that had to fill the line.
    pub misses: u64,
    /// Dirty lines evicted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Aggregated statistics for a full [`Hierarchy`](crate::Hierarchy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 data-cache counters.
    pub l1d: CacheStats,
    /// L1 instruction-cache counters.
    pub l1i: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Data accesses serviced as delayed hits (merged into an in-flight
    /// L1 fill).
    pub delayed_hits: u64,
    /// Data accesses rejected for MSHR exhaustion (to be retried).
    pub mshr_rejections: u64,
    /// Accesses serviced by main memory.
    pub memory_accesses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_counts() {
        let s = CacheStats { hits: 3, misses: 1, writebacks: 0 };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }
}
