//! Statistics containers for the memory hierarchy.

/// Per-cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found the line resident.
    pub hits: u64,
    /// Accesses that had to fill the line.
    pub misses: u64,
    /// Dirty lines evicted.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Aggregated statistics for a full [`Hierarchy`](crate::Hierarchy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 data-cache counters.
    pub l1d: CacheStats,
    /// L1 instruction-cache counters.
    pub l1i: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Data accesses serviced as delayed hits (merged into an in-flight
    /// L1 fill).
    pub delayed_hits: u64,
    /// Data accesses rejected for MSHR exhaustion (to be retried).
    pub mshr_rejections: u64,
    /// Accesses serviced by main memory.
    pub memory_accesses: u64,
}

impl chainiq_ckpt::Pack for CacheStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.hits.pack(w);
        self.misses.pack(w);
        self.writebacks.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(CacheStats {
            hits: Pack::unpack(r)?,
            misses: Pack::unpack(r)?,
            writebacks: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for MemStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.l1d.pack(w);
        self.l1i.pack(w);
        self.l2.pack(w);
        self.delayed_hits.pack(w);
        self.mshr_rejections.pack(w);
        self.memory_accesses.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(MemStats {
            l1d: Pack::unpack(r)?,
            l1i: Pack::unpack(r)?,
            l2: Pack::unpack(r)?,
            delayed_hits: Pack::unpack(r)?,
            mshr_rejections: Pack::unpack(r)?,
            memory_accesses: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_empty() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn miss_ratio_counts() {
        let s = CacheStats { hits: 3, misses: 1, writebacks: 0 };
        assert_eq!(s.accesses(), 4);
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
    }
}
