//! The composed L1I/L1D/L2/DRAM hierarchy.

use crate::bus::Bus;
use crate::cache::{CacheArray, CacheConfig, LookupOutcome};
use crate::mshr::{MshrFile, MshrGrant};
use crate::stats::MemStats;
use crate::Cycle;

/// What kind of access is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data read (load).
    Read,
    /// Data write (store; write-allocate).
    Write,
    /// Instruction fetch.
    Ifetch,
}

/// Which level ultimately supplied the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// True first-level hit.
    L1,
    /// Merged into an in-flight L1 fill (the paper's *delayed hit* —
    /// counted as an L1 miss for hit/miss prediction purposes).
    DelayedHit,
    /// L2 hit.
    L2,
    /// Main memory (including merges into in-flight L2 fills).
    Memory,
}

impl ServicedBy {
    /// Whether the access counts as an L1 hit for the hit/miss predictor.
    ///
    /// Per §4.4 of the paper, delayed hits count as misses: they expose
    /// (most of) the miss latency to dependents.
    #[must_use]
    pub fn is_l1_hit(self) -> bool {
        self == ServicedBy::L1
    }
}

/// Resolved timing of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle the access was presented to the cache.
    pub issued_at: Cycle,
    /// Cycle the data is available (loads) or the write is retired.
    pub completes_at: Cycle,
    /// Cycle at which the L1 lookup resolves — this is when a miss is
    /// *detected* and the chain suspend signal of §3.4 can be sent.
    pub l1_resolved_at: Cycle,
    /// Level that supplied the data.
    pub serviced_by: ServicedBy,
}

impl AccessOutcome {
    /// Latency from issue to completion.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.completes_at - self.issued_at
    }
}

/// Why an access could not be accepted this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The L1 MSHR file is out of registers; retry later.
    L1MshrFull,
    /// The L2 MSHR file is out of registers; retry later.
    L2MshrFull,
}

/// Configuration of the whole hierarchy; defaults reproduce Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// L1↔L2 bandwidth in bytes per cycle.
    pub l1_l2_bytes_per_cycle: u64,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    /// Memory-bus bandwidth in bytes per CPU cycle.
    pub memory_bytes_per_cycle: u64,
}

impl Default for MemConfig {
    /// Table 1 of the paper.
    fn default() -> Self {
        MemConfig {
            l1i: CacheConfig {
                size_bytes: 64 << 10,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
                mshrs: 32,
            },
            l1d: CacheConfig {
                size_bytes: 64 << 10,
                assoc: 2,
                line_bytes: 64,
                latency: 3,
                mshrs: 32,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                assoc: 4,
                line_bytes: 64,
                latency: 10,
                mshrs: 32,
            },
            l1_l2_bytes_per_cycle: 64,
            memory_latency: 100,
            memory_bytes_per_cycle: 8,
        }
    }
}

/// The composed memory hierarchy.
///
/// Data ports are *not* modelled here — the load/store queue enforces the
/// per-cycle read/write port limits of Table 1; this component resolves
/// latency, occupancy and bandwidth.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: MemConfig,
    l1i: CacheArray,
    l1d: CacheArray,
    l2: CacheArray,
    l1i_mshrs: MshrFile,
    l1d_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    l1_l2_bus: Bus,
    memory_bus: Bus,
    stats: MemStats,
}

impl Hierarchy {
    /// Creates a cold hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry in `config` is inconsistent or the
    /// line sizes differ between levels.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        assert_eq!(config.l1d.line_bytes, config.l2.line_bytes, "line sizes must match");
        assert_eq!(config.l1i.line_bytes, config.l2.line_bytes, "line sizes must match");
        Hierarchy {
            config,
            l1i: CacheArray::new(config.l1i),
            l1d: CacheArray::new(config.l1d),
            l2: CacheArray::new(config.l2),
            l1i_mshrs: MshrFile::new(config.l1i.mshrs),
            l1d_mshrs: MshrFile::new(config.l1d.mshrs),
            l2_mshrs: MshrFile::new(config.l2.mshrs),
            l1_l2_bus: Bus::new(config.l1_l2_bytes_per_cycle),
            memory_bus: Bus::new(config.memory_bytes_per_cycle),
            stats: MemStats::default(),
        }
    }

    /// The configuration this hierarchy was built with.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Presents an access at cycle `now` and resolves its timing.
    ///
    /// # Errors
    ///
    /// Returns a [`RejectReason`] when a required MSHR file is exhausted;
    /// the caller should retry on a later cycle. No state is modified on
    /// rejection.
    pub fn access(
        &mut self,
        now: Cycle,
        addr: u64,
        kind: AccessKind,
    ) -> Result<AccessOutcome, RejectReason> {
        match kind {
            AccessKind::Ifetch => self.l1_access(now, addr, false, true),
            AccessKind::Read => self.l1_access(now, addr, false, false),
            AccessKind::Write => self.l1_access(now, addr, true, false),
        }
    }

    /// Checks (without side effects) whether `addr` would hit in the L1
    /// data cache right now — neither in flight nor absent.
    #[must_use]
    pub fn l1d_would_hit(&self, now: Cycle, addr: u64) -> bool {
        let line = self.l1d.line_addr(addr);
        self.l1d.probe(addr) && self.l1d_mshrs.outstanding(now, line).is_none()
    }

    fn l1_access(
        &mut self,
        now: Cycle,
        addr: u64,
        is_write: bool,
        is_ifetch: bool,
    ) -> Result<AccessOutcome, RejectReason> {
        let (l1_latency, line) = if is_ifetch {
            (self.config.l1i.latency, self.l1i.line_addr(addr))
        } else {
            (self.config.l1d.latency, self.l1d.line_addr(addr))
        };
        let l1_resolved_at = now + l1_latency;

        let (array, mshrs) =
            if is_ifetch { (&self.l1i, &self.l1i_mshrs) } else { (&self.l1d, &self.l1d_mshrs) };

        // Case 1: true L1 hit (present, no fill in flight).
        let outstanding = mshrs.outstanding(now, line);
        if array.probe(addr) && outstanding.is_none() {
            let array = if is_ifetch { &mut self.l1i } else { &mut self.l1d };
            array.access(addr, is_write);
            let s = if is_ifetch { &mut self.stats.l1i } else { &mut self.stats.l1d };
            s.hits += 1;
            return Ok(AccessOutcome {
                issued_at: now,
                completes_at: l1_resolved_at,
                l1_resolved_at,
                serviced_by: ServicedBy::L1,
            });
        }

        // Case 2: delayed hit — merge into the in-flight fill.
        if let Some(fill_at) = outstanding {
            let mshrs = if is_ifetch { &mut self.l1i_mshrs } else { &mut self.l1d_mshrs };
            mshrs.request(now, line, fill_at); // records the merge
            let array = if is_ifetch { &mut self.l1i } else { &mut self.l1d };
            array.access(addr, is_write); // LRU touch / dirty on the eagerly-filled line
            let s = if is_ifetch { &mut self.stats.l1i } else { &mut self.stats.l1d };
            s.misses += 1;
            self.stats.delayed_hits += 1;
            return Ok(AccessOutcome {
                issued_at: now,
                completes_at: fill_at.max(l1_resolved_at),
                l1_resolved_at,
                serviced_by: ServicedBy::DelayedHit,
            });
        }

        // Case 3: primary L1 miss. Check resources before mutating.
        if mshrs.in_use(now)
            >= if is_ifetch { self.config.l1i.mshrs } else { self.config.l1d.mshrs }
        {
            self.stats.mshr_rejections += 1;
            return Err(RejectReason::L1MshrFull);
        }
        let l2_line = self.l2.line_addr(addr);
        let l2_req_at = l1_resolved_at;
        let l2_present = self.l2.probe(addr);
        let l2_outstanding = self.l2_mshrs.outstanding(now, l2_line);
        if !l2_present
            && l2_outstanding.is_none()
            && self.l2_mshrs.in_use(now) >= self.config.l2.mshrs
        {
            self.stats.mshr_rejections += 1;
            return Err(RejectReason::L2MshrFull);
        }

        // Resolve the L2 side.
        let (serviced_by, l2_data_ready) = if l2_present && l2_outstanding.is_none() {
            self.l2.access(addr, false);
            self.stats.l2.hits += 1;
            (ServicedBy::L2, l2_req_at + self.config.l2.latency)
        } else if let Some(fill_at) = l2_outstanding {
            // Merge into the in-flight memory fill.
            self.l2_mshrs.request(now, l2_line, fill_at);
            self.l2.access(addr, false);
            self.stats.l2.misses += 1;
            (ServicedBy::Memory, fill_at.max(l2_req_at + self.config.l2.latency))
        } else {
            // Primary L2 miss: go to memory.
            self.stats.l2.misses += 1;
            self.stats.memory_accesses += 1;
            let mem_ready = l2_req_at + self.config.l2.latency + self.config.memory_latency;
            let line_bytes = self.config.l2.line_bytes as u64;
            let mem_done = self.memory_bus.transfer(mem_ready, line_bytes);
            self.l2_mshrs.request(now, l2_line, mem_done);
            if let LookupOutcome::Miss { writeback: Some(_) } = self.l2.access(addr, false) {
                // Dirty L2 victim written back to memory.
                self.memory_bus.transfer(mem_done, line_bytes);
            }
            (ServicedBy::Memory, mem_done)
        };

        // Transfer the line L2 -> L1 and allocate the L1 MSHR.
        let line_bytes = self.config.l2.line_bytes as u64;
        let fill_at = self.l1_l2_bus.transfer(l2_data_ready, line_bytes);
        let (array, mshrs, s) = if is_ifetch {
            (&mut self.l1i, &mut self.l1i_mshrs, &mut self.stats.l1i)
        } else {
            (&mut self.l1d, &mut self.l1d_mshrs, &mut self.stats.l1d)
        };
        let grant = mshrs.request(now, line, fill_at);
        debug_assert_eq!(grant, MshrGrant::Allocated);
        s.misses += 1;
        if let LookupOutcome::Miss { writeback: Some(victim) } = array.access(addr, is_write) {
            // Dirty L1 victim written back into the L2.
            self.l1_l2_bus.transfer(fill_at, line_bytes);
            if let LookupOutcome::Miss { writeback: Some(_) } = self.l2.access(victim, true) {
                self.memory_bus.transfer(fill_at, line_bytes);
            }
        }

        Ok(AccessOutcome {
            issued_at: now,
            completes_at: fill_at.max(l1_resolved_at),
            l1_resolved_at,
            serviced_by,
        })
    }
}

impl chainiq_ckpt::Pack for MemConfig {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.l1i.pack(w);
        self.l1d.pack(w);
        self.l2.pack(w);
        self.l1_l2_bytes_per_cycle.pack(w);
        self.memory_latency.pack(w);
        self.memory_bytes_per_cycle.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(MemConfig {
            l1i: Pack::unpack(r)?,
            l1d: Pack::unpack(r)?,
            l2: Pack::unpack(r)?,
            l1_l2_bytes_per_cycle: Pack::unpack(r)?,
            memory_latency: Pack::unpack(r)?,
            memory_bytes_per_cycle: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Snapshot for Hierarchy {
    const COMPONENT: &'static str = "mem.hierarchy";
    const VERSION: u16 = 1;

    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        self.config.pack(w);
        self.l1i.pack(w);
        self.l1d.pack(w);
        self.l2.pack(w);
        self.l1i_mshrs.pack(w);
        self.l1d_mshrs.pack(w);
        self.l2_mshrs.pack(w);
        self.l1_l2_bus.pack(w);
        self.memory_bus.pack(w);
        self.stats.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let config = MemConfig::unpack(r)?;
        if config != self.config {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "memory hierarchy config differs from the running one".to_string(),
            });
        }
        self.l1i = Pack::unpack(r)?;
        self.l1d = Pack::unpack(r)?;
        self.l2 = Pack::unpack(r)?;
        self.l1i_mshrs = Pack::unpack(r)?;
        self.l1d_mshrs = Pack::unpack(r)?;
        self.l2_mshrs = Pack::unpack(r)?;
        self.l1_l2_bus = Pack::unpack(r)?;
        self.memory_bus = Pack::unpack(r)?;
        self.stats = Pack::unpack(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        Hierarchy::new(MemConfig::default())
    }

    #[test]
    fn default_config_matches_table1() {
        let c = MemConfig::default();
        assert_eq!(c.l1d.size_bytes, 64 << 10);
        assert_eq!(c.l1d.assoc, 2);
        assert_eq!(c.l1d.latency, 3);
        assert_eq!(c.l1d.mshrs, 32);
        assert_eq!(c.l1i.latency, 1);
        assert_eq!(c.l2.size_bytes, 1 << 20);
        assert_eq!(c.l2.assoc, 4);
        assert_eq!(c.l2.latency, 10);
        assert_eq!(c.memory_latency, 100);
        assert_eq!(c.memory_bytes_per_cycle, 8);
        assert_eq!(c.l1_l2_bytes_per_cycle, 64);
    }

    #[test]
    fn cold_read_goes_to_memory_with_expected_latency() {
        let mut m = hier();
        let out = m.access(0, 0x1000, AccessKind::Read).unwrap();
        assert_eq!(out.serviced_by, ServicedBy::Memory);
        assert_eq!(out.l1_resolved_at, 3);
        // 3 (L1) + 10 (L2 lookup) + 100 (memory) + 8 (64B @ 8B/cyc) + 1
        // (64B @ 64B/cyc into L1) = 122.
        assert_eq!(out.completes_at, 122);
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut m = hier();
        let fill = m.access(0, 0x1000, AccessKind::Read).unwrap().completes_at;
        let out = m.access(fill, 0x1000, AccessKind::Read).unwrap();
        assert_eq!(out.serviced_by, ServicedBy::L1);
        assert_eq!(out.latency(), 3);
    }

    #[test]
    fn second_access_while_fill_in_flight_is_delayed_hit() {
        let mut m = hier();
        let first = m.access(0, 0x1000, AccessKind::Read).unwrap();
        let out = m.access(5, 0x1020, AccessKind::Read).unwrap(); // same 64B line
        assert_eq!(out.serviced_by, ServicedBy::DelayedHit);
        assert_eq!(out.completes_at, first.completes_at);
        assert_eq!(m.stats().delayed_hits, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = hier();
        // Fill a line, then evict it from L1 by touching 2 more lines that
        // map to the same L1 set (L1: 512 sets, 2 ways -> stride 512*64 = 32768).
        let fill = m.access(0, 0x0, AccessKind::Read).unwrap().completes_at;
        let mut t = fill;
        for i in 1..=2u64 {
            t = m.access(t, i * 32768, AccessKind::Read).unwrap().completes_at;
        }
        // 0x0 is now out of L1 but still in L2 (L2 is 4-way, 4096 sets).
        let out = m.access(t, 0x0, AccessKind::Read).unwrap();
        assert_eq!(out.serviced_by, ServicedBy::L2);
        // 3 (L1) + 10 (L2) + 1 (bus) = 14.
        assert_eq!(out.latency(), 14);
    }

    #[test]
    fn ifetch_hits_in_one_cycle() {
        let mut m = hier();
        let fill = m.access(0, 0x4000, AccessKind::Ifetch).unwrap().completes_at;
        let out = m.access(fill, 0x4000, AccessKind::Ifetch).unwrap();
        assert_eq!(out.latency(), 1);
        assert_eq!(m.stats().l1i.hits, 1);
    }

    #[test]
    fn mshr_exhaustion_rejects_without_state_change() {
        let mut m = hier();
        // Fill all 32 L1D MSHRs with distinct lines at cycle 0.
        for i in 0..32u64 {
            m.access(0, i * 64, AccessKind::Read).unwrap();
        }
        let stats_before = *m.stats();
        let err = m.access(0, 33 * 6400, AccessKind::Read).unwrap_err();
        assert!(matches!(err, RejectReason::L1MshrFull | RejectReason::L2MshrFull));
        assert_eq!(m.stats().l1d, stats_before.l1d);
        assert_eq!(m.stats().mshr_rejections, 1);
    }

    #[test]
    fn accepts_again_after_fills_land() {
        let mut m = hier();
        let mut last = 0;
        for i in 0..32u64 {
            last = m.access(0, i * 64, AccessKind::Read).unwrap().completes_at.max(last);
        }
        assert!(m.access(0, 64 * 64, AccessKind::Read).is_err());
        assert!(m.access(last, 64 * 64, AccessKind::Read).is_ok());
    }

    #[test]
    fn memory_bus_serializes_independent_misses() {
        let mut m = hier();
        let a = m.access(0, 0, AccessKind::Read).unwrap();
        let b = m.access(0, 2 * 1024 * 1024, AccessKind::Read).unwrap();
        // Second line transfer must queue behind the first on the 8B/cyc bus.
        assert!(b.completes_at >= a.completes_at + 8);
    }

    #[test]
    fn writes_allocate_and_dirty_lines_write_back() {
        let mut m = hier();
        let fill = m.access(0, 0x0, AccessKind::Write).unwrap().completes_at;
        // Evict the dirty line from L1: two more lines in set 0.
        let mut t = fill;
        for i in 1..=2u64 {
            t = m.access(t, i * 32768, AccessKind::Read).unwrap().completes_at;
        }
        // The dirty line was written back into L2; evicting it is silent at
        // the memory level only if L2 line stays. Check the line now hits in L2.
        let out = m.access(t, 0x0, AccessKind::Read).unwrap();
        assert_eq!(out.serviced_by, ServicedBy::L2);
    }

    #[test]
    fn would_hit_tracks_residency_and_inflight_state() {
        let mut m = hier();
        assert!(!m.l1d_would_hit(0, 0x1000));
        let out = m.access(0, 0x1000, AccessKind::Read).unwrap();
        // While the fill is in flight the line does not count as a hit.
        assert!(!m.l1d_would_hit(5, 0x1000));
        assert!(m.l1d_would_hit(out.completes_at, 0x1000));
    }

    #[test]
    fn serviced_by_l1_is_the_only_hit_for_hmp() {
        assert!(ServicedBy::L1.is_l1_hit());
        assert!(!ServicedBy::DelayedHit.is_l1_hit());
        assert!(!ServicedBy::L2.is_l1_hit());
        assert!(!ServicedBy::Memory.is_l1_hit());
    }

    #[test]
    fn streaming_reads_within_a_line_hit_after_first() {
        let mut m = hier();
        let mut t = 0;
        let mut l1_hits = 0;
        for i in 0..64u64 {
            let out = m.access(t, i * 8, AccessKind::Read).unwrap();
            t = out.completes_at;
            if out.serviced_by == ServicedBy::L1 {
                l1_hits += 1;
            }
        }
        // 8 lines of 8 words each: 8 misses, 56 hits.
        assert_eq!(l1_hits, 56);
        assert_eq!(m.stats().l1d.misses, 8);
    }
}
