//! Miss-status holding registers.

use crate::Cycle;

/// Result of asking the MSHR file to track a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrGrant {
    /// A new MSHR was allocated for this line.
    Allocated,
    /// The line already has an outstanding fill; this access merged into
    /// it and will complete when that fill arrives (a *delayed hit*).
    Merged {
        /// Cycle at which the outstanding fill lands.
        fill_at: Cycle,
    },
    /// All MSHRs are busy with other lines; the access must retry.
    Exhausted,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    fill_at: Cycle,
    /// Secondary references merged into this entry.
    merged: u32,
}

/// A file of miss-status holding registers for one cache level.
///
/// Each entry tracks one outstanding line fill. Entries free themselves
/// implicitly once simulated time passes their fill cycle (`now >=
/// fill_at`), matching the behaviour of a hardware MSHR released on fill.
///
/// # Examples
///
/// ```
/// use chainiq_mem::{MshrFile, MshrGrant};
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.request(0, 0x40, 100), MshrGrant::Allocated);
/// // Same line, still in flight: a delayed hit.
/// assert_eq!(m.request(5, 0x40, 120), MshrGrant::Merged { fill_at: 100 });
/// assert_eq!(m.request(6, 0x80, 110), MshrGrant::Allocated);
/// // Third distinct line while both entries are live: exhausted.
/// assert_eq!(m.request(7, 0xC0, 130), MshrGrant::Exhausted);
/// // After the first fill lands its entry is reusable.
/// assert_eq!(m.request(100, 0xC0, 200), MshrGrant::Allocated);
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    entries: Vec<Entry>,
    /// One-word summary of the lines in `entries`: bit `hash(line)` is
    /// set for every entry present. `outstanding` is called on every
    /// cache access and almost always finds nothing in flight, so the
    /// common case must not scan the file; a clear filter bit proves
    /// absence. Bits can be stale-set (entries expire lazily), which
    /// only costs a wasted scan, never a wrong answer.
    line_filter: u64,
    peak_in_use: usize,
    total_allocations: u64,
    total_merges: u64,
    total_rejections: u64,
}

/// Maps a line address onto a `line_filter` bit. Line addresses share
/// low zero bits, so spread them with a multiplicative hash first.
#[inline]
fn filter_bit(line: u64) -> u64 {
    1u64 << (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58)
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one register");
        MshrFile {
            capacity,
            entries: Vec::with_capacity(capacity),
            line_filter: 0,
            peak_in_use: 0,
            total_allocations: 0,
            total_merges: 0,
            total_rejections: 0,
        }
    }

    fn expire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.fill_at > now);
        self.line_filter = self.entries.iter().fold(0, |f, e| f | filter_bit(e.line));
    }

    /// Requests tracking for a miss on `line` whose fill would land at
    /// `fill_at`. `now` is the current cycle (used to expire completed
    /// entries).
    pub fn request(&mut self, now: Cycle, line: u64, fill_at: Cycle) -> MshrGrant {
        self.expire(now);
        if let Some(e) = self.entries.iter_mut().find(|e| e.line == line) {
            e.merged += 1;
            self.total_merges += 1;
            return MshrGrant::Merged { fill_at: e.fill_at };
        }
        if self.entries.len() >= self.capacity {
            self.total_rejections += 1;
            return MshrGrant::Exhausted;
        }
        self.entries.push(Entry { line, fill_at, merged: 0 });
        self.line_filter |= filter_bit(line);
        self.total_allocations += 1;
        self.peak_in_use = self.peak_in_use.max(self.entries.len());
        MshrGrant::Allocated
    }

    /// Returns the outstanding fill time for `line`, if one is in flight.
    #[must_use]
    pub fn outstanding(&self, now: Cycle, line: u64) -> Option<Cycle> {
        if self.line_filter & filter_bit(line) == 0 {
            return None; // proven absent without scanning the file
        }
        self.entries.iter().find(|e| e.line == line && e.fill_at > now).map(|e| e.fill_at)
    }

    /// Number of entries currently in flight at `now`.
    #[must_use]
    pub fn in_use(&self, now: Cycle) -> usize {
        self.entries.iter().filter(|e| e.fill_at > now).count()
    }

    /// Highest simultaneous occupancy observed.
    #[must_use]
    pub fn peak_in_use(&self) -> usize {
        self.peak_in_use
    }

    /// Total primary-miss allocations.
    #[must_use]
    pub fn allocations(&self) -> u64 {
        self.total_allocations
    }

    /// Total secondary references merged (delayed hits at this level).
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.total_merges
    }

    /// Total requests rejected because the file was full.
    #[must_use]
    pub fn rejections(&self) -> u64 {
        self.total_rejections
    }
}

impl chainiq_ckpt::Pack for Entry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.line.pack(w);
        self.fill_at.pack(w);
        self.merged.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Entry { line: Pack::unpack(r)?, fill_at: Pack::unpack(r)?, merged: Pack::unpack(r)? })
    }
}

impl chainiq_ckpt::Pack for MshrFile {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.capacity.pack(w);
        self.entries.pack(w);
        self.peak_in_use.pack(w);
        self.total_allocations.pack(w);
        self.total_merges.pack(w);
        self.total_rejections.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let capacity: usize = Pack::unpack(r)?;
        let entries: Vec<Entry> = Pack::unpack(r)?;
        if capacity == 0 || entries.len() > capacity {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("MSHR file: {} entries in capacity {capacity}", entries.len()),
            });
        }
        let line_filter = entries.iter().fold(0, |f, e| f | filter_bit(e.line));
        Ok(MshrFile {
            capacity,
            entries,
            line_filter,
            peak_in_use: Pack::unpack(r)?,
            total_allocations: Pack::unpack(r)?,
            total_merges: Pack::unpack(r)?,
            total_rejections: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_until_full_then_reject() {
        let mut m = MshrFile::new(3);
        for i in 0..3 {
            assert_eq!(m.request(0, i, 50), MshrGrant::Allocated);
        }
        assert_eq!(m.request(0, 99, 50), MshrGrant::Exhausted);
        assert_eq!(m.rejections(), 1);
        assert_eq!(m.peak_in_use(), 3);
    }

    #[test]
    fn merge_returns_original_fill_time() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.request(0, 7, 42), MshrGrant::Allocated);
        assert_eq!(m.request(10, 7, 99), MshrGrant::Merged { fill_at: 42 });
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn entries_expire_when_fill_lands() {
        let mut m = MshrFile::new(1);
        m.request(0, 7, 42);
        assert_eq!(m.in_use(41), 1);
        assert_eq!(m.in_use(42), 0);
        // At cycle 42 the entry is expired, so a new line allocates.
        assert_eq!(m.request(42, 8, 100), MshrGrant::Allocated);
    }

    #[test]
    fn outstanding_reports_inflight_lines_only() {
        let mut m = MshrFile::new(2);
        m.request(0, 7, 42);
        assert_eq!(m.outstanding(10, 7), Some(42));
        assert_eq!(m.outstanding(42, 7), None);
        assert_eq!(m.outstanding(10, 8), None);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_panics() {
        let _ = MshrFile::new(0);
    }

    #[test]
    fn many_merges_into_one_entry() {
        let mut m = MshrFile::new(1);
        m.request(0, 7, 1000);
        for t in 1..50 {
            assert!(matches!(m.request(t, 7, 2000), MshrGrant::Merged { fill_at: 1000 }));
        }
        assert_eq!(m.merges(), 49);
        assert_eq!(m.allocations(), 1);
    }
}
