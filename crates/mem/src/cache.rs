//! Set-associative tag array with true-LRU replacement.

use crate::stats::CacheStats;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Access latency in cycles (tag + data).
    pub latency: u64,
    /// Number of miss-status holding registers (outstanding misses).
    pub mshrs: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, capacity not a
    /// multiple of `assoc * line_bytes`, or non-power-of-two line size).
    #[must_use]
    pub fn num_sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(self.assoc > 0 && self.size_bytes > 0);
        let set_bytes = self.assoc * self.line_bytes;
        assert!(
            self.size_bytes.is_multiple_of(set_bytes),
            "capacity {} is not a multiple of assoc*line {}",
            self.size_bytes,
            set_bytes
        );
        self.size_bytes / set_bytes
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    /// Line address (addr >> line_shift); `u64::MAX` when invalid.
    tag: u64,
    dirty: bool,
    /// LRU timestamp: larger = more recently used.
    last_use: u64,
    valid: bool,
}

/// Result of a tag lookup with fill-on-miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled. If the victim was dirty,
    /// its line address is carried for writeback accounting.
    Miss {
        /// Dirty victim line address evicted by the fill, if any.
        writeback: Option<u64>,
    },
}

/// A set-associative tag/state array with true-LRU replacement.
///
/// The array tracks only tags and dirty bits — the simulator is
/// timing-only, so no data is stored. Fills happen eagerly at lookup time;
/// the *timing* of the fill is handled by the surrounding
/// [`Hierarchy`](crate::Hierarchy) via MSHRs and buses.
///
/// # Examples
///
/// ```
/// use chainiq_mem::{CacheArray, CacheConfig, LookupOutcome};
///
/// let mut c = CacheArray::new(CacheConfig {
///     size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1, mshrs: 4,
/// });
/// assert!(matches!(c.access(0x40, false), LookupOutcome::Miss { .. }));
/// assert_eq!(c.access(0x40, false), LookupOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    line_shift: u32,
    set_mask: u64,
    use_clock: u64,
    stats: CacheStats,
}

impl CacheArray {
    /// Creates an empty (all-invalid) cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; see
    /// [`CacheConfig::num_sets`].
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        let way = Way { tag: u64::MAX, dirty: false, last_use: 0, valid: false };
        CacheArray {
            config,
            sets: vec![vec![way; config.assoc]; num_sets],
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (num_sets - 1) as u64,
            use_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Line address (byte address with the offset bits dropped).
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn set_index(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Checks for presence without changing any state (no LRU update, no
    /// fill, no statistics).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        self.sets[self.set_index(line)].iter().any(|w| w.valid && w.tag == line)
    }

    /// Accesses `addr`, filling the line on a miss (evicting LRU).
    ///
    /// `is_write` marks the line dirty. Returns whether the access hit and
    /// any dirty victim evicted by the fill.
    pub fn access(&mut self, addr: u64, is_write: bool) -> LookupOutcome {
        let line = self.line_addr(addr);
        let set_idx = self.set_index(line);
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == line) {
            way.last_use = clock;
            way.dirty |= is_write;
            self.stats.hits += 1;
            return LookupOutcome::Hit;
        }

        self.stats.misses += 1;
        // Prefer an invalid way; otherwise evict the LRU way.
        let victim_idx =
            set.iter().enumerate().find(|(_, w)| !w.valid).map(|(i, _)| i).unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.last_use)
                    .map(|(i, _)| i)
                    .expect("cache geometry guarantees at least one way per set")
            });
        let victim = &mut set[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(victim.tag << self.line_shift)
        } else {
            None
        };
        *victim = Way { tag: line, dirty: is_write, last_use: clock, valid: true };
        LookupOutcome::Miss { writeback }
    }

    /// Invalidates the line containing `addr`, if present. Returns whether
    /// a line was dropped. Dirty state is discarded (the caller accounts
    /// for any writeback).
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set_idx = self.set_index(line);
        for way in &mut self.sets[set_idx] {
            if way.valid && way.tag == line {
                way.valid = false;
                return true;
            }
        }
        false
    }

    /// Hit/miss/writeback counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Number of valid lines currently resident (O(capacity); for tests).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }
}

impl chainiq_ckpt::Pack for CacheConfig {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.size_bytes.pack(w);
        self.assoc.pack(w);
        self.line_bytes.pack(w);
        self.latency.pack(w);
        self.mshrs.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(CacheConfig {
            size_bytes: Pack::unpack(r)?,
            assoc: Pack::unpack(r)?,
            line_bytes: Pack::unpack(r)?,
            latency: Pack::unpack(r)?,
            mshrs: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for Way {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.dirty.pack(w);
        self.last_use.pack(w);
        self.valid.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Way {
            tag: Pack::unpack(r)?,
            dirty: Pack::unpack(r)?,
            last_use: Pack::unpack(r)?,
            valid: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for CacheArray {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.config.pack(w);
        self.sets.pack(w);
        self.use_clock.pack(w);
        self.stats.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let config = CacheConfig::unpack(r)?;
        let sets: Vec<Vec<Way>> = Pack::unpack(r)?;
        // Re-derive the geometry with explicit checks: `num_sets` panics
        // on inconsistent input, which a corrupted image must never do.
        let geometry_ok = config.line_bytes.is_power_of_two()
            && config.assoc > 0
            && config.size_bytes > 0
            && config.size_bytes.is_multiple_of(config.assoc * config.line_bytes)
            && sets.len() == config.size_bytes / (config.assoc * config.line_bytes)
            && sets.len().is_power_of_two()
            && sets.iter().all(|s| s.len() == config.assoc);
        if !geometry_ok {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: format!("cache geometry: {} sets for {config:?}", sets.len()),
            });
        }
        Ok(CacheArray {
            config,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: (config.size_bytes / (config.assoc * config.line_bytes) - 1) as u64,
            use_clock: Pack::unpack(r)?,
            stats: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray {
        // 4 sets x 2 ways x 64B lines.
        CacheArray::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
            mshrs: 4,
        })
    }

    #[test]
    fn geometry_is_computed() {
        let c = small();
        assert_eq!(c.config().num_sets(), 4);
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = small();
        assert!(matches!(c.access(0x100, false), LookupOutcome::Miss { writeback: None }));
        // Any address in the same 64B line hits.
        assert_eq!(c.access(0x13F, false), LookupOutcome::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Three lines mapping to set 0 in a 2-way set: 0x000, 0x400, 0x800
        // (set index = line & 3; lines 0, 0x10, 0x20 -> set 0).
        c.access(0x000, false);
        c.access(0x400, false);
        c.access(0x000, false); // touch line 0 -> 0x400 is LRU
        assert!(matches!(c.access(0x800, false), LookupOutcome::Miss { .. }));
        assert!(c.probe(0x000), "recently used line must survive");
        assert!(!c.probe(0x400), "LRU line must be evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = small();
        c.access(0x000, true); // dirty
        c.access(0x400, false);
        match c.access(0x800, false) {
            LookupOutcome::Miss { writeback: Some(addr) } => assert_eq!(addr, 0x000),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x400, false);
        match c.access(0x800, false) {
            LookupOutcome::Miss { writeback } => assert_eq!(writeback, None),
            LookupOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn write_hit_marks_line_dirty() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x000, true); // write hit dirties the line
        c.access(0x400, false);
        match c.access(0x800, false) {
            LookupOutcome::Miss { writeback } => assert_eq!(writeback, Some(0x000)),
            LookupOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn probe_does_not_disturb_lru_or_stats() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x400, false);
        let before = *c.stats();
        for _ in 0..10 {
            assert!(c.probe(0x400));
        }
        assert_eq!(*c.stats(), before);
        // 0x000 is still LRU despite the probes of 0x400.
        c.access(0x800, false);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(0x000, true);
        assert!(c.invalidate(0x000));
        assert!(!c.probe(0x000));
        assert!(!c.invalidate(0x000));
    }

    #[test]
    fn occupancy_counts_valid_lines() {
        let mut c = small();
        assert_eq!(c.occupancy(), 0);
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x040, false);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn table1_l1_geometry() {
        // 64 KB, 2-way, 64-byte lines -> 512 sets.
        let cfg =
            CacheConfig { size_bytes: 64 << 10, assoc: 2, line_bytes: 64, latency: 3, mshrs: 32 };
        assert_eq!(cfg.num_sets(), 512);
    }

    #[test]
    fn table1_l2_geometry() {
        // 1 MB, 4-way, 64-byte lines -> 4096 sets.
        let cfg =
            CacheConfig { size_bytes: 1 << 20, assoc: 4, line_bytes: 64, latency: 10, mshrs: 32 };
        assert_eq!(cfg.num_sets(), 4096);
    }
}
