//! Property tests for the memory hierarchy.

use chainiq_devtest::{prop_assert, prop_assert_eq, prop_check};
use chainiq_mem::{
    AccessKind, CacheArray, CacheConfig, Hierarchy, MemConfig, MshrFile, MshrGrant, ServicedBy,
};

fn small_mem() -> Hierarchy {
    // A small hierarchy so random address streams exercise evictions.
    Hierarchy::new(MemConfig {
        l1i: CacheConfig { size_bytes: 4 << 10, assoc: 2, line_bytes: 64, latency: 1, mshrs: 4 },
        l1d: CacheConfig { size_bytes: 4 << 10, assoc: 2, line_bytes: 64, latency: 3, mshrs: 4 },
        l2: CacheConfig { size_bytes: 32 << 10, assoc: 4, line_bytes: 64, latency: 10, mshrs: 8 },
        l1_l2_bytes_per_cycle: 64,
        memory_latency: 100,
        memory_bytes_per_cycle: 8,
    })
}

prop_check! {
    /// Every accepted access completes no earlier than its L1 latency and
    /// resolves its L1 lookup exactly at the L1 latency.
    fn completion_respects_latency(g) {
        let addrs = g.vec(1..200, |g| g.u64(0..1 << 20));
        let mut mem = small_mem();
        let mut now = 0u64;
        for (i, addr) in addrs.iter().enumerate() {
            let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
            if let Ok(out) = mem.access(now, *addr, kind) {
                prop_assert_eq!(out.l1_resolved_at, now + 3);
                prop_assert!(out.completes_at >= now + 3);
                prop_assert!(out.issued_at == now);
                if out.serviced_by == ServicedBy::L1 {
                    prop_assert_eq!(out.completes_at, now + 3);
                } else {
                    prop_assert!(out.completes_at > now + 3);
                }
            }
            now += (addr % 7) + 1;
        }
    }

    /// Re-accessing an address after its fill landed is always an L1 hit
    /// (no intervening accesses to evict it).
    fn fill_then_hit(g) {
        let addr = g.u64(0..1 << 30);
        let mut mem = small_mem();
        let out = mem.access(0, addr, AccessKind::Read).unwrap();
        let again = mem.access(out.completes_at + 1, addr, AccessKind::Read).unwrap();
        prop_assert_eq!(again.serviced_by, ServicedBy::L1);
    }

    /// Hierarchy statistics stay consistent: accesses = hits + misses,
    /// and delayed hits are a subset of L1 misses.
    fn stats_consistency(g) {
        let addrs = g.vec(1..300, |g| g.u64(0..1 << 16));
        let mut mem = small_mem();
        let mut accepted = 0u64;
        for (i, addr) in addrs.into_iter().enumerate() {
            if mem.access(2 * i as u64, addr, AccessKind::Read).is_ok() {
                accepted += 1;
            }
        }
        let s = mem.stats();
        prop_assert_eq!(s.l1d.accesses(), accepted);
        prop_assert!(s.delayed_hits <= s.l1d.misses);
        prop_assert!(s.l2.accesses() <= s.l1d.misses, "L2 sees at most one access per L1 miss");
    }

    /// A cache array never exceeds its capacity and always hits on an
    /// immediate re-access.
    fn cache_array_capacity(g) {
        let addrs = g.vec(1..500, |g| g.u64(0..1 << 16));
        let mut c = CacheArray::new(CacheConfig {
            size_bytes: 2048, assoc: 2, line_bytes: 64, latency: 1, mshrs: 1,
        });
        for addr in addrs {
            c.access(addr, addr % 2 == 0);
            prop_assert!(c.occupancy() <= 32, "2048/64 = 32 lines max");
            prop_assert!(c.probe(addr), "just-accessed line must be resident");
        }
    }

    /// The MSHR file never tracks more lines than its capacity.
    fn mshr_capacity(g) {
        let ops = g.vec(1..200, |g| (g.u64(0..64), g.u64(1..200)));
        let mut m = MshrFile::new(4);
        for (now, (line, dur)) in ops.into_iter().enumerate() {
            let now = now as u64;
            match m.request(now, line, now + dur) {
                MshrGrant::Allocated | MshrGrant::Merged { .. } => {}
                MshrGrant::Exhausted => prop_assert_eq!(m.in_use(now), 4),
            }
            prop_assert!(m.in_use(now) <= 4);
        }
    }

    /// A merged (delayed-hit) access always completes no later than a
    /// fresh miss would have.
    fn delayed_hit_never_slower_than_fresh_miss(g) {
        let offset = g.u64(0..63);
        let gap = g.u64(1..50);
        let mut mem = small_mem();
        let first = mem.access(0, 4096, AccessKind::Read).unwrap();
        let t = gap.min(first.completes_at.saturating_sub(1));
        let merged = mem.access(t, 4096 + offset, AccessKind::Read).unwrap();
        if merged.serviced_by == ServicedBy::DelayedHit {
            prop_assert!(merged.completes_at <= first.completes_at.max(t + 3));
        }
    }
}
