//! Simultaneous multithreading — the study §7 proposes.
//!
//! *"By scheduling across multiple threads, an SMT processor may obtain
//! even larger benefits out of increased IQ sizes. Unlike other
//! prescheduling schemes, the dynamic inter-chain scheduling of our
//! segmented IQ should allow chains from independent threads to exploit
//! thread-level parallelism effectively."*
//!
//! [`SmtPipeline`] runs several hardware threads over one shared
//! instruction queue, function-unit pool, cache hierarchy and branch
//! predictor. Each thread has its own front end, rename map, reorder
//! buffer and load/store queue (threads do not share memory; feed each
//! thread through [`chainiq_workload::AddressSpace`] to keep address
//! spaces disjoint). Fetch rotates round-robin over unstalled threads;
//! dispatch and commit bandwidth are shared; instruction tags are
//! allocated globally, so the queue's oldest-first policies arbitrate
//! across threads by age — chains from independent threads interleave
//! freely, which is exactly the §7 hypothesis under test in
//! `cargo run -p chainiq-bench --bin smt`.

use std::collections::BTreeMap;

use chainiq_core::{
    DispatchInfo, FuPool, InstTag, IssueQueue, OperandPick, SrcOperand, TagMap, Wheel,
};
use chainiq_isa::{Cycle, Inst, OpClass};
use chainiq_mem::Hierarchy;
use chainiq_predict::{HitMissPredictor, HybridBranchPredictor, LeftRightPredictor, Operand};

use crate::config::SimConfig;
use crate::frontend::Frontend;
use crate::lsq::{Lsq, LsqEvent};
use crate::pipeline::EVENT_WHEEL_BUCKETS;
use crate::rename::RenameState;
use crate::rob::{Rob, RobEntry, RobState};
use crate::stats::SimStats;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Complete(InstTag),
    LoadMiss(InstTag),
    LoadFill(InstTag),
}

/// Per-thread machine state.
#[derive(Debug)]
struct ThreadCtx<W> {
    workload: W,
    frontend: Frontend,
    rename: RenameState,
    rob: Rob,
    lsq: Lsq,
    redirect_waiting: Option<InstTag>,
}

/// An SMT processor: `N` threads sharing one instruction queue.
///
/// See the [module docs](self) for the sharing model, and
/// [`SmtPipeline::run`] for the stop condition.
#[derive(Debug)]
pub struct SmtPipeline<Q, W> {
    config: SimConfig,
    iq: Q,
    threads: Vec<ThreadCtx<W>>,
    now: Cycle,
    mem: Hierarchy,
    fus: FuPool,
    bp: HybridBranchPredictor,
    hmp: HitMissPredictor,
    lrp: LeftRightPredictor,
    events: Wheel<Event>,
    /// Scratch for draining `events` without a per-cycle allocation.
    events_scratch: Vec<Event>,
    completion_time: TagMap<Cycle>,
    thread_of: TagMap<u8>,
    store_value: BTreeMap<InstTag, SrcOperand>,
    waiting_stores: BTreeMap<InstTag, Vec<InstTag>>,
    next_tag: u64,
    fetch_rr: usize,
    dispatch_rr: usize,
    /// Scratch for each thread's per-cycle LSQ event report.
    lsq_events: Vec<LsqEvent>,
    stats: SimStats,
}

impl<Q: IssueQueue, W: Iterator<Item = Inst>> SmtPipeline<Q, W> {
    /// Builds an SMT machine over `iq` with one context per workload.
    /// The shared ROB capacity (`config.rob_size`) is partitioned
    /// statically and equally among the threads.
    ///
    /// # Panics
    ///
    /// Panics if `workloads` is empty or has more than 255 entries.
    #[must_use]
    pub fn new(config: SimConfig, iq: Q, workloads: Vec<W>) -> Self {
        assert!(!workloads.is_empty(), "at least one thread");
        assert!(workloads.len() <= 255, "thread id fits a u8");
        let per_thread_rob = (config.rob_size / workloads.len()).max(1);
        let threads = workloads
            .into_iter()
            .map(|workload| ThreadCtx {
                workload,
                frontend: Frontend::new(),
                rename: RenameState::new(),
                rob: Rob::new(per_thread_rob),
                lsq: Lsq::new(config.read_ports, config.write_ports),
                redirect_waiting: None,
            })
            .collect();
        SmtPipeline {
            iq,
            threads,
            now: 0,
            mem: Hierarchy::new(config.mem),
            fus: FuPool::new(config.fus_per_kind, config.issue_width),
            bp: HybridBranchPredictor::new(config.branch),
            hmp: HitMissPredictor::default(),
            lrp: LeftRightPredictor::default(),
            events: Wheel::new(EVENT_WHEEL_BUCKETS),
            events_scratch: Vec::new(),
            completion_time: TagMap::new(),
            thread_of: TagMap::new(),
            store_value: BTreeMap::new(),
            waiting_stores: BTreeMap::new(),
            next_tag: 0,
            fetch_rr: 0,
            dispatch_rr: 0,
            lsq_events: Vec::new(),
            stats: SimStats::default(),
            config,
        }
    }

    /// Number of hardware threads.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The shared queue under test.
    #[must_use]
    pub fn iq(&self) -> &Q {
        &self.iq
    }

    /// Instructions committed by thread `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn committed_of(&self, t: usize) -> u64 {
        self.threads[t].rob.committed()
    }

    fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.rob.committed()).sum()
    }

    /// Runs until the *total* committed count reaches `max_insts` (or the
    /// no-progress guard trips) and returns aggregate statistics; use
    /// [`SmtPipeline::committed_of`] for the per-thread split.
    pub fn run(&mut self, max_insts: u64) -> SimStats {
        let mut last_progress = (self.now, self.total_committed());
        while self.total_committed() < max_insts && self.now < self.config.max_cycles {
            self.step();
            let c = self.total_committed();
            if c != last_progress.1 {
                last_progress = (self.now, c);
            } else if self.now - last_progress.0 > 500_000 {
                self.stats.hung = true;
                break;
            }
        }
        self.snapshot_stats()
    }

    /// Aggregate statistics so far.
    #[must_use]
    pub fn snapshot_stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.cycles = self.now;
        s.committed = self.total_committed();
        s.fetched = self.threads.iter().map(|t| t.frontend.stats().fetched).sum();
        s.branch_lookups = self.bp.stats().lookups;
        s.branch_correct = self.bp.stats().correct;
        s.hmp = *self.hmp.stats();
        s.lrp = self.lrp.stats();
        s.mem = *self.mem.stats();
        s.iq = self.iq.stats();
        s.loads_issued = self.threads.iter().map(|t| t.lsq.stats().loads_issued).sum();
        s.stores_written = self.threads.iter().map(|t| t.lsq.stats().stores_written).sum();
        s.store_forwards = self.threads.iter().map(|t| t.lsq.stats().forwards).sum();
        s.mispredict_stall_cycles =
            self.threads.iter().map(|t| t.frontend.stats().mispredict_stall_cycles).sum();
        s
    }

    fn schedule(&mut self, at: Cycle, ev: Event) {
        self.events.schedule(at.max(self.now + 1), ev);
    }

    fn announce(&mut self, tag: InstTag, ready_at: Cycle) {
        self.iq.announce_ready(tag, ready_at);
        if let Some(t) = self.thread_of.get(tag.0) {
            self.threads[t as usize].rename.announce(tag, ready_at);
        }
        self.completion_time.insert(tag.0, ready_at);
        if !self.waiting_stores.is_empty() {
            if let Some(stores) = self.waiting_stores.remove(&tag) {
                for st in stores {
                    self.schedule(ready_at, Event::Complete(st));
                }
            }
        }
    }

    /// When the data value of store `tag` is (or will be) available:
    /// `Ok(cycle)` when known, `Err(producer)` when the producing
    /// instruction has not announced its result yet (the store must park
    /// in `waiting_stores` keyed by that producer).
    fn store_value_ready_at(&self, tag: InstTag) -> Result<Cycle, InstTag> {
        let Some(data) = self.store_value.get(&tag) else {
            return Ok(self.now + 1);
        };
        let Some(producer) = data.producer else {
            return Ok(self.now + 1);
        };
        if let Some(t) = self.completion_time.get(producer.0) {
            return Ok(t);
        }
        if let Some(t) = data.known_ready_at {
            return Ok(t);
        }
        let thread = self.thread_of.get(producer.0).unwrap_or(0) as usize;
        match self.threads[thread].rob.get(producer) {
            None => Ok(self.now + 1),
            Some(e) if e.state == RobState::Completed => Ok(self.now + 1),
            _ => Err(producer),
        }
    }

    fn complete(&mut self, tag: InstTag) {
        let Some(thread) = self.thread_of.get(tag.0) else {
            return;
        };
        let ctx = &mut self.threads[thread as usize];
        ctx.rob.mark(tag, RobState::Completed);
        self.iq.on_writeback(tag);
        if let Some((pc, [Some(a), Some(b)])) =
            self.threads[thread as usize].rob.get(tag).map(|e| (e.inst.pc, e.src_producers))
        {
            let ta = self.completion_time.get(a.0).unwrap_or(0);
            let tb = self.completion_time.get(b.0).unwrap_or(0);
            let later = if tb > ta { Operand::Right } else { Operand::Left };
            self.lrp.update(pc, later);
        }
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        self.fus.next_cycle();

        // 1. Timing events.
        let mut evs = std::mem::take(&mut self.events_scratch);
        self.events.drain_into(now, &mut evs);
        for ev in evs.drain(..) {
            match ev {
                Event::LoadMiss(tag) => self.iq.on_load_miss(tag),
                Event::LoadFill(tag) => self.iq.on_load_fill(tag),
                Event::Complete(tag) => self.complete(tag),
            }
        }
        self.events_scratch = evs;

        // 2. Queue tick.
        let execution_idle = self.events.is_empty();
        self.iq.tick(now, execution_idle);

        // 3. Memory scheduling, per thread.
        for t in 0..self.threads.len() {
            let mut events = std::mem::take(&mut self.lsq_events);
            self.threads[t].lsq.cycle(now, &mut self.mem, &mut events);
            for ev in events.drain(..) {
                match ev {
                    LsqEvent::LoadResolved {
                        tag,
                        pc,
                        predicted_hit,
                        completes_at,
                        l1_resolved_at,
                        was_l1_hit,
                        ..
                    } => {
                        self.announce(tag, completes_at);
                        self.hmp.update(pc, was_l1_hit);
                        if self.config.use_hmp {
                            self.hmp.record_outcome(predicted_hit, was_l1_hit);
                        }
                        if !was_l1_hit {
                            self.schedule(l1_resolved_at, Event::LoadMiss(tag));
                            self.schedule(completes_at, Event::LoadFill(tag));
                        }
                        self.schedule(completes_at, Event::Complete(tag));
                    }
                    LsqEvent::StoreWritten { .. } => {}
                }
            }
            self.lsq_events = events;
        }

        // 4. Issue from the shared queue.
        for sel in self.iq.select_issue(now, &mut self.fus) {
            let thread = self.thread_of.get(sel.tag.0).unwrap_or(0) as usize;
            self.threads[thread].rob.mark(sel.tag, RobState::Issued);
            match sel.op {
                OpClass::Load | OpClass::Store => {
                    self.threads[thread].lsq.ea_computed(sel.tag, now + 1);
                    if sel.op == OpClass::Store {
                        match self.store_value_ready_at(sel.tag) {
                            Ok(at) => self.schedule(at.max(now + 1), Event::Complete(sel.tag)),
                            Err(producer) => {
                                self.waiting_stores.entry(producer).or_default().push(sel.tag);
                            }
                        }
                    }
                }
                OpClass::Branch => {
                    self.schedule(now + 1, Event::Complete(sel.tag));
                    if self.threads[thread].redirect_waiting == Some(sel.tag) {
                        self.threads[thread].redirect_waiting = None;
                        self.threads[thread].frontend.resume(now + 1);
                    }
                }
                op => {
                    let ready = now + u64::from(op.exec_latency());
                    self.announce(sel.tag, ready);
                    self.schedule(ready, Event::Complete(sel.tag));
                }
            }
        }

        // 5. Dispatch: shared bandwidth, round-robin over threads.
        let n = self.threads.len();
        let mut dispatched = 0;
        let mut exhausted = vec![false; n];
        'outer: while dispatched < self.config.dispatch_width && !exhausted.iter().all(|&e| e) {
            let t = self.dispatch_rr % n;
            self.dispatch_rr += 1;
            if exhausted[t] {
                continue;
            }
            if !self.threads[t].rob.has_space() {
                exhausted[t] = true;
                continue;
            }
            let Some(fetched) = self.threads[t].frontend.take_dispatchable(now) else {
                exhausted[t] = true;
                continue;
            };
            let inst = fetched.inst;
            let tag = InstTag(self.next_tag);
            let mut srcs: Vec<_> =
                inst.srcs().iter().map(|&r| self.threads[t].rename.src(r)).collect();
            let mut store_data: Option<SrcOperand> = None;
            if inst.is_store() && srcs.len() == 2 {
                store_data = srcs.pop();
            }
            let predicted_hit = if inst.is_load() && self.config.use_hmp {
                self.hmp.predict_hit(inst.pc)
            } else {
                false
            };
            let lrp_pick = if self.config.use_lrp && srcs.len() == 2 {
                Some(match self.lrp.predict(inst.pc) {
                    Operand::Left => OperandPick::Left,
                    Operand::Right => OperandPick::Right,
                })
            } else {
                None
            };
            let info = DispatchInfo {
                tag,
                op: inst.op,
                dest: inst.dest,
                srcs: [srcs.first().copied(), srcs.get(1).copied()],
                predicted_hit,
                lrp_pick,
                thread: t as u8,
            };
            if self.iq.dispatch(now, info).is_err() {
                self.threads[t].frontend.undo_take(fetched);
                break 'outer; // shared queue stalled: nobody dispatches
            }
            self.next_tag += 1;
            dispatched += 1;
            self.stats.dispatched += 1;
            self.thread_of.insert(tag.0, t as u8);
            if let Some(mem) = inst.mem {
                self.threads[t].lsq.push(tag, inst.pc, mem.addr, inst.is_store(), predicted_hit);
            }
            if let Some(data) = store_data {
                self.store_value.insert(tag, data);
            }
            if let Some(dest) = inst.dest {
                self.threads[t].rename.define(dest, tag);
            }
            if fetched.mispredicted {
                self.threads[t].redirect_waiting = Some(tag);
            }
            self.threads[t].rob.push(RobEntry {
                tag,
                inst,
                state: RobState::Dispatched,
                src_producers: [
                    srcs.first().and_then(|s| s.producer),
                    srcs.get(1).and_then(|s| s.producer),
                ],
            });
        }

        // 6. Commit: shared bandwidth, split round-robin.
        let share = self.config.commit_width.div_ceil(n);
        for t in 0..n {
            for e in self.threads[t].rob.commit(share) {
                self.threads[t].rename.retire(e.inst.dest, e.tag);
                self.threads[t].lsq.on_commit(e.tag);
                self.completion_time.remove(e.tag.0);
                if e.inst.is_store() {
                    self.store_value.remove(&e.tag);
                }
                self.thread_of.remove(e.tag.0);
            }
        }

        // 7. Fetch: one thread per cycle, round-robin.
        let t = self.fetch_rr % n;
        self.fetch_rr += 1;
        let ctx = &mut self.threads[t];
        ctx.frontend.fetch(now, &self.config, &mut ctx.workload, &mut self.bp, &mut self.mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_baseline::IdealIq;
    use chainiq_core::{SegmentedIq, SegmentedIqConfig};
    use chainiq_workload::{AddressSpace, Bench, SyntheticWorkload};

    // Not a multiple of any predictor-table size, so thread contexts do not
    // alias exactly onto the same PHT/BTB/HMP slots.
    const STRIDE: u64 = (1 << 40) | 0x94_530;

    fn threads(n: usize, bench: Bench) -> Vec<AddressSpace<SyntheticWorkload>> {
        (0..n as u64)
            .map(|t| {
                AddressSpace::new(
                    SyntheticWorkload::from_profile(bench.profile(), 100 + t),
                    t * STRIDE,
                    t * STRIDE,
                )
            })
            .collect()
    }

    #[test]
    fn two_threads_both_make_progress() {
        let cfg = SimConfig::default().rob_for_iq(128);
        let mut smt = SmtPipeline::new(cfg, IdealIq::new(128), threads(2, Bench::Vortex));
        let s = smt.run(6_000);
        assert!(!s.hung);
        assert!(s.committed >= 6_000);
        for t in 0..2 {
            assert!(smt.committed_of(t) > 1_000, "thread {t} starved: {}", smt.committed_of(t));
        }
    }

    #[test]
    fn smt_on_segmented_queue_interleaves_chains() {
        let mut cfg = SimConfig::default().rob_for_iq(256).with_extra_dispatch_cycle();
        cfg.use_hmp = true;
        let qc = SegmentedIqConfig::paper(256, Some(128));
        let mut smt = SmtPipeline::new(cfg, SegmentedIq::new(qc), threads(2, Bench::Swim));
        let s = smt.run(6_000);
        assert!(!s.hung);
        let seg = smt.iq().full_stats();
        assert!(seg.chains.allocations > 0);
        // Both threads' loads created chains; neither thread starved.
        assert!(smt.committed_of(0) > 1_000);
        assert!(smt.committed_of(1) > 1_000);
    }

    #[test]
    fn smt_throughput_exceeds_single_thread_on_latency_bound_code() {
        // gcc spends most of its cycles stalled behind mispredictions;
        // a second context fills those holes. (Bandwidth-bound pairs
        // like equake+equake gain nothing — the 8 B/cycle memory bus is
        // already saturated by one thread — which is itself a correct
        // and useful result.)
        let cfg = SimConfig::default().rob_for_iq(256);
        let mut single = SmtPipeline::new(cfg, IdealIq::new(256), threads(1, Bench::Gcc));
        let s1 = single.run(5_000);
        let mut dual = SmtPipeline::new(cfg, IdealIq::new(256), threads(2, Bench::Gcc));
        let s2 = dual.run(5_000);
        assert!(
            s2.ipc() > 1.3 * s1.ipc(),
            "a second gcc context should fill mispredict holes: {} vs {}",
            s2.ipc(),
            s1.ipc()
        );
    }

    #[test]
    fn one_thread_smt_matches_basic_shape() {
        let cfg = SimConfig::default().rob_for_iq(64);
        let mut smt = SmtPipeline::new(cfg, IdealIq::new(64), threads(1, Bench::Gcc));
        let s = smt.run(3_000);
        assert!(!s.hung);
        assert!(s.ipc() > 0.1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let w: Vec<AddressSpace<SyntheticWorkload>> = vec![];
        let _ = SmtPipeline::new(SimConfig::default(), IdealIq::new(64), w);
    }
}
