//! A small experiment harness: build a machine for a (benchmark, queue
//! design) pair and run it. Used by the `chainiq-bench` binaries that
//! regenerate the paper's tables and figures.

use chainiq_baseline::{DistanceConfig, DistanceIq, IdealIq, PrescheduleConfig, PrescheduledIq};
use chainiq_core::{SegmentedIq, SegmentedIqConfig, SegmentedStats};
use chainiq_workload::{Profile, SyntheticWorkload};

use crate::config::SimConfig;
use crate::pipeline::Pipeline;
use crate::stats::SimStats;

/// Which instruction-queue design to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IqKind {
    /// The idealized monolithic single-cycle queue with this many
    /// entries.
    Ideal(usize),
    /// The segmented dependence-chain queue.
    Segmented(SegmentedIqConfig),
    /// Michaud & Seznec's prescheduling queue.
    Prescheduled(PrescheduleConfig),
    /// Canal & González's distance queue.
    Distance(DistanceConfig),
}

impl IqKind {
    /// Total instruction slots of the design.
    #[must_use]
    pub fn capacity(&self) -> usize {
        match self {
            IqKind::Ideal(n) => *n,
            IqKind::Segmented(c) => c.capacity(),
            IqKind::Prescheduled(c) => c.capacity(),
            IqKind::Distance(c) => c.capacity(),
        }
    }

    /// Whether the §5 extra dispatch cycle applies (it does for both
    /// dependence-based designs, not for the ideal queue).
    #[must_use]
    pub fn pays_extra_dispatch_cycle(&self) -> bool {
        !matches!(self, IqKind::Ideal(_))
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// General machine statistics.
    pub stats: SimStats,
    /// Segmented-queue statistics, when that design ran.
    pub segmented: Option<SegmentedStats>,
}

impl RunResult {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Builds the Table 1 machine around `kind` (applying the ROB-3×-IQ rule
/// and the extra dispatch cycle where due), runs `profile` for
/// `max_insts` committed instructions, and returns the statistics.
///
/// `use_hmp`/`use_lrp` control the §4.3/§4.4 predictor hooks — they only
/// change behaviour for the segmented queue.
#[must_use]
#[allow(clippy::fn_params_excessive_bools)]
pub fn run_one(
    profile: Profile,
    kind: IqKind,
    use_hmp: bool,
    use_lrp: bool,
    max_insts: u64,
    seed: u64,
) -> RunResult {
    let mut config = SimConfig::default().rob_for_iq(kind.capacity());
    config.extra_dispatch_cycle = kind.pays_extra_dispatch_cycle();
    config.use_hmp = use_hmp;
    config.use_lrp = use_lrp;
    let workload = SyntheticWorkload::from_profile(profile, seed);
    match kind {
        IqKind::Ideal(n) => {
            let mut sim = Pipeline::new(config, IdealIq::new(n), workload);
            let stats = sim.run(max_insts);
            RunResult { stats, segmented: None }
        }
        IqKind::Segmented(mut qc) => {
            // The §4.3 predictor replaces two-chain tracking.
            qc.two_chain_tracking = !use_lrp;
            let mut sim = Pipeline::new(config, SegmentedIq::new(qc), workload);
            let stats = sim.run(max_insts);
            let segmented = Some(sim.iq().full_stats());
            RunResult { stats, segmented }
        }
        IqKind::Prescheduled(pc) => {
            let mut sim = Pipeline::new(config, PrescheduledIq::new(pc), workload);
            let stats = sim.run(max_insts);
            RunResult { stats, segmented: None }
        }
        IqKind::Distance(dc) => {
            let mut sim = Pipeline::new(config, DistanceIq::new(dc), workload);
            let stats = sim.run(max_insts);
            RunResult { stats, segmented: None }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_workload::Bench;

    #[test]
    fn capacities() {
        assert_eq!(IqKind::Ideal(512).capacity(), 512);
        assert_eq!(IqKind::Segmented(SegmentedIqConfig::paper(512, None)).capacity(), 512);
        assert_eq!(IqKind::Prescheduled(PrescheduleConfig::paper(8)).capacity(), 128);
    }

    #[test]
    fn extra_dispatch_cycle_rule() {
        assert!(!IqKind::Ideal(512).pays_extra_dispatch_cycle());
        assert!(IqKind::Segmented(SegmentedIqConfig::paper(64, None)).pays_extra_dispatch_cycle());
        assert!(IqKind::Prescheduled(PrescheduleConfig::paper(8)).pays_extra_dispatch_cycle());
    }

    #[test]
    fn a_small_run_commits_and_reports() {
        let r = run_one(Bench::Vortex.profile(), IqKind::Ideal(64), false, false, 2_000, 7);
        assert!(!r.stats.hung, "simulation must make progress");
        assert!(r.stats.committed >= 2_000, "commit width may overshoot slightly");
        assert!(r.ipc() > 0.05);
        assert!(r.segmented.is_none());
    }

    #[test]
    fn segmented_run_reports_chain_stats() {
        let qc = SegmentedIqConfig::paper(64, Some(64));
        let r = run_one(Bench::Vortex.profile(), IqKind::Segmented(qc), true, true, 2_000, 7);
        assert!(!r.stats.hung);
        let seg = r.segmented.expect("segmented stats present");
        assert!(seg.chains.allocations > 0, "loads must have created chains");
    }
}
