//! A small experiment harness: build a machine for a (benchmark, queue
//! design) pair and run it. Used by the `chainiq-bench` binaries that
//! regenerate the paper's tables and figures.
//!
//! # Checkpoint-cached runs
//!
//! [`run_one_ckpt`] adds a warm-start path: the machine state after a
//! warmup prefix of committed instructions is serialized (via the
//! `chainiq-ckpt` [`Snapshot`](chainiq_ckpt::Snapshot) framing) into an
//! on-disk cache keyed by the workload fingerprint and a hash of every
//! configuration input that shapes machine state. A later run with the
//! same key restores the image and skips re-simulating the prefix.
//! Because the snapshot covers *all* mutable state — queue, workload
//! generator (RNG included), caches, predictors, pipeline bookkeeping and
//! accumulated statistics — a warm-started run reports byte-identical
//! results to a cold one. Stale or mismatched images are rejected with a
//! typed error and the run falls back to a cold start on a freshly
//! constructed machine (never on a partially restored one).

use std::path::PathBuf;

use chainiq_baseline::{DistanceConfig, DistanceIq, IdealIq, PrescheduleConfig, PrescheduledIq};
use chainiq_ckpt::{CkptError, CkptHeader, FpHasher, ImageReader, ImageWriter};
use chainiq_core::{IssueQueue, SegmentedIq, SegmentedIqConfig, SegmentedStats};
use chainiq_workload::{Profile, SyntheticWorkload};

use crate::config::SimConfig;
use crate::pipeline::Pipeline;
use crate::stats::SimStats;

/// Which instruction-queue design to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IqKind {
    /// The idealized monolithic single-cycle queue with this many
    /// entries.
    Ideal(usize),
    /// The segmented dependence-chain queue.
    Segmented(SegmentedIqConfig),
    /// Michaud & Seznec's prescheduling queue.
    Prescheduled(PrescheduleConfig),
    /// Canal & González's distance queue.
    Distance(DistanceConfig),
}

impl IqKind {
    /// Total instruction slots of the design.
    #[must_use]
    pub fn capacity(&self) -> usize {
        match self {
            IqKind::Ideal(n) => *n,
            IqKind::Segmented(c) => c.capacity(),
            IqKind::Prescheduled(c) => c.capacity(),
            IqKind::Distance(c) => c.capacity(),
        }
    }

    /// Whether the §5 extra dispatch cycle applies (it does for both
    /// dependence-based designs, not for the ideal queue).
    #[must_use]
    pub fn pays_extra_dispatch_cycle(&self) -> bool {
        !matches!(self, IqKind::Ideal(_))
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// General machine statistics.
    pub stats: SimStats,
    /// Segmented-queue statistics, when that design ran.
    pub segmented: Option<SegmentedStats>,
}

impl RunResult {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Builds the Table 1 machine around `kind` (applying the ROB-3×-IQ rule
/// and the extra dispatch cycle where due), runs `profile` for
/// `max_insts` committed instructions, and returns the statistics.
///
/// `use_hmp`/`use_lrp` control the §4.3/§4.4 predictor hooks — they only
/// change behaviour for the segmented queue.
#[must_use]
#[allow(clippy::fn_params_excessive_bools)]
pub fn run_one(
    profile: Profile,
    kind: IqKind,
    use_hmp: bool,
    use_lrp: bool,
    max_insts: u64,
    seed: u64,
) -> RunResult {
    run_one_ckpt(profile, kind, use_hmp, use_lrp, max_insts, seed, None).0
}

/// Where checkpoint images live and how long the shared warmup prefix is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptPlan {
    /// Directory holding the checkpoint cache. Created on first save.
    pub dir: PathBuf,
    /// Committed instructions covered by the cached prefix. A plan with
    /// `warmup == 0` or `warmup >= max_insts` degenerates to an ordinary
    /// cold run.
    pub warmup: u64,
}

/// What the checkpoint cache did for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptOutcome {
    /// No plan was supplied (or the warmup did not apply); plain cold run.
    Disabled,
    /// A valid image was restored; the warmup prefix was skipped.
    Hit,
    /// No image existed; the run was cold and an image was saved.
    MissSaved,
    /// No image existed and saving one failed; the run was still cold
    /// and correct.
    MissSaveFailed,
    /// An image existed but was rejected (stale, corrupt, or mismatched);
    /// the run restarted cold on a fresh machine and rewrote the image.
    Rejected,
}

/// [`run_one`] with an optional checkpoint cache.
///
/// When `plan` is set, the run first looks for a cached image of the
/// machine state after `plan.warmup` committed instructions, keyed by the
/// workload (profile + seed) and by every configuration input that shapes
/// machine state. On a hit the warmup is skipped; on a miss the warmup is
/// simulated once and the image saved for future runs. Either way the
/// reported statistics are identical to a cold [`run_one`]: the image
/// carries complete machine state, and a cold run executes the exact same
/// step sequence whether or not it pauses to save.
#[must_use]
#[allow(clippy::fn_params_excessive_bools)]
pub fn run_one_ckpt(
    profile: Profile,
    kind: IqKind,
    use_hmp: bool,
    use_lrp: bool,
    max_insts: u64,
    seed: u64,
    plan: Option<&CkptPlan>,
) -> (RunResult, CkptOutcome) {
    let mut config = SimConfig::default().rob_for_iq(kind.capacity());
    config.extra_dispatch_cycle = kind.pays_extra_dispatch_cycle();
    config.use_hmp = use_hmp;
    config.use_lrp = use_lrp;
    // Apply queue-level knobs *before* hashing so the cache key covers
    // the configuration that actually runs.
    let kind = match kind {
        IqKind::Segmented(mut qc) => {
            // The §4.3 predictor replaces two-chain tracking.
            qc.two_chain_tracking = !use_lrp;
            IqKind::Segmented(qc)
        }
        other => other,
    };
    let workload_fp = {
        let mut h = FpHasher::new();
        h.write_str(&format!("{profile:?}"));
        h.write_u64(seed);
        h.finish()
    };
    let config_hash = {
        let mut h = FpHasher::new();
        h.write_str(&format!("{config:?}"));
        h.write_str(&format!("{kind:?}"));
        h.write_u64(u64::from(chainiq_ckpt::FORMAT_VERSION));
        h.finish()
    };
    match kind {
        IqKind::Ideal(n) => {
            let (_, stats, outcome) = run_kind(
                config,
                || IdealIq::new(n),
                &profile,
                seed,
                max_insts,
                plan,
                workload_fp,
                config_hash,
            );
            (RunResult { stats, segmented: None }, outcome)
        }
        IqKind::Segmented(qc) => {
            let (sim, stats, outcome) = run_kind(
                config,
                || SegmentedIq::new(qc),
                &profile,
                seed,
                max_insts,
                plan,
                workload_fp,
                config_hash,
            );
            let segmented = Some(sim.iq().full_stats());
            (RunResult { stats, segmented }, outcome)
        }
        IqKind::Prescheduled(pc) => {
            let (_, stats, outcome) = run_kind(
                config,
                || PrescheduledIq::new(pc),
                &profile,
                seed,
                max_insts,
                plan,
                workload_fp,
                config_hash,
            );
            (RunResult { stats, segmented: None }, outcome)
        }
        IqKind::Distance(dc) => {
            let (_, stats, outcome) = run_kind(
                config,
                || DistanceIq::new(dc),
                &profile,
                seed,
                max_insts,
                plan,
                workload_fp,
                config_hash,
            );
            (RunResult { stats, segmented: None }, outcome)
        }
    }
}

/// Builds the machine, consults the checkpoint cache, and runs to
/// `max_insts` committed instructions. Returns the finished machine so
/// queue-specific statistics can still be read off it.
#[allow(clippy::too_many_arguments)]
fn run_kind<Q>(
    config: SimConfig,
    make_iq: impl Fn() -> Q,
    profile: &Profile,
    seed: u64,
    max_insts: u64,
    plan: Option<&CkptPlan>,
    workload_fp: u64,
    config_hash: u64,
) -> (Pipeline<Q, SyntheticWorkload>, SimStats, CkptOutcome)
where
    Q: IssueQueue + chainiq_ckpt::Snapshot,
{
    let fresh =
        || Pipeline::new(config, make_iq(), SyntheticWorkload::from_profile(profile.clone(), seed));
    let mut sim = fresh();
    let Some(plan) = plan.filter(|p| p.warmup > 0 && p.warmup < max_insts) else {
        let stats = sim.run(max_insts);
        return (sim, stats, CkptOutcome::Disabled);
    };
    let header = CkptHeader { workload_fp, config_hash, warmup: plan.warmup };
    let path =
        plan.dir.join(format!("ckpt-{workload_fp:016x}-{config_hash:016x}-{}.bin", plan.warmup));
    let attempt = (|| -> Result<(), CkptError> {
        let bytes = chainiq_ckpt::read_image(&path)?;
        let mut img = ImageReader::parse(&bytes)?;
        img.expect_key(header)?;
        img.section(&mut sim)?;
        img.finish()
    })();
    match attempt {
        Ok(()) => {
            let stats = sim.run(max_insts);
            (sim, stats, CkptOutcome::Hit)
        }
        Err(err) => {
            let rejected =
                !matches!(&err, CkptError::Io(e) if e.kind() == std::io::ErrorKind::NotFound);
            if rejected {
                // Never continue on a possibly part-restored machine.
                eprintln!("warning: rejecting checkpoint {}: {err}", path.display());
                sim = fresh();
            }
            let _ = sim.run(plan.warmup);
            let mut image = ImageWriter::new(header);
            image.section(&sim);
            let outcome = match chainiq_ckpt::write_image_atomic(&path, &image.finish()) {
                Ok(()) if rejected => CkptOutcome::Rejected,
                Ok(()) => CkptOutcome::MissSaved,
                Err(werr) => {
                    eprintln!("warning: could not save checkpoint {}: {werr}", path.display());
                    CkptOutcome::MissSaveFailed
                }
            };
            let stats = sim.run(max_insts);
            (sim, stats, outcome)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_workload::Bench;

    #[test]
    fn capacities() {
        assert_eq!(IqKind::Ideal(512).capacity(), 512);
        assert_eq!(IqKind::Segmented(SegmentedIqConfig::paper(512, None)).capacity(), 512);
        assert_eq!(IqKind::Prescheduled(PrescheduleConfig::paper(8)).capacity(), 128);
    }

    #[test]
    fn extra_dispatch_cycle_rule() {
        assert!(!IqKind::Ideal(512).pays_extra_dispatch_cycle());
        assert!(IqKind::Segmented(SegmentedIqConfig::paper(64, None)).pays_extra_dispatch_cycle());
        assert!(IqKind::Prescheduled(PrescheduleConfig::paper(8)).pays_extra_dispatch_cycle());
    }

    #[test]
    fn a_small_run_commits_and_reports() {
        let r = run_one(Bench::Vortex.profile(), IqKind::Ideal(64), false, false, 2_000, 7);
        assert!(!r.stats.hung, "simulation must make progress");
        assert!(r.stats.committed >= 2_000, "commit width may overshoot slightly");
        assert!(r.ipc() > 0.05);
        assert!(r.segmented.is_none());
    }

    #[test]
    fn segmented_run_reports_chain_stats() {
        let qc = SegmentedIqConfig::paper(64, Some(64));
        let r = run_one(Bench::Vortex.profile(), IqKind::Segmented(qc), true, true, 2_000, 7);
        assert!(!r.stats.hung);
        let seg = r.segmented.expect("segmented stats present");
        assert!(seg.chains.allocations > 0, "loads must have created chains");
    }

    /// A scratch checkpoint directory, removed on drop.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("chainiq-cpu-ckpt-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn stats_digest(r: &RunResult) -> String {
        format!("{:?} {:?}", r.stats, r.segmented)
    }

    #[test]
    fn ckpt_miss_then_hit_matches_cold_run() {
        let scratch = ScratchDir::new("miss-then-hit");
        let plan = CkptPlan { dir: scratch.0.clone(), warmup: 1_000 };
        let qc = SegmentedIqConfig::paper(64, Some(64));
        let kind = IqKind::Segmented(qc);
        let cold = run_one(Bench::Twolf.profile(), kind, true, false, 3_000, 11);

        let (first, o1) =
            run_one_ckpt(Bench::Twolf.profile(), kind, true, false, 3_000, 11, Some(&plan));
        assert_eq!(o1, CkptOutcome::MissSaved);
        assert_eq!(stats_digest(&first), stats_digest(&cold), "cold run with save must match");

        let (second, o2) =
            run_one_ckpt(Bench::Twolf.profile(), kind, true, false, 3_000, 11, Some(&plan));
        assert_eq!(o2, CkptOutcome::Hit);
        assert_eq!(stats_digest(&second), stats_digest(&cold), "warm-started run must match");
    }

    #[test]
    fn ckpt_key_separates_configs_and_workloads() {
        let scratch = ScratchDir::new("key-separation");
        let plan = CkptPlan { dir: scratch.0.clone(), warmup: 500 };
        let (_, o1) = run_one_ckpt(
            Bench::Vortex.profile(),
            IqKind::Ideal(64),
            false,
            false,
            1_500,
            7,
            Some(&plan),
        );
        assert_eq!(o1, CkptOutcome::MissSaved);
        // Different queue geometry: different config hash, so a miss.
        let (_, o2) = run_one_ckpt(
            Bench::Vortex.profile(),
            IqKind::Ideal(32),
            false,
            false,
            1_500,
            7,
            Some(&plan),
        );
        assert_eq!(o2, CkptOutcome::MissSaved);
        // Different seed: different workload fingerprint, so a miss.
        let (_, o3) = run_one_ckpt(
            Bench::Vortex.profile(),
            IqKind::Ideal(64),
            false,
            false,
            1_500,
            8,
            Some(&plan),
        );
        assert_eq!(o3, CkptOutcome::MissSaved);
        // The original point again: now a hit.
        let (_, o4) = run_one_ckpt(
            Bench::Vortex.profile(),
            IqKind::Ideal(64),
            false,
            false,
            1_500,
            7,
            Some(&plan),
        );
        assert_eq!(o4, CkptOutcome::Hit);
    }

    #[test]
    fn ckpt_degenerate_warmup_is_disabled() {
        let scratch = ScratchDir::new("degenerate");
        for warmup in [0, 1_500, 9_999] {
            let plan = CkptPlan { dir: scratch.0.clone(), warmup };
            let (_, o) = run_one_ckpt(
                Bench::Vortex.profile(),
                IqKind::Ideal(64),
                false,
                false,
                1_500,
                7,
                Some(&plan),
            );
            assert_eq!(o, CkptOutcome::Disabled, "warmup {warmup} must disable the cache");
        }
        assert!(!scratch.0.exists(), "disabled runs must not create the cache directory");
    }

    #[test]
    fn ckpt_corrupt_image_is_rejected_and_rewritten() {
        let scratch = ScratchDir::new("corrupt");
        let plan = CkptPlan { dir: scratch.0.clone(), warmup: 500 };
        let kind = IqKind::Ideal(64);
        let cold = run_one(Bench::Gcc.profile(), kind, false, false, 1_500, 3);
        let (_, o1) = run_one_ckpt(Bench::Gcc.profile(), kind, false, false, 1_500, 3, Some(&plan));
        assert_eq!(o1, CkptOutcome::MissSaved);

        // Flip one payload byte in the saved image.
        let entries: Vec<_> = std::fs::read_dir(&scratch.0).unwrap().collect();
        assert_eq!(entries.len(), 1);
        let path = entries[0].as_ref().unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (r, o2) = run_one_ckpt(Bench::Gcc.profile(), kind, false, false, 1_500, 3, Some(&plan));
        assert_eq!(o2, CkptOutcome::Rejected);
        assert_eq!(stats_digest(&r), stats_digest(&cold), "rejected run must restart cold");

        // The rewrite repaired the cache: next run hits.
        let (r2, o3) =
            run_one_ckpt(Bench::Gcc.profile(), kind, false, false, 1_500, 3, Some(&plan));
        assert_eq!(o3, CkptOutcome::Hit);
        assert_eq!(stats_digest(&r2), stats_digest(&cold));
    }
}
