//! Cycle-level out-of-order superscalar core, generic over the
//! instruction-queue design.
//!
//! Reproduces the §5 evaluation machine of *"A Scalable Instruction Queue
//! Design Using Dependence Chains"* (ISCA 2002): an 8-wide,
//! deeply-pipelined out-of-order processor with the Table 1 parameters —
//! 15-cycle front end, hybrid branch predictor, generous function units,
//! a reorder buffer three times the IQ size, a separate load/store queue
//! that enforces memory dependences, and the event-driven cache hierarchy
//! of `chainiq-mem`.
//!
//! The IQ itself is a type parameter implementing
//! [`chainiq_core::IssueQueue`], so the same pipeline runs the segmented
//! dependence-chain queue, the ideal monolithic queue, and the
//! prescheduling baseline — exactly the comparison the paper draws.
//!
//! The timing model is trace-style: the workload supplies resolved
//! dynamic instructions, branch predictors are trained on real outcomes,
//! and a misprediction stalls fetch until the branch resolves (charging
//! the full in-flight + front-end refill penalty). Wrong-path *cache
//! pollution* is not modelled; see `DESIGN.md` §2.
//!
//! # Examples
//!
//! ```
//! use chainiq_baseline::IdealIq;
//! use chainiq_cpu::{Pipeline, SimConfig};
//! use chainiq_workload::{Bench, SyntheticWorkload};
//!
//! let workload = SyntheticWorkload::from_profile(Bench::Vortex.profile(), 1);
//! let mut sim = Pipeline::new(SimConfig::default(), IdealIq::new(64), workload);
//! let result = sim.run(5_000);
//! assert!(result.ipc() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod frontend;
mod harness;
mod lsq;
mod pipeline;
mod rename;
mod rob;
mod smt;
mod stats;

pub use config::SimConfig;
pub use harness::{run_one, run_one_ckpt, CkptOutcome, CkptPlan, IqKind, RunResult};
pub use pipeline::Pipeline;
pub use smt::SmtPipeline;
pub use stats::SimStats;
