//! Machine configuration (Table 1 defaults).

use chainiq_mem::MemConfig;
use chainiq_predict::BranchPredictorConfig;

/// Processor parameters. `SimConfig::default()` reproduces Table 1 of the
/// paper exactly; every field can be overridden for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Instructions fetched per cycle (Table 1: up to 8).
    pub fetch_width: usize,
    /// Branches fetched per cycle (Table 1: max 3).
    pub max_branches_per_fetch: usize,
    /// Whether fetch stops at a predicted-taken branch within a cycle
    /// (line-based fetch, as in the 21264).
    pub fetch_stops_at_taken: bool,
    /// Front-end depth in cycles: fetch-to-decode plus decode-to-dispatch
    /// (Table 1: 10 + 5).
    pub front_end_depth: u64,
    /// Extra dispatch-stage cycle charged to the segmented and
    /// prescheduling queues "to account for added complexity" (§5).
    pub extra_dispatch_cycle: bool,
    /// Instructions renamed/dispatched per cycle (Table 1: 8).
    pub dispatch_width: usize,
    /// Instructions issued per cycle (Table 1: 8).
    pub issue_width: usize,
    /// Instructions committed per cycle (Table 1: 8).
    pub commit_width: usize,
    /// Function units of each kind (Table 1: 8).
    pub fus_per_kind: usize,
    /// Reorder-buffer entries. §5 sets the ROB to three times the IQ
    /// size; [`SimConfig::rob_for_iq`] applies that rule.
    pub rob_size: usize,
    /// Data-cache read ports per cycle (Table 1: 8).
    pub read_ports: usize,
    /// Data-cache write ports per cycle (Table 1: 8).
    pub write_ports: usize,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Branch predictor parameters.
    pub branch: BranchPredictorConfig,
    /// Consult the hit/miss predictor for chain-creation decisions
    /// (§4.4). The predictor always trains; this gates whether dispatch
    /// *uses* it.
    pub use_hmp: bool,
    /// Consult the left/right operand predictor and restrict instructions
    /// to a single chain (§4.3).
    pub use_lrp: bool,
    /// Hard cycle limit as a runaway guard.
    pub max_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 8,
            max_branches_per_fetch: 3,
            fetch_stops_at_taken: true,
            front_end_depth: 15,
            extra_dispatch_cycle: false,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            fus_per_kind: 8,
            rob_size: 3 * 512,
            read_ports: 8,
            write_ports: 8,
            mem: MemConfig::default(),
            branch: BranchPredictorConfig::default(),
            use_hmp: false,
            use_lrp: false,
            max_cycles: u64::MAX,
        }
    }
}

impl SimConfig {
    /// Applies the §5 rule "ROB three times the size of the IQ".
    #[must_use]
    pub fn rob_for_iq(mut self, iq_entries: usize) -> Self {
        self.rob_size = 3 * iq_entries;
        self
    }

    /// Enables the extra dispatch cycle charged to dependence-based
    /// queues (§5).
    #[must_use]
    pub fn with_extra_dispatch_cycle(mut self) -> Self {
        self.extra_dispatch_cycle = true;
        self
    }

    /// Enables the hit/miss predictor hook (§4.4).
    #[must_use]
    pub fn with_hmp(mut self) -> Self {
        self.use_hmp = true;
        self
    }

    /// Enables the left/right operand predictor hook (§4.3).
    #[must_use]
    pub fn with_lrp(mut self) -> Self {
        self.use_lrp = true;
        self
    }

    /// Total front-end latency from fetch to dispatch, including the
    /// extra complexity cycle if configured.
    #[must_use]
    pub fn dispatch_latency(&self) -> u64 {
        self.front_end_depth + u64::from(self.extra_dispatch_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.max_branches_per_fetch, 3);
        assert_eq!(c.front_end_depth, 15);
        assert_eq!(c.dispatch_width, 8);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.commit_width, 8);
        assert_eq!(c.fus_per_kind, 8);
        assert_eq!(c.read_ports, 8);
        assert_eq!(c.write_ports, 8);
        assert!(!c.use_hmp && !c.use_lrp);
    }

    #[test]
    fn rob_rule() {
        let c = SimConfig::default().rob_for_iq(128);
        assert_eq!(c.rob_size, 384);
    }

    #[test]
    fn dispatch_latency_includes_extra_cycle() {
        assert_eq!(SimConfig::default().dispatch_latency(), 15);
        assert_eq!(SimConfig::default().with_extra_dispatch_cycle().dispatch_latency(), 16);
    }
}
