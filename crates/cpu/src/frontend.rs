//! The fetch/decode front end.
//!
//! Models Table 1's front end: 8-wide fetch with at most 3 branches per
//! cycle, a 15-cycle fetch-to-dispatch pipeline, the L1 instruction
//! cache, and the hybrid branch predictor. The stream is trace-style:
//! on a misprediction, fetch stalls until the branch resolves, charging
//! the full in-flight latency plus the pipeline refill — the same penalty
//! an execution-driven model pays, minus wrong-path cache pollution
//! (see `DESIGN.md` §2).

use std::collections::VecDeque;

use chainiq_isa::{Cycle, Inst};
use chainiq_mem::{AccessKind, Hierarchy};
use chainiq_predict::HybridBranchPredictor;

use crate::config::SimConfig;

/// An instruction travelling toward dispatch.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchedInst {
    pub inst: Inst,
    /// Cycle at which it reaches the dispatch stage.
    pub dispatch_ready_at: Cycle,
    /// The branch predictor got this (branch) instruction wrong; fetch is
    /// stalled behind it until it resolves.
    pub mispredicted: bool,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct FrontendStats {
    pub fetched: u64,
    /// Cycles fetch was stalled behind an unresolved misprediction.
    pub mispredict_stall_cycles: u64,
    /// Cycles fetch waited on an instruction-cache fill.
    pub icache_stall_cycles: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct Frontend {
    pipe: VecDeque<FetchedInst>,
    /// Instruction pulled from the workload but not yet accepted into the
    /// pipe (stopped by a fetch limit).
    pending: Option<Inst>,
    /// Fetch is stalled behind a mispredicted branch.
    stalled: bool,
    /// Earliest cycle fetch may run (icache fill / redirect).
    resume_at: Cycle,
    last_fetch_line: Option<u64>,
    stats: FrontendStats,
}

impl Frontend {
    pub(crate) fn new() -> Self {
        Frontend {
            pipe: VecDeque::new(),
            pending: None,
            stalled: false,
            resume_at: 0,
            last_fetch_line: None,
            stats: FrontendStats::default(),
        }
    }

    pub(crate) fn stats(&self) -> FrontendStats {
        self.stats
    }

    #[cfg(test)]
    pub(crate) fn in_flight(&self) -> usize {
        self.pipe.len()
    }

    /// A mispredicted branch resolved; fetch restarts at `at`.
    pub(crate) fn resume(&mut self, at: Cycle) {
        self.stalled = false;
        self.resume_at = self.resume_at.max(at);
    }

    /// Pops the next instruction that has reached dispatch, if any.
    pub(crate) fn take_dispatchable(&mut self, now: Cycle) -> Option<FetchedInst> {
        match self.pipe.front() {
            Some(f) if f.dispatch_ready_at <= now => self.pipe.pop_front(),
            _ => None,
        }
    }

    /// Puts an instruction back at the head (dispatch stalled on it).
    pub(crate) fn undo_take(&mut self, f: FetchedInst) {
        self.pipe.push_front(f);
    }

    /// Fetches up to `fetch_width` instructions this cycle.
    pub(crate) fn fetch(
        &mut self,
        now: Cycle,
        config: &SimConfig,
        workload: &mut impl Iterator<Item = Inst>,
        bp: &mut HybridBranchPredictor,
        mem: &mut Hierarchy,
    ) {
        if self.stalled {
            self.stats.mispredict_stall_cycles += 1;
            return;
        }
        if now < self.resume_at {
            self.stats.icache_stall_cycles += 1;
            return;
        }
        let mut fetched = 0usize;
        let mut branches = 0usize;
        while fetched < config.fetch_width {
            let Some(inst) = self.pending.take().or_else(|| workload.next()) else {
                break; // workload exhausted
            };
            // Instruction cache: one access per new line.
            let line = inst.pc >> 6;
            if self.last_fetch_line != Some(line) {
                match mem.access(now, inst.pc, AccessKind::Ifetch) {
                    Ok(out) => {
                        self.last_fetch_line = Some(line);
                        if out.completes_at > now + 1 {
                            // Icache miss: hold this instruction and stall
                            // until the fill lands.
                            self.resume_at = out.completes_at;
                            self.pending = Some(inst);
                            break;
                        }
                    }
                    Err(_) => {
                        self.pending = Some(inst);
                        break; // MSHRs busy; retry next cycle
                    }
                }
            }
            let mut mispredicted = false;
            let mut predicted_taken = false;
            if let Some(b) = inst.branch {
                if branches >= config.max_branches_per_fetch {
                    self.pending = Some(inst);
                    break;
                }
                branches += 1;
                let pred = if b.unconditional {
                    bp.predict_and_train_unconditional(inst.pc, b.target)
                } else {
                    bp.predict_and_train(inst.pc, b.taken, b.target)
                };
                mispredicted = !pred.is_correct(b.taken, b.target);
                predicted_taken = pred.taken;
                if b.taken {
                    // The next instruction comes from the target line.
                    self.last_fetch_line = None;
                }
            }
            self.pipe.push_back(FetchedInst {
                inst,
                dispatch_ready_at: now + config.dispatch_latency(),
                mispredicted,
            });
            self.stats.fetched += 1;
            fetched += 1;
            if mispredicted {
                self.stalled = true;
                break;
            }
            if predicted_taken && config.fetch_stops_at_taken {
                break;
            }
        }
    }
}

impl chainiq_ckpt::Pack for FetchedInst {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.inst.pack(w);
        self.dispatch_ready_at.pack(w);
        self.mispredicted.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(FetchedInst {
            inst: Pack::unpack(r)?,
            dispatch_ready_at: Pack::unpack(r)?,
            mispredicted: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for FrontendStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.fetched.pack(w);
        self.mispredict_stall_cycles.pack(w);
        self.icache_stall_cycles.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(FrontendStats {
            fetched: Pack::unpack(r)?,
            mispredict_stall_cycles: Pack::unpack(r)?,
            icache_stall_cycles: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for Frontend {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.pipe.pack(w);
        self.pending.pack(w);
        self.stalled.pack(w);
        self.resume_at.pack(w);
        self.last_fetch_line.pack(w);
        self.stats.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Frontend {
            pipe: Pack::unpack(r)?,
            pending: Pack::unpack(r)?,
            stalled: Pack::unpack(r)?,
            resume_at: Pack::unpack(r)?,
            last_fetch_line: Pack::unpack(r)?,
            stats: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_isa::ArchReg;
    use chainiq_mem::MemConfig;

    fn setup() -> (SimConfig, HybridBranchPredictor, Hierarchy) {
        (
            SimConfig::default(),
            HybridBranchPredictor::default(),
            Hierarchy::new(MemConfig::default()),
        )
    }

    fn alu_stream(n: usize) -> Vec<Inst> {
        // All in one icache line after the first fill.
        (0..n).map(|i| Inst::alu(0x1000 + (i as u64 % 16) * 4, ArchReg::int(1), &[])).collect()
    }

    #[test]
    fn fetch_width_limits_per_cycle() {
        let (cfg, mut bp, mut mem) = setup();
        let mut fe = Frontend::new();
        let mut w = alu_stream(32).into_iter();
        // Warm the icache first (cold fetch stalls on the miss).
        mem.access(0, 0x1000, AccessKind::Ifetch).unwrap();
        let warm = mem.access(0, 0x1000, AccessKind::Ifetch).unwrap().completes_at;
        fe.fetch(warm + 1, &cfg, &mut w, &mut bp, &mut mem);
        assert_eq!(fe.in_flight(), 8);
    }

    #[test]
    fn instructions_arrive_after_frontend_depth() {
        let (cfg, mut bp, mut mem) = setup();
        let mut fe = Frontend::new();
        let mut w = alu_stream(4).into_iter();
        mem.access(0, 0x1000, AccessKind::Ifetch).unwrap();
        let t0 = 200;
        fe.fetch(t0, &cfg, &mut w, &mut bp, &mut mem);
        assert!(fe.take_dispatchable(t0 + 14).is_none());
        assert!(fe.take_dispatchable(t0 + 15).is_some());
    }

    #[test]
    fn misprediction_stalls_until_resume() {
        let (cfg, mut bp, mut mem) = setup();
        let mut fe = Frontend::new();
        mem.access(0, 0x1000, AccessKind::Ifetch).unwrap();
        // A cold conditional taken branch is surely mispredicted (no BTB entry).
        let insts = vec![
            Inst::branch(0x1000, Some(ArchReg::int(1)), true, 0x2000),
            Inst::alu(0x2000, ArchReg::int(2), &[]),
        ];
        let mut w = insts.into_iter();
        fe.fetch(200, &cfg, &mut w, &mut bp, &mut mem);
        assert_eq!(fe.in_flight(), 1, "fetch stops after the mispredicted branch");
        fe.fetch(201, &cfg, &mut w, &mut bp, &mut mem);
        assert_eq!(fe.in_flight(), 1, "stalled");
        assert!(fe.stats().mispredict_stall_cycles > 0);
        fe.resume(210);
        // The target is in a different line: the first post-redirect fetch
        // may stall on the icache; eventually the instruction arrives.
        for t in 210..450 {
            fe.fetch(t, &cfg, &mut w, &mut bp, &mut mem);
        }
        assert_eq!(fe.in_flight(), 2);
    }

    #[test]
    fn branch_limit_caps_fetch_group() {
        let (cfg, mut bp, mut mem) = setup();
        let mut fe = Frontend::new();
        mem.access(0, 0x1000, AccessKind::Ifetch).unwrap();
        // Not-taken branches (correctly predicted once warm) so fetch
        // does not stop at a taken branch.
        let insts: Vec<Inst> = (0..8)
            .map(|i| Inst::branch(0x1000 + i * 4, Some(ArchReg::int(1)), false, 0x3000))
            .collect();
        // Warm the predictor so none mispredict.
        for inst in &insts {
            let b = inst.branch.unwrap();
            for _ in 0..4 {
                bp.predict_and_train(inst.pc, b.taken, b.target);
            }
        }
        let mut w = insts.into_iter();
        fe.fetch(300, &cfg, &mut w, &mut bp, &mut mem);
        assert_eq!(fe.in_flight(), 3, "max 3 branches per cycle");
    }

    #[test]
    fn undo_take_preserves_order() {
        let (cfg, mut bp, mut mem) = setup();
        let mut fe = Frontend::new();
        let warm = mem.access(0, 0x1000, AccessKind::Ifetch).unwrap().completes_at;
        let mut w = alu_stream(2).into_iter();
        fe.fetch(warm + 1, &cfg, &mut w, &mut bp, &mut mem);
        let a = fe.take_dispatchable(warm + 200).unwrap();
        fe.undo_take(a);
        let b = fe.take_dispatchable(warm + 200).unwrap();
        assert_eq!(a.inst, b.inst);
    }
}
