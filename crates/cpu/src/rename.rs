//! Register renaming: architectural register → in-flight producer.

use chainiq_core::{InstTag, SrcOperand, TagMap};
use chainiq_isa::{ArchReg, Cycle, NUM_ARCH_REGS};

/// The rename map plus a scoreboard of announced completion times.
///
/// Timing-only renaming: each architectural register maps to the newest
/// in-flight producer's tag (the wakeup tag). The scoreboard records the
/// announced completion time of each in-flight instruction so that
/// consumers dispatched *after* the announcement carry `known_ready_at`
/// instead of waiting for a broadcast that already happened.
#[derive(Debug, Clone)]
pub(crate) struct RenameState {
    map: [Option<InstTag>; NUM_ARCH_REGS],
    ready_time: TagMap<Cycle>,
}

impl RenameState {
    pub(crate) fn new() -> Self {
        RenameState { map: [None; NUM_ARCH_REGS], ready_time: TagMap::new() }
    }

    /// Renames one source register.
    pub(crate) fn src(&self, reg: ArchReg) -> SrcOperand {
        match self.map[reg.index()] {
            None => SrcOperand::ready(reg),
            Some(tag) => {
                SrcOperand { reg, producer: Some(tag), known_ready_at: self.ready_time.get(tag.0) }
            }
        }
    }

    /// Registers `tag` as the newest producer of `reg`.
    pub(crate) fn define(&mut self, reg: ArchReg, tag: InstTag) {
        self.map[reg.index()] = Some(tag);
    }

    /// Records the announced completion time of `tag`.
    pub(crate) fn announce(&mut self, tag: InstTag, ready_at: Cycle) {
        self.ready_time.insert(tag.0, ready_at);
    }

    /// The announced completion time of `tag`, if known.
    #[cfg(test)]
    pub(crate) fn ready_time(&self, tag: InstTag) -> Option<Cycle> {
        self.ready_time.get(tag.0)
    }

    /// Retires `tag`: if it is still the newest producer of `reg`, the
    /// committed register file now holds the value.
    pub(crate) fn retire(&mut self, reg: Option<ArchReg>, tag: InstTag) {
        if let Some(reg) = reg {
            if self.map[reg.index()] == Some(tag) {
                self.map[reg.index()] = None;
            }
        }
        self.ready_time.remove(tag.0);
    }

    /// Clears all in-flight state (pipeline flush).
    #[allow(dead_code)]
    pub(crate) fn reset(&mut self) {
        self.map = [None; NUM_ARCH_REGS];
        self.ready_time.clear();
    }
}

impl chainiq_ckpt::Pack for RenameState {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.map.pack(w);
        // Canonical sorted-pair form — byte-identical to the BTreeMap
        // encoding this field used before the TagMap conversion.
        self.ready_time.to_sorted_vec().pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let map = Pack::unpack(r)?;
        let pairs: Vec<(u64, Cycle)> = Pack::unpack(r)?;
        let mut ready_time = TagMap::new();
        for (k, v) in pairs {
            ready_time.insert(k, v);
        }
        Ok(RenameState { map, ready_time })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_register_is_ready() {
        let r = RenameState::new();
        let s = r.src(ArchReg::int(1));
        assert_eq!(s.producer, None);
        assert_eq!(s.known_ready_at, Some(0));
    }

    #[test]
    fn defined_register_names_producer() {
        let mut r = RenameState::new();
        r.define(ArchReg::int(1), InstTag(7));
        let s = r.src(ArchReg::int(1));
        assert_eq!(s.producer, Some(InstTag(7)));
        assert_eq!(s.known_ready_at, None);
    }

    #[test]
    fn announcement_flows_to_later_consumers() {
        let mut r = RenameState::new();
        r.define(ArchReg::int(1), InstTag(7));
        r.announce(InstTag(7), 42);
        assert_eq!(r.src(ArchReg::int(1)).known_ready_at, Some(42));
        assert_eq!(r.ready_time(InstTag(7)), Some(42));
    }

    #[test]
    fn newest_writer_wins() {
        let mut r = RenameState::new();
        r.define(ArchReg::int(1), InstTag(7));
        r.define(ArchReg::int(1), InstTag(9));
        assert_eq!(r.src(ArchReg::int(1)).producer, Some(InstTag(9)));
    }

    #[test]
    fn retire_clears_only_current_mapping() {
        let mut r = RenameState::new();
        r.define(ArchReg::int(1), InstTag(7));
        r.define(ArchReg::int(1), InstTag(9));
        r.retire(Some(ArchReg::int(1)), InstTag(7)); // stale writer
        assert_eq!(r.src(ArchReg::int(1)).producer, Some(InstTag(9)));
        r.retire(Some(ArchReg::int(1)), InstTag(9));
        assert_eq!(r.src(ArchReg::int(1)).producer, None);
    }
}
