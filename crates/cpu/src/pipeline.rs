//! The cycle loop tying front end, queue, LSQ, memory and commit
//! together.

use std::collections::BTreeMap;

use chainiq_core::{
    DispatchInfo, FuPool, InstTag, IssueQueue, OperandPick, SrcOperand, TagMap, Wheel,
};
use chainiq_isa::{Cycle, Inst, OpClass};
use chainiq_mem::Hierarchy;
use chainiq_predict::{HitMissPredictor, HybridBranchPredictor, LeftRightPredictor, Operand};

use crate::config::SimConfig;
use crate::frontend::Frontend;
use crate::lsq::{Lsq, LsqEvent};
use crate::rename::RenameState;
use crate::rob::{Rob, RobEntry, RobState};
use crate::stats::SimStats;

/// Event-wheel size: most completions land within the function-unit and
/// L1/L2 latency window; longer waits (main memory) ride the wheel's
/// far-future path at one compare per revolution.
pub(crate) const EVENT_WHEEL_BUCKETS: usize = 512;

/// Deferred timing events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Result written back: ROB entry completes, chains headed by it are
    /// released, LRP trains.
    Complete(InstTag),
    /// A chain-head load's miss became visible (§3.4 suspend).
    LoadMiss(InstTag),
    /// A missing load's fill arrived (§3.4 resume).
    LoadFill(InstTag),
}

/// The simulated processor: Table 1's core around a pluggable instruction
/// queue.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Pipeline<Q, W> {
    config: SimConfig,
    iq: Q,
    workload: W,
    now: Cycle,
    frontend: Frontend,
    rob: Rob,
    lsq: Lsq,
    mem: Hierarchy,
    fus: FuPool,
    bp: HybridBranchPredictor,
    hmp: HitMissPredictor,
    lrp: LeftRightPredictor,
    rename: RenameState,
    /// Deferred completions/misses/fills, bucketed by delivery cycle.
    events: Wheel<Event>,
    /// Scratch for draining `events` without a per-cycle allocation.
    events_scratch: Vec<Event>,
    /// Scratch for the LSQ's per-cycle event report.
    lsq_events: Vec<LsqEvent>,
    completion_time: TagMap<Cycle>,
    next_tag: u64,
    in_flight: usize,
    /// Branch the front end is stalled behind, once dispatched.
    redirect_waiting: Option<InstTag>,
    /// Store-data dependences: the IQ schedules only a store's
    /// address-generation (sim-outorder style), so the data operand is
    /// tracked here and gates the store's completion.
    store_value: BTreeMap<InstTag, SrcOperand>,
    /// Stores whose data producer has not yet announced, keyed by
    /// producer.
    waiting_stores: BTreeMap<InstTag, Vec<InstTag>>,
    stats: SimStats,
}

impl<Q: IssueQueue, W: Iterator<Item = Inst>> Pipeline<Q, W> {
    /// Builds a processor around `iq`, fed by `workload`.
    #[must_use]
    pub fn new(config: SimConfig, iq: Q, workload: W) -> Self {
        Pipeline {
            iq,
            workload,
            now: 0,
            frontend: Frontend::new(),
            rob: Rob::new(config.rob_size),
            lsq: Lsq::new(config.read_ports, config.write_ports),
            mem: Hierarchy::new(config.mem),
            fus: FuPool::new(config.fus_per_kind, config.issue_width),
            bp: HybridBranchPredictor::new(config.branch),
            hmp: HitMissPredictor::default(),
            lrp: LeftRightPredictor::default(),
            rename: RenameState::new(),
            events: Wheel::new(EVENT_WHEEL_BUCKETS),
            events_scratch: Vec::new(),
            lsq_events: Vec::new(),
            completion_time: TagMap::new(),
            next_tag: 0,
            in_flight: 0,
            redirect_waiting: None,
            store_value: BTreeMap::new(),
            waiting_stores: BTreeMap::new(),
            stats: SimStats::default(),
            config,
        }
    }

    /// The queue under test.
    #[must_use]
    pub fn iq(&self) -> &Q {
        &self.iq
    }

    /// The machine configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The hit/miss predictor (diagnostics).
    #[doc(hidden)]
    #[must_use]
    pub fn hmp(&self) -> &HitMissPredictor {
        &self.hmp
    }

    /// Debug description of the oldest in-flight instruction: its tag,
    /// pipeline state and textual location. For diagnostics only.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_head(&self) -> Option<String> {
        self.rob.head().map(|e| {
            format!(
                "tag={} op={} state={:?} parked_store={} events={} in_flight={}",
                e.tag.0,
                e.inst.op,
                e.state,
                self.waiting_stores.values().flatten().any(|t| *t == e.tag),
                self.events.len(),
                self.in_flight,
            )
        })
    }

    /// Runs until `max_insts` instructions commit (or the cycle guard
    /// trips) and returns the statistics.
    pub fn run(&mut self, max_insts: u64) -> SimStats {
        let mut last_progress = (self.now, self.rob.committed());
        while self.rob.committed() < max_insts && self.now < self.config.max_cycles {
            self.step();
            if self.rob.committed() != last_progress.1 {
                last_progress = (self.now, self.rob.committed());
            } else if self.now - last_progress.0 > 500_000 {
                self.stats.hung = true;
                break;
            }
        }
        self.snapshot_stats()
    }

    /// A snapshot of the statistics so far.
    #[must_use]
    pub fn snapshot_stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.cycles = self.now;
        s.committed = self.rob.committed();
        s.fetched = self.frontend.stats().fetched;
        s.mispredict_stall_cycles = self.frontend.stats().mispredict_stall_cycles;
        s.branch_lookups = self.bp.stats().lookups;
        s.branch_correct = self.bp.stats().correct;
        s.hmp = *self.hmp.stats();
        s.lrp = self.lrp.stats();
        s.mem = *self.mem.stats();
        s.iq = self.iq.stats();
        s.rob_mean_occupancy = self.rob.mean_occupancy();
        let lsq = self.lsq.stats();
        s.loads_issued = lsq.loads_issued;
        s.stores_written = lsq.stores_written;
        s.store_forwards = lsq.forwards;
        s
    }

    fn schedule(&mut self, at: Cycle, ev: Event) {
        self.events.schedule(at.max(self.now + 1), ev);
    }

    /// A producer's completion time became known: broadcast it and wake
    /// any stores waiting on that value.
    fn announce(&mut self, tag: InstTag, ready_at: Cycle) {
        self.iq.announce_ready(tag, ready_at);
        self.rename.announce(tag, ready_at);
        self.completion_time.insert(tag.0, ready_at);
        if !self.waiting_stores.is_empty() {
            if let Some(stores) = self.waiting_stores.remove(&tag) {
                for st in stores {
                    self.schedule(ready_at, Event::Complete(st));
                }
            }
        }
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        self.fus.next_cycle();

        // 1. Deliver timing events due this cycle.
        let mut evs = std::mem::take(&mut self.events_scratch);
        self.events.drain_into(now, &mut evs);
        for ev in evs.drain(..) {
            match ev {
                Event::LoadMiss(tag) => self.iq.on_load_miss(tag),
                Event::LoadFill(tag) => self.iq.on_load_fill(tag),
                Event::Complete(tag) => self.complete(tag),
            }
        }
        self.events_scratch = evs;

        // 2. Advance the queue. "Execution idle" for the §4.5 deadlock
        // detector means no pending timing event can change queue state
        // from outside: every in-flight completion, fill and resume is an
        // entry in `events`, so an empty event queue guarantees that only
        // the queue itself can make progress.
        let execution_idle = self.events.is_empty();
        self.iq.tick(now, execution_idle);
        self.rob.sample_occupancy();

        // 3. Memory scheduling.
        let mut lsq_events = std::mem::take(&mut self.lsq_events);
        self.lsq.cycle(now, &mut self.mem, &mut lsq_events);
        for ev in lsq_events.drain(..) {
            match ev {
                LsqEvent::LoadResolved {
                    tag,
                    pc,
                    predicted_hit,
                    completes_at,
                    l1_resolved_at,
                    was_l1_hit,
                    ..
                } => {
                    self.announce(tag, completes_at);
                    self.hmp.update(pc, was_l1_hit);
                    if self.config.use_hmp {
                        self.hmp.record_outcome(predicted_hit, was_l1_hit);
                    }
                    if !was_l1_hit {
                        self.schedule(l1_resolved_at, Event::LoadMiss(tag));
                        // The fill (chain resume) must be delivered before
                        // the same-cycle writeback releases the chain.
                        self.schedule(completes_at, Event::LoadFill(tag));
                    }
                    self.schedule(completes_at, Event::Complete(tag));
                }
                LsqEvent::StoreWritten { .. } => {}
            }
        }
        self.lsq_events = lsq_events;

        // 4. Issue.
        for sel in self.iq.select_issue(now, &mut self.fus) {
            self.rob.mark(sel.tag, RobState::Issued);
            self.in_flight += 1;
            match sel.op {
                OpClass::Load | OpClass::Store => {
                    // EA available next cycle; the LSQ takes over. Loads
                    // complete when their access resolves; stores complete
                    // once both the EA is computed and the data value is
                    // produced.
                    self.lsq.ea_computed(sel.tag, now + 1);
                    if sel.op == OpClass::Store {
                        match self.store_value_ready_at(sel.tag) {
                            Ok(at) => self.schedule(at.max(now + 1), Event::Complete(sel.tag)),
                            Err(producer) => {
                                self.waiting_stores.entry(producer).or_default().push(sel.tag);
                            }
                        }
                    }
                }
                OpClass::Branch => {
                    self.schedule(now + 1, Event::Complete(sel.tag));
                    if self.redirect_waiting == Some(sel.tag) {
                        self.redirect_waiting = None;
                        self.frontend.resume(now + 1);
                    }
                }
                op => {
                    let ready = now + u64::from(op.exec_latency());
                    self.announce(sel.tag, ready);
                    self.schedule(ready, Event::Complete(sel.tag));
                }
            }
        }

        // 5. Dispatch (rename).
        for _ in 0..self.config.dispatch_width {
            if !self.rob.has_space() {
                break;
            }
            let Some(fetched) = self.frontend.take_dispatchable(now) else {
                break;
            };
            let inst = fetched.inst;
            let tag = InstTag(self.next_tag);
            let regs = inst.srcs();
            let src0 = regs.first().map(|&r| self.rename.src(r));
            let mut src1 = regs.get(1).map(|&r| self.rename.src(r));
            // A store's IQ entry is its address generation (base operand
            // only); the data operand is tracked by the pipeline and
            // gates completion, not address issue.
            let mut store_data: Option<SrcOperand> = None;
            if inst.is_store() && src1.is_some() {
                store_data = src1.take();
            }
            let predicted_hit = if inst.is_load() && self.config.use_hmp {
                self.hmp.predict_hit(inst.pc)
            } else {
                false
            };
            let lrp_pick = if self.config.use_lrp && src1.is_some() {
                Some(match self.lrp.predict(inst.pc) {
                    Operand::Left => OperandPick::Left,
                    Operand::Right => OperandPick::Right,
                })
            } else {
                None
            };
            let info = DispatchInfo {
                tag,
                op: inst.op,
                dest: inst.dest,
                srcs: [src0, src1],
                predicted_hit,
                lrp_pick,
                thread: 0,
            };
            if self.iq.dispatch(now, info).is_err() {
                self.frontend.undo_take(fetched);
                break;
            }
            self.next_tag += 1;
            self.stats.dispatched += 1;
            if let Some(mem) = inst.mem {
                self.lsq.push(tag, inst.pc, mem.addr, inst.is_store(), predicted_hit);
            }
            if let Some(data) = store_data {
                self.store_value.insert(tag, data);
            }
            if let Some(dest) = inst.dest {
                self.rename.define(dest, tag);
            }
            if fetched.mispredicted {
                self.redirect_waiting = Some(tag);
            }
            self.rob.push(RobEntry {
                tag,
                inst,
                state: RobState::Dispatched,
                src_producers: [src0.and_then(|s| s.producer), src1.and_then(|s| s.producer)],
            });
        }

        // 6. Commit.
        for e in self.rob.commit(self.config.commit_width) {
            self.rename.retire(e.inst.dest, e.tag);
            self.lsq.on_commit(e.tag);
            self.completion_time.remove(e.tag.0);
            // Only stores ever park a data operand here.
            if e.inst.is_store() {
                self.store_value.remove(&e.tag);
            }
        }

        // 7. Fetch.
        self.frontend.fetch(now, &self.config, &mut self.workload, &mut self.bp, &mut self.mem);
    }

    /// When the data value of store `tag` is (or will be) available:
    /// `Ok(cycle)` when known, `Err(producer)` when the producing
    /// instruction has not announced its result yet (the store must park
    /// in `waiting_stores` keyed by that producer).
    fn store_value_ready_at(&self, tag: InstTag) -> Result<Cycle, InstTag> {
        let Some(data) = self.store_value.get(&tag) else {
            return Ok(self.now + 1); // no data dependence recorded
        };
        let Some(producer) = data.producer else {
            return Ok(self.now + 1);
        };
        if let Some(t) = self.completion_time.get(producer.0) {
            return Ok(t);
        }
        if let Some(t) = data.known_ready_at {
            return Ok(t);
        }
        // Producer already committed (and pruned) => the value exists.
        match self.rob.get(producer) {
            None => Ok(self.now + 1),
            Some(e) if e.state == RobState::Completed => Ok(self.now + 1),
            _ => Err(producer),
        }
    }

    /// Writeback of `tag`: completes the ROB entry, releases chains, and
    /// trains the left/right predictor with the operand that actually
    /// arrived later.
    fn complete(&mut self, tag: InstTag) {
        self.rob.mark(tag, RobState::Completed);
        self.in_flight = self.in_flight.saturating_sub(1);
        self.iq.on_writeback(tag);
        // LRP training: which of the two producers finished later?
        if let Some((pc, [Some(a), Some(b)])) =
            self.rob.get(tag).map(|e| (e.inst.pc, e.src_producers))
        {
            let ta = self.completion_time.get(a.0).unwrap_or(0);
            let tb = self.completion_time.get(b.0).unwrap_or(0);
            let later = if tb > ta { Operand::Right } else { Operand::Left };
            self.lrp.update(pc, later);
        }
    }
}

impl chainiq_ckpt::Pack for Event {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        match self {
            Event::Complete(tag) => {
                w.put_u8(0);
                tag.pack(w);
            }
            Event::LoadMiss(tag) => {
                w.put_u8(1);
                tag.pack(w);
            }
            Event::LoadFill(tag) => {
                w.put_u8(2);
                tag.pack(w);
            }
        }
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        match r.take_u8("pipeline event tag")? {
            0 => Ok(Event::Complete(Pack::unpack(r)?)),
            1 => Ok(Event::LoadMiss(Pack::unpack(r)?)),
            2 => Ok(Event::LoadFill(Pack::unpack(r)?)),
            _ => {
                Err(chainiq_ckpt::CkptError::Corrupt { context: "pipeline event tag".to_string() })
            }
        }
    }
}

impl<Q, W> chainiq_ckpt::Snapshot for Pipeline<Q, W>
where
    Q: IssueQueue + chainiq_ckpt::Snapshot,
    W: Iterator<Item = Inst> + chainiq_ckpt::Snapshot,
{
    const COMPONENT: &'static str = "cpu.pipeline";
    const VERSION: u16 = 2;

    /// The machine configuration is not serialized (restore targets a
    /// pipeline already built from it); a fingerprint of its debug
    /// rendering guards against restoring into a differently configured
    /// machine. The queue, workload, memory hierarchy and predictors are
    /// nested sections so each carries its own version and fingerprint.
    fn save(&self, w: &mut chainiq_ckpt::Writer) {
        use chainiq_ckpt::Pack;
        chainiq_ckpt::fingerprint(format!("{:?}", self.config).as_bytes()).pack(w);
        self.now.pack(w);
        chainiq_ckpt::save_section(w, &self.iq);
        chainiq_ckpt::save_section(w, &self.workload);
        chainiq_ckpt::save_section(w, &self.mem);
        chainiq_ckpt::save_section(w, &self.bp);
        chainiq_ckpt::save_section(w, &self.hmp);
        chainiq_ckpt::save_section(w, &self.lrp);
        self.frontend.pack(w);
        self.rob.pack(w);
        self.lsq.pack(w);
        self.fus.pack(w);
        self.rename.pack(w);
        // Canonical forms: the wheel dumps in drain order, the tag map in
        // ascending-key order, so the bytes are independent of how the
        // live structures were built.
        self.events.entries_sorted().pack(w);
        self.completion_time.to_sorted_vec().pack(w);
        self.next_tag.pack(w);
        self.in_flight.pack(w);
        self.redirect_waiting.pack(w);
        self.store_value.pack(w);
        self.waiting_stores.pack(w);
        self.stats.pack(w);
    }

    fn restore(&mut self, r: &mut chainiq_ckpt::Reader<'_>) -> Result<(), chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let fp: u64 = Pack::unpack(r)?;
        if fp != chainiq_ckpt::fingerprint(format!("{:?}", self.config).as_bytes()) {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "machine configuration differs from the running pipeline".to_string(),
            });
        }
        let now: Cycle = Pack::unpack(r)?;
        chainiq_ckpt::restore_section(r, &mut self.iq)?;
        chainiq_ckpt::restore_section(r, &mut self.workload)?;
        chainiq_ckpt::restore_section(r, &mut self.mem)?;
        chainiq_ckpt::restore_section(r, &mut self.bp)?;
        chainiq_ckpt::restore_section(r, &mut self.hmp)?;
        chainiq_ckpt::restore_section(r, &mut self.lrp)?;
        let frontend: Frontend = Pack::unpack(r)?;
        let rob: Rob = Pack::unpack(r)?;
        let lsq: Lsq = Pack::unpack(r)?;
        let fus: FuPool = Pack::unpack(r)?;
        let rename: RenameState = Pack::unpack(r)?;
        let events: Vec<(Cycle, Event)> = Pack::unpack(r)?;
        let completion_time: Vec<(u64, Cycle)> = Pack::unpack(r)?;
        let next_tag: u64 = Pack::unpack(r)?;
        let in_flight: usize = Pack::unpack(r)?;
        let redirect_waiting: Option<InstTag> = Pack::unpack(r)?;
        let store_value: BTreeMap<InstTag, SrcOperand> = Pack::unpack(r)?;
        let waiting_stores: BTreeMap<InstTag, Vec<InstTag>> = Pack::unpack(r)?;
        let stats: SimStats = Pack::unpack(r)?;
        self.now = now;
        self.frontend = frontend;
        self.rob = rob;
        self.lsq = lsq;
        self.fus = fus;
        self.rename = rename;
        // Pending events are all strictly in the future (delivery empties
        // a cycle's bucket before the snapshot boundary), so rebasing the
        // wheel at `now` and replaying in drain order reproduces the live
        // wheel's delivery sequence exactly.
        self.events.reset(now);
        for (c, ev) in events {
            self.events.schedule(c, ev);
        }
        self.events_scratch.clear();
        self.lsq_events.clear();
        self.completion_time.clear();
        for (k, v) in completion_time {
            self.completion_time.insert(k, v);
        }
        self.next_tag = next_tag;
        self.in_flight = in_flight;
        self.redirect_waiting = redirect_waiting;
        self.store_value = store_value;
        self.waiting_stores = waiting_stores;
        self.stats = stats;
        Ok(())
    }
}
