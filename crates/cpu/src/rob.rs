//! The reorder buffer.

use std::collections::VecDeque;

use chainiq_core::InstTag;
use chainiq_isa::{ArchReg, Inst};

/// Lifecycle of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RobState {
    /// In the instruction queue.
    Dispatched,
    /// Executing (or waiting for its memory access).
    Issued,
    /// Result written back; eligible to commit.
    Completed,
}

#[derive(Debug, Clone)]
pub(crate) struct RobEntry {
    pub tag: InstTag,
    pub inst: Inst,
    pub state: RobState,
    /// Producer tags of the source operands (for LRP training).
    pub src_producers: [Option<InstTag>; 2],
}

/// An in-order reorder buffer: dispatch appends, commit pops completed
/// entries from the head, bounded capacity backpressures dispatch.
#[derive(Debug, Clone)]
pub(crate) struct Rob {
    entries: VecDeque<RobEntry>,
    capacity: usize,
    committed: u64,
    occupancy_accum: u64,
    samples: u64,
}

impl Rob {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB capacity must be positive");
        Rob {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            committed: 0,
            occupancy_accum: 0,
            samples: 0,
        }
    }

    pub(crate) fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    #[allow(dead_code)] // kept for symmetry; useful in debugging sessions
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn committed(&self) -> u64 {
        self.committed
    }

    pub(crate) fn sample_occupancy(&mut self) {
        self.occupancy_accum += self.entries.len() as u64;
        self.samples += 1;
    }

    pub(crate) fn mean_occupancy(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.occupancy_accum as f64 / self.samples as f64
        }
    }

    pub(crate) fn push(&mut self, entry: RobEntry) {
        assert!(self.has_space(), "caller must check ROB space");
        self.entries.push_back(entry);
    }

    pub(crate) fn mark(&mut self, tag: InstTag, state: RobState) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.tag == tag) {
            e.state = state;
        }
    }

    /// Pops up to `width` completed entries from the head, in order.
    pub(crate) fn commit(&mut self, width: usize) -> Vec<RobEntry> {
        let mut out = Vec::new();
        while out.len() < width {
            match self.entries.front() {
                Some(e) if e.state == RobState::Completed => {
                    out.push(self.entries.pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
        self.committed += out.len() as u64;
        out
    }

    /// Destination register of the in-flight instruction `tag`.
    #[allow(dead_code)]
    pub(crate) fn dest_of(&self, tag: InstTag) -> Option<ArchReg> {
        self.entries.iter().find(|e| e.tag == tag).and_then(|e| e.inst.dest)
    }

    /// The in-flight entry for `tag`, if present.
    pub(crate) fn get(&self, tag: InstTag) -> Option<&RobEntry> {
        self.entries.iter().find(|e| e.tag == tag)
    }

    /// The oldest in-flight entry, if any.
    pub(crate) fn head(&self) -> Option<&RobEntry> {
        self.entries.front()
    }
}

impl chainiq_ckpt::Pack for RobState {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        w.put_u8(match self {
            RobState::Dispatched => 0,
            RobState::Issued => 1,
            RobState::Completed => 2,
        });
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        match r.take_u8("ROB state tag")? {
            0 => Ok(RobState::Dispatched),
            1 => Ok(RobState::Issued),
            2 => Ok(RobState::Completed),
            _ => Err(chainiq_ckpt::CkptError::Corrupt { context: "ROB state tag".to_string() }),
        }
    }
}

impl chainiq_ckpt::Pack for RobEntry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.inst.pack(w);
        self.state.pack(w);
        self.src_producers.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(RobEntry {
            tag: Pack::unpack(r)?,
            inst: Pack::unpack(r)?,
            state: Pack::unpack(r)?,
            src_producers: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for Rob {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.entries.pack(w);
        self.capacity.pack(w);
        self.committed.pack(w);
        self.occupancy_accum.pack(w);
        self.samples.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let entries: std::collections::VecDeque<RobEntry> = Pack::unpack(r)?;
        let capacity: usize = Pack::unpack(r)?;
        if capacity == 0 || entries.len() > capacity {
            return Err(chainiq_ckpt::CkptError::Corrupt {
                context: "ROB occupancy exceeds its capacity".to_string(),
            });
        }
        Ok(Rob {
            entries,
            capacity,
            committed: Pack::unpack(r)?,
            occupancy_accum: Pack::unpack(r)?,
            samples: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_isa::{ArchReg, Inst};

    fn entry(tag: u64) -> RobEntry {
        RobEntry {
            tag: InstTag(tag),
            inst: Inst::alu(0, ArchReg::int(1), &[]),
            state: RobState::Dispatched,
            src_producers: [None, None],
        }
    }

    #[test]
    fn commits_in_order_only() {
        let mut rob = Rob::new(8);
        rob.push(entry(0));
        rob.push(entry(1));
        rob.mark(InstTag(1), RobState::Completed);
        assert!(rob.commit(8).is_empty(), "head not complete, nothing commits");
        rob.mark(InstTag(0), RobState::Completed);
        let c = rob.commit(8);
        assert_eq!(c.len(), 2);
        assert_eq!(c[0].tag, InstTag(0));
        assert_eq!(rob.committed(), 2);
    }

    #[test]
    fn commit_width_limits() {
        let mut rob = Rob::new(16);
        for i in 0..10 {
            rob.push(entry(i));
            rob.mark(InstTag(i), RobState::Completed);
        }
        assert_eq!(rob.commit(8).len(), 8);
        assert_eq!(rob.commit(8).len(), 2);
    }

    #[test]
    fn capacity_backpressure() {
        let mut rob = Rob::new(2);
        rob.push(entry(0));
        rob.push(entry(1));
        assert!(!rob.has_space());
    }

    #[test]
    #[should_panic(expected = "ROB space")]
    fn push_past_capacity_panics() {
        let mut rob = Rob::new(1);
        rob.push(entry(0));
        rob.push(entry(1));
    }

    #[test]
    fn occupancy_sampling() {
        let mut rob = Rob::new(4);
        rob.push(entry(0));
        rob.sample_occupancy();
        rob.push(entry(1));
        rob.sample_occupancy();
        assert!((rob.mean_occupancy() - 1.5).abs() < 1e-12);
    }
}
