//! End-of-run statistics.

use chainiq_core::IqStats;
use chainiq_mem::MemStats;
use chainiq_predict::{HmpStats, LrpStats};

/// Everything a simulation run reports.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Instructions dispatched into the queue.
    pub dispatched: u64,
    /// Instructions fetched.
    pub fetched: u64,
    /// Branch-direction lookups and correct predictions.
    pub branch_lookups: u64,
    /// Correct (direction and target) branch predictions.
    pub branch_correct: u64,
    /// Hit/miss predictor counters (§4.4).
    pub hmp: HmpStats,
    /// Left/right predictor counters (§4.3).
    pub lrp: LrpStats,
    /// Memory hierarchy counters.
    pub mem: MemStats,
    /// Common instruction-queue counters.
    pub iq: IqStats,
    /// Mean reorder-buffer occupancy.
    pub rob_mean_occupancy: f64,
    /// Loads issued by the LSQ.
    pub loads_issued: u64,
    /// Stores written to the cache.
    pub stores_written: u64,
    /// Store-to-load forwards.
    pub store_forwards: u64,
    /// Cycles fetch stalled behind mispredictions.
    pub mispredict_stall_cycles: u64,
    /// The run hit the no-progress guard (a modelling bug if true).
    pub hung: bool,
}

impl SimStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Branch prediction accuracy in `[0, 1]`.
    #[must_use]
    pub fn branch_accuracy(&self) -> f64 {
        if self.branch_lookups == 0 {
            1.0
        } else {
            self.branch_correct as f64 / self.branch_lookups as f64
        }
    }

    /// L1 data-cache miss ratio, counting delayed hits as misses.
    #[must_use]
    pub fn l1d_miss_ratio(&self) -> f64 {
        self.mem.l1d.miss_ratio()
    }
}

impl chainiq_ckpt::Pack for SimStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.cycles.pack(w);
        self.committed.pack(w);
        self.dispatched.pack(w);
        self.fetched.pack(w);
        self.branch_lookups.pack(w);
        self.branch_correct.pack(w);
        self.hmp.pack(w);
        self.lrp.pack(w);
        self.mem.pack(w);
        self.iq.pack(w);
        self.rob_mean_occupancy.pack(w);
        self.loads_issued.pack(w);
        self.stores_written.pack(w);
        self.store_forwards.pack(w);
        self.mispredict_stall_cycles.pack(w);
        self.hung.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(SimStats {
            cycles: Pack::unpack(r)?,
            committed: Pack::unpack(r)?,
            dispatched: Pack::unpack(r)?,
            fetched: Pack::unpack(r)?,
            branch_lookups: Pack::unpack(r)?,
            branch_correct: Pack::unpack(r)?,
            hmp: Pack::unpack(r)?,
            lrp: Pack::unpack(r)?,
            mem: Pack::unpack(r)?,
            iq: Pack::unpack(r)?,
            rob_mean_occupancy: Pack::unpack(r)?,
            loads_issued: Pack::unpack(r)?,
            stores_written: Pack::unpack(r)?,
            store_forwards: Pack::unpack(r)?,
            mispredict_stall_cycles: Pack::unpack(r)?,
            hung: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_divides() {
        let s = SimStats { cycles: 100, committed: 150, ..SimStats::default() };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
    }
}
