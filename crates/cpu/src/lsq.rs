//! The load/store queue.
//!
//! As in §5 (following sim-outorder), memory instructions split: the
//! effective-address calculation is scheduled by the instruction queue as
//! an ordinary integer op, and the memory access lives here. A load
//! accesses the cache once its address is known and it is known not to
//! conflict with any preceding store; an exact-address match forwards
//! from the store instead. Stores write to the cache after commit.

use std::collections::VecDeque;

use chainiq_core::InstTag;
use chainiq_isa::Cycle;
use chainiq_mem::{AccessKind, Hierarchy, ServicedBy};

/// What happened to a memory operation this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LsqEvent {
    /// A load's access resolved.
    LoadResolved {
        tag: InstTag,
        pc: u64,
        /// HMP verdict the load dispatched under.
        predicted_hit: bool,
        /// When the loaded value is available to consumers.
        completes_at: Cycle,
        /// When the L1 lookup resolved (miss-detection time for chain
        /// suspension).
        l1_resolved_at: Cycle,
        /// Whether it was a true L1 hit (delayed hits count as misses).
        was_l1_hit: bool,
        /// Whether the value was forwarded from an in-flight store.
        forwarded: bool,
    },
    /// A committed store wrote to the cache.
    StoreWritten { tag: InstTag },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Address not yet computed.
    WaitingEa,
    /// Address known at `Cycle`; access not yet performed.
    Ready(Cycle),
    /// Load resolved / store waiting to commit+write.
    Done,
}

#[derive(Debug, Clone)]
struct LsqEntry {
    tag: InstTag,
    pc: u64,
    addr: u64,
    is_store: bool,
    state: State,
    committed: bool,
    /// HMP verdict this load dispatched under (stats pairing).
    predicted_hit: bool,
}

/// Statistics the LSQ reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LsqStats {
    pub loads_issued: u64,
    pub stores_written: u64,
    pub forwards: u64,
    pub disambiguation_stalls: u64,
    pub mshr_retries: u64,
}

/// The load/store queue. Unbounded (the ROB bounds in-flight memory ops;
/// the paper gives no LSQ size).
#[derive(Debug, Clone)]
pub(crate) struct Lsq {
    entries: VecDeque<LsqEntry>,
    read_ports: usize,
    write_ports: usize,
    stats: LsqStats,
}

impl Lsq {
    pub(crate) fn new(read_ports: usize, write_ports: usize) -> Self {
        Lsq { entries: VecDeque::new(), read_ports, write_ports, stats: LsqStats::default() }
    }

    pub(crate) fn stats(&self) -> LsqStats {
        self.stats
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Inserts a memory op at dispatch (program order). `predicted_hit`
    /// is the HMP verdict the load dispatched under.
    pub(crate) fn push(
        &mut self,
        tag: InstTag,
        pc: u64,
        addr: u64,
        is_store: bool,
        predicted_hit: bool,
    ) {
        self.entries.push_back(LsqEntry {
            tag,
            pc,
            addr,
            is_store,
            state: State::WaitingEa,
            committed: false,
            predicted_hit,
        });
    }

    /// The IQ issued the op's EA calculation; the address is known at
    /// `ea_at`.
    pub(crate) fn ea_computed(&mut self, tag: InstTag, ea_at: Cycle) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.tag == tag) {
            if e.state == State::WaitingEa {
                e.state = State::Ready(ea_at);
            }
        }
    }

    /// The instruction committed: loads leave; stores become eligible to
    /// write (they leave once written).
    pub(crate) fn on_commit(&mut self, tag: InstTag) {
        if let Some(pos) = self.entries.iter().position(|e| e.tag == tag) {
            if self.entries[pos].is_store {
                self.entries[pos].committed = true;
            } else {
                self.entries.remove(pos);
            }
        }
    }

    /// Whether any op is still waiting to access memory.
    #[cfg(test)]
    pub(crate) fn has_pending_access(&self) -> bool {
        self.entries.iter().any(|e| !matches!(e.state, State::Done) || (e.is_store && e.committed))
    }

    /// One cycle of memory scheduling.
    pub(crate) fn cycle(&mut self, now: Cycle, mem: &mut Hierarchy) -> Vec<LsqEvent> {
        let mut events = Vec::new();
        let mut reads = 0usize;
        let mut writes = 0usize;

        // Committed stores write to the cache in order.
        let mut written = Vec::new();
        for (idx, e) in self.entries.iter().enumerate() {
            if writes >= self.write_ports {
                break;
            }
            if !e.is_store || !e.committed {
                continue;
            }
            match e.state {
                State::Ready(at) if at <= now => match mem.access(now, e.addr, AccessKind::Write) {
                    Ok(_) => {
                        writes += 1;
                        written.push(idx);
                        events.push(LsqEvent::StoreWritten { tag: e.tag });
                    }
                    Err(_) => {
                        self.stats.mshr_retries += 1;
                    }
                },
                _ => {}
            }
        }
        for idx in written.into_iter().rev() {
            self.entries.remove(idx);
        }
        self.stats.stores_written += writes as u64;

        // Loads access once disambiguated against all older stores.
        let snapshot: Vec<(usize, InstTag, u64, Cycle)> = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match (e.is_store, e.state) {
                (false, State::Ready(at)) if at <= now => Some((i, e.tag, e.addr, at)),
                _ => None,
            })
            .collect();
        for (idx, tag, addr, _) in snapshot {
            if reads >= self.read_ports {
                break;
            }
            // Scan older entries for conflicts; nearest same-address store
            // forwards.
            let mut blocked = false;
            let mut forward_from: Option<usize> = None;
            for (j, older) in self.entries.iter().enumerate().take(idx) {
                if !older.is_store {
                    continue;
                }
                match older.state {
                    State::WaitingEa => {
                        blocked = true;
                        break;
                    }
                    State::Ready(at) if at > now => {
                        blocked = true;
                        break;
                    }
                    _ => {
                        if older.addr == addr {
                            forward_from = Some(j);
                        }
                    }
                }
            }
            if blocked {
                self.stats.disambiguation_stalls += 1;
                continue;
            }
            let l1_latency = mem.config().l1d.latency;
            if forward_from.is_some() {
                // Store-to-load forwarding at L1-hit latency.
                self.stats.forwards += 1;
                self.stats.loads_issued += 1;
                reads += 1;
                self.entries[idx].state = State::Done;
                events.push(LsqEvent::LoadResolved {
                    tag,
                    pc: self.entries[idx].pc,
                    predicted_hit: self.entries[idx].predicted_hit,
                    completes_at: now + l1_latency,
                    l1_resolved_at: now + l1_latency,
                    was_l1_hit: true,
                    forwarded: true,
                });
                continue;
            }
            match mem.access(now, addr, AccessKind::Read) {
                Ok(out) => {
                    self.stats.loads_issued += 1;
                    reads += 1;
                    self.entries[idx].state = State::Done;
                    events.push(LsqEvent::LoadResolved {
                        tag,
                        pc: self.entries[idx].pc,
                        predicted_hit: self.entries[idx].predicted_hit,
                        completes_at: out.completes_at,
                        l1_resolved_at: out.l1_resolved_at,
                        was_l1_hit: out.serviced_by == ServicedBy::L1,
                        forwarded: false,
                    });
                }
                Err(_) => {
                    self.stats.mshr_retries += 1;
                }
            }
        }
        events
    }
}

impl chainiq_ckpt::Pack for State {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        match self {
            State::WaitingEa => w.put_u8(0),
            State::Ready(at) => {
                w.put_u8(1);
                at.pack(w);
            }
            State::Done => w.put_u8(2),
        }
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        match r.take_u8("LSQ entry state tag")? {
            0 => Ok(State::WaitingEa),
            1 => Ok(State::Ready(Pack::unpack(r)?)),
            2 => Ok(State::Done),
            _ => {
                Err(chainiq_ckpt::CkptError::Corrupt { context: "LSQ entry state tag".to_string() })
            }
        }
    }
}

impl chainiq_ckpt::Pack for LsqEntry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.pc.pack(w);
        self.addr.pack(w);
        self.is_store.pack(w);
        self.state.pack(w);
        self.committed.pack(w);
        self.predicted_hit.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(LsqEntry {
            tag: Pack::unpack(r)?,
            pc: Pack::unpack(r)?,
            addr: Pack::unpack(r)?,
            is_store: Pack::unpack(r)?,
            state: Pack::unpack(r)?,
            committed: Pack::unpack(r)?,
            predicted_hit: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for LsqStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.loads_issued.pack(w);
        self.stores_written.pack(w);
        self.forwards.pack(w);
        self.disambiguation_stalls.pack(w);
        self.mshr_retries.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(LsqStats {
            loads_issued: Pack::unpack(r)?,
            stores_written: Pack::unpack(r)?,
            forwards: Pack::unpack(r)?,
            disambiguation_stalls: Pack::unpack(r)?,
            mshr_retries: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for Lsq {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.entries.pack(w);
        self.read_ports.pack(w);
        self.write_ports.pack(w);
        self.stats.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(Lsq {
            entries: Pack::unpack(r)?,
            read_ports: Pack::unpack(r)?,
            write_ports: Pack::unpack(r)?,
            stats: Pack::unpack(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_mem::MemConfig;

    fn mem() -> Hierarchy {
        Hierarchy::new(MemConfig::default())
    }

    #[test]
    fn load_waits_for_ea() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, false, false);
        assert!(lsq.cycle(0, &mut m).is_empty());
        lsq.ea_computed(InstTag(0), 2);
        assert!(lsq.cycle(1, &mut m).is_empty(), "EA not ready until cycle 2");
        let ev = lsq.cycle(2, &mut m);
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0], LsqEvent::LoadResolved { tag: InstTag(0), .. }));
    }

    #[test]
    fn load_blocked_by_unknown_store_address() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, true, false); // older store, EA unknown
        lsq.push(InstTag(1), 0x44, 0x2000, false, false);
        lsq.ea_computed(InstTag(1), 0);
        assert!(lsq.cycle(0, &mut m).is_empty(), "unknown store blocks the load");
        assert!(lsq.stats().disambiguation_stalls > 0);
        lsq.ea_computed(InstTag(0), 1);
        let ev = lsq.cycle(1, &mut m);
        assert_eq!(ev.len(), 1, "disambiguated: different addresses");
    }

    #[test]
    fn same_address_store_forwards() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, true, false);
        lsq.push(InstTag(1), 0x44, 0x1000, false, false);
        lsq.ea_computed(InstTag(0), 0);
        lsq.ea_computed(InstTag(1), 0);
        let ev = lsq.cycle(0, &mut m);
        match ev[0] {
            LsqEvent::LoadResolved { forwarded, was_l1_hit, completes_at, .. } => {
                assert!(forwarded);
                assert!(was_l1_hit);
                assert_eq!(completes_at, 3, "forwarding at L1 latency");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(lsq.stats().forwards, 1);
        assert_eq!(m.stats().l1d.accesses(), 0, "no cache access on a forward");
    }

    #[test]
    fn stores_write_only_after_commit() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, true, false);
        lsq.ea_computed(InstTag(0), 0);
        assert!(lsq.cycle(0, &mut m).is_empty(), "uncommitted store does not write");
        lsq.on_commit(InstTag(0));
        let ev = lsq.cycle(1, &mut m);
        assert!(matches!(ev[0], LsqEvent::StoreWritten { tag: InstTag(0) }));
        assert_eq!(lsq.len(), 0, "written store leaves the queue");
    }

    #[test]
    fn committed_load_leaves_queue() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, false, false);
        lsq.ea_computed(InstTag(0), 0);
        lsq.cycle(0, &mut m);
        lsq.on_commit(InstTag(0));
        assert_eq!(lsq.len(), 0);
    }

    #[test]
    fn read_ports_limit_per_cycle() {
        let mut lsq = Lsq::new(2, 2);
        let mut m = mem();
        for i in 0..4u64 {
            lsq.push(InstTag(i), 0x40 + i * 4, 0x1000 + i * 4096, false, false);
            lsq.ea_computed(InstTag(i), 0);
        }
        assert_eq!(lsq.cycle(0, &mut m).len(), 2);
        assert_eq!(lsq.cycle(1, &mut m).len(), 2);
    }

    #[test]
    fn pending_accesses_are_visible() {
        let mut lsq = Lsq::new(8, 8);
        assert!(!lsq.has_pending_access());
        lsq.push(InstTag(0), 0x40, 0x1000, false, false);
        assert!(lsq.has_pending_access());
    }

    #[test]
    fn load_after_store_same_line_different_word_is_not_forwarded() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, true, false);
        lsq.push(InstTag(1), 0x44, 0x1008, false, false); // same 64B line, next word
        lsq.ea_computed(InstTag(0), 0);
        lsq.ea_computed(InstTag(1), 0);
        let ev = lsq.cycle(0, &mut m);
        match ev[0] {
            LsqEvent::LoadResolved { forwarded, .. } => assert!(!forwarded),
            other => panic!("{other:?}"),
        }
    }
}
