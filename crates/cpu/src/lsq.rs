//! The load/store queue.
//!
//! As in §5 (following sim-outorder), memory instructions split: the
//! effective-address calculation is scheduled by the instruction queue as
//! an ordinary integer op, and the memory access lives here. A load
//! accesses the cache once its address is known and it is known not to
//! conflict with any preceding store; an exact-address match forwards
//! from the store instead. Stores write to the cache after commit.

use std::collections::VecDeque;

use chainiq_core::InstTag;
use chainiq_isa::Cycle;
use chainiq_mem::{AccessKind, Hierarchy, ServicedBy};

/// What happened to a memory operation this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LsqEvent {
    /// A load's access resolved.
    LoadResolved {
        tag: InstTag,
        pc: u64,
        /// HMP verdict the load dispatched under.
        predicted_hit: bool,
        /// When the loaded value is available to consumers.
        completes_at: Cycle,
        /// When the L1 lookup resolved (miss-detection time for chain
        /// suspension).
        l1_resolved_at: Cycle,
        /// Whether it was a true L1 hit (delayed hits count as misses).
        was_l1_hit: bool,
        /// Whether the value was forwarded from an in-flight store.
        forwarded: bool,
    },
    /// A committed store wrote to the cache.
    StoreWritten { tag: InstTag },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Address not yet computed.
    WaitingEa,
    /// Address known at `Cycle`; access not yet performed.
    Ready(Cycle),
    /// Load resolved / store waiting to commit+write.
    Done,
}

#[derive(Debug, Clone)]
struct LsqEntry {
    tag: InstTag,
    pc: u64,
    addr: u64,
    is_store: bool,
    state: State,
    committed: bool,
    /// HMP verdict this load dispatched under (stats pairing).
    predicted_hit: bool,
}

/// Statistics the LSQ reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LsqStats {
    pub loads_issued: u64,
    pub stores_written: u64,
    pub forwards: u64,
    pub disambiguation_stalls: u64,
    pub mshr_retries: u64,
}

/// The load/store queue. Unbounded (the ROB bounds in-flight memory ops;
/// the paper gives no LSQ size).
#[derive(Debug, Clone)]
pub(crate) struct Lsq {
    entries: VecDeque<LsqEntry>,
    read_ports: usize,
    write_ports: usize,
    stats: LsqStats,
    /// Scratch: indices of stores written this cycle (removed afterwards).
    written: Vec<u32>,
    /// Scratch: addresses of resolved stores older than the load being
    /// disambiguated this cycle.
    store_addrs: Vec<u64>,
    /// Committed stores still queued — the write pass is skipped when
    /// zero (derived from `entries`; not serialized).
    committed_stores: usize,
    /// Loads whose address is known but whose access has not resolved —
    /// the disambiguation pass is skipped when zero (derived; not
    /// serialized).
    ready_loads: usize,
}

impl Lsq {
    pub(crate) fn new(read_ports: usize, write_ports: usize) -> Self {
        Lsq {
            entries: VecDeque::new(),
            read_ports,
            write_ports,
            stats: LsqStats::default(),
            written: Vec::new(),
            store_addrs: Vec::new(),
            committed_stores: 0,
            ready_loads: 0,
        }
    }

    /// Position of `tag` in the queue. Dispatch pushes in tag order and
    /// removals keep relative order, so the queue is tag-sorted and a
    /// binary search replaces the old linear scan.
    #[inline]
    fn find(&self, tag: InstTag) -> Option<usize> {
        self.entries.binary_search_by_key(&tag.0, |e| e.tag.0).ok()
    }

    pub(crate) fn stats(&self) -> LsqStats {
        self.stats
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Inserts a memory op at dispatch (program order). `predicted_hit`
    /// is the HMP verdict the load dispatched under.
    pub(crate) fn push(
        &mut self,
        tag: InstTag,
        pc: u64,
        addr: u64,
        is_store: bool,
        predicted_hit: bool,
    ) {
        self.entries.push_back(LsqEntry {
            tag,
            pc,
            addr,
            is_store,
            state: State::WaitingEa,
            committed: false,
            predicted_hit,
        });
    }

    /// The IQ issued the op's EA calculation; the address is known at
    /// `ea_at`.
    pub(crate) fn ea_computed(&mut self, tag: InstTag, ea_at: Cycle) {
        if let Some(pos) = self.find(tag) {
            let e = &mut self.entries[pos];
            if e.state == State::WaitingEa {
                e.state = State::Ready(ea_at);
                if !e.is_store {
                    self.ready_loads += 1;
                }
            }
        }
    }

    /// The instruction committed: loads leave; stores become eligible to
    /// write (they leave once written).
    pub(crate) fn on_commit(&mut self, tag: InstTag) {
        if let Some(pos) = self.find(tag) {
            if self.entries[pos].is_store {
                if !self.entries[pos].committed {
                    self.entries[pos].committed = true;
                    self.committed_stores += 1;
                }
            } else {
                if matches!(self.entries[pos].state, State::Ready(_)) {
                    self.ready_loads -= 1;
                }
                self.entries.remove(pos);
            }
        }
    }

    /// Whether any op is still waiting to access memory.
    #[cfg(test)]
    pub(crate) fn has_pending_access(&self) -> bool {
        self.entries.iter().any(|e| !matches!(e.state, State::Done) || (e.is_store && e.committed))
    }

    /// One cycle of memory scheduling. Events are appended to `events`
    /// (a caller-owned scratch buffer, so steady-state cycles allocate
    /// nothing).
    pub(crate) fn cycle(&mut self, now: Cycle, mem: &mut Hierarchy, events: &mut Vec<LsqEvent>) {
        // Committed stores write to the cache in order. Skipped outright
        // when none is queued (most cycles).
        if self.committed_stores > 0 {
            let mut writes = 0usize;
            debug_assert!(self.written.is_empty());
            for idx in 0..self.entries.len() {
                if writes >= self.write_ports {
                    break;
                }
                let e = &self.entries[idx];
                if !e.is_store || !e.committed {
                    continue;
                }
                match e.state {
                    State::Ready(at) if at <= now => {
                        let (tag, addr) = (e.tag, e.addr);
                        match mem.access(now, addr, AccessKind::Write) {
                            Ok(_) => {
                                writes += 1;
                                self.written.push(idx as u32);
                                events.push(LsqEvent::StoreWritten { tag });
                            }
                            Err(_) => {
                                self.stats.mshr_retries += 1;
                            }
                        }
                    }
                    _ => {}
                }
            }
            self.committed_stores -= self.written.len();
            for idx in self.written.drain(..).rev() {
                self.entries.remove(idx as usize);
            }
            self.stats.stores_written += writes as u64;
        }

        // Loads access once disambiguated against all older stores. One
        // forward pass replaces the per-load backward scans: a load is
        // blocked iff any older store is unresolved (address unknown or
        // not yet computed), and — when none is — it forwards iff some
        // older resolved store matches its address, which the pass
        // accumulates in `store_addrs` as it walks. The whole pass is
        // skipped when no load has a computed, unresolved address.
        if self.ready_loads == 0 {
            return;
        }
        let mut reads = 0usize;
        let mut older_unresolved = false;
        self.store_addrs.clear();
        let l1_latency = mem.config().l1d.latency;
        for idx in 0..self.entries.len() {
            let e = &self.entries[idx];
            if e.is_store {
                match e.state {
                    State::WaitingEa => older_unresolved = true,
                    State::Ready(at) if at > now => older_unresolved = true,
                    _ => {
                        // Once one store is unresolved every later load is
                        // blocked, so the address set stops mattering.
                        if !older_unresolved {
                            let addr = e.addr;
                            self.store_addrs.push(addr);
                        }
                    }
                }
                continue;
            }
            let State::Ready(at) = e.state else { continue };
            if at > now {
                continue;
            }
            if reads >= self.read_ports {
                break;
            }
            if older_unresolved {
                self.stats.disambiguation_stalls += 1;
                continue;
            }
            let (tag, pc, addr, predicted_hit) = (e.tag, e.pc, e.addr, e.predicted_hit);
            if self.store_addrs.contains(&addr) {
                // Store-to-load forwarding at L1-hit latency.
                self.stats.forwards += 1;
                self.stats.loads_issued += 1;
                reads += 1;
                self.entries[idx].state = State::Done;
                self.ready_loads -= 1;
                events.push(LsqEvent::LoadResolved {
                    tag,
                    pc,
                    predicted_hit,
                    completes_at: now + l1_latency,
                    l1_resolved_at: now + l1_latency,
                    was_l1_hit: true,
                    forwarded: true,
                });
                continue;
            }
            match mem.access(now, addr, AccessKind::Read) {
                Ok(out) => {
                    self.stats.loads_issued += 1;
                    reads += 1;
                    self.entries[idx].state = State::Done;
                    self.ready_loads -= 1;
                    events.push(LsqEvent::LoadResolved {
                        tag,
                        pc,
                        predicted_hit,
                        completes_at: out.completes_at,
                        l1_resolved_at: out.l1_resolved_at,
                        was_l1_hit: out.serviced_by == ServicedBy::L1,
                        forwarded: false,
                    });
                }
                Err(_) => {
                    self.stats.mshr_retries += 1;
                }
            }
        }
    }
}

impl chainiq_ckpt::Pack for State {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        match self {
            State::WaitingEa => w.put_u8(0),
            State::Ready(at) => {
                w.put_u8(1);
                at.pack(w);
            }
            State::Done => w.put_u8(2),
        }
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        match r.take_u8("LSQ entry state tag")? {
            0 => Ok(State::WaitingEa),
            1 => Ok(State::Ready(Pack::unpack(r)?)),
            2 => Ok(State::Done),
            _ => {
                Err(chainiq_ckpt::CkptError::Corrupt { context: "LSQ entry state tag".to_string() })
            }
        }
    }
}

impl chainiq_ckpt::Pack for LsqEntry {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.tag.pack(w);
        self.pc.pack(w);
        self.addr.pack(w);
        self.is_store.pack(w);
        self.state.pack(w);
        self.committed.pack(w);
        self.predicted_hit.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(LsqEntry {
            tag: Pack::unpack(r)?,
            pc: Pack::unpack(r)?,
            addr: Pack::unpack(r)?,
            is_store: Pack::unpack(r)?,
            state: Pack::unpack(r)?,
            committed: Pack::unpack(r)?,
            predicted_hit: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for LsqStats {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.loads_issued.pack(w);
        self.stores_written.pack(w);
        self.forwards.pack(w);
        self.disambiguation_stalls.pack(w);
        self.mshr_retries.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        Ok(LsqStats {
            loads_issued: Pack::unpack(r)?,
            stores_written: Pack::unpack(r)?,
            forwards: Pack::unpack(r)?,
            disambiguation_stalls: Pack::unpack(r)?,
            mshr_retries: Pack::unpack(r)?,
        })
    }
}

impl chainiq_ckpt::Pack for Lsq {
    fn pack(&self, w: &mut chainiq_ckpt::Writer) {
        self.entries.pack(w);
        self.read_ports.pack(w);
        self.write_ports.pack(w);
        self.stats.pack(w);
    }
    fn unpack(r: &mut chainiq_ckpt::Reader<'_>) -> Result<Self, chainiq_ckpt::CkptError> {
        use chainiq_ckpt::Pack;
        let entries: VecDeque<LsqEntry> = Pack::unpack(r)?;
        // The skip counters are derived state, recomputed rather than
        // serialized so the wire format is unchanged.
        let committed_stores = entries.iter().filter(|e| e.is_store && e.committed).count();
        let ready_loads =
            entries.iter().filter(|e| !e.is_store && matches!(e.state, State::Ready(_))).count();
        Ok(Lsq {
            entries,
            read_ports: Pack::unpack(r)?,
            write_ports: Pack::unpack(r)?,
            stats: Pack::unpack(r)?,
            written: Vec::new(),
            store_addrs: Vec::new(),
            committed_stores,
            ready_loads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chainiq_mem::MemConfig;

    fn mem() -> Hierarchy {
        Hierarchy::new(MemConfig::default())
    }

    /// Test shim: one cycle, events collected into a fresh vec.
    fn run_cycle(lsq: &mut Lsq, now: Cycle, m: &mut Hierarchy) -> Vec<LsqEvent> {
        let mut events = Vec::new();
        lsq.cycle(now, m, &mut events);
        events
    }

    #[test]
    fn load_waits_for_ea() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, false, false);
        assert!(run_cycle(&mut lsq, 0, &mut m).is_empty());
        lsq.ea_computed(InstTag(0), 2);
        assert!(run_cycle(&mut lsq, 1, &mut m).is_empty(), "EA not ready until cycle 2");
        let ev = run_cycle(&mut lsq, 2, &mut m);
        assert_eq!(ev.len(), 1);
        assert!(matches!(ev[0], LsqEvent::LoadResolved { tag: InstTag(0), .. }));
    }

    #[test]
    fn load_blocked_by_unknown_store_address() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, true, false); // older store, EA unknown
        lsq.push(InstTag(1), 0x44, 0x2000, false, false);
        lsq.ea_computed(InstTag(1), 0);
        assert!(run_cycle(&mut lsq, 0, &mut m).is_empty(), "unknown store blocks the load");
        assert!(lsq.stats().disambiguation_stalls > 0);
        lsq.ea_computed(InstTag(0), 1);
        let ev = run_cycle(&mut lsq, 1, &mut m);
        assert_eq!(ev.len(), 1, "disambiguated: different addresses");
    }

    #[test]
    fn same_address_store_forwards() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, true, false);
        lsq.push(InstTag(1), 0x44, 0x1000, false, false);
        lsq.ea_computed(InstTag(0), 0);
        lsq.ea_computed(InstTag(1), 0);
        let ev = run_cycle(&mut lsq, 0, &mut m);
        match ev[0] {
            LsqEvent::LoadResolved { forwarded, was_l1_hit, completes_at, .. } => {
                assert!(forwarded);
                assert!(was_l1_hit);
                assert_eq!(completes_at, 3, "forwarding at L1 latency");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(lsq.stats().forwards, 1);
        assert_eq!(m.stats().l1d.accesses(), 0, "no cache access on a forward");
    }

    #[test]
    fn stores_write_only_after_commit() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, true, false);
        lsq.ea_computed(InstTag(0), 0);
        assert!(run_cycle(&mut lsq, 0, &mut m).is_empty(), "uncommitted store does not write");
        lsq.on_commit(InstTag(0));
        let ev = run_cycle(&mut lsq, 1, &mut m);
        assert!(matches!(ev[0], LsqEvent::StoreWritten { tag: InstTag(0) }));
        assert_eq!(lsq.len(), 0, "written store leaves the queue");
    }

    #[test]
    fn committed_load_leaves_queue() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, false, false);
        lsq.ea_computed(InstTag(0), 0);
        run_cycle(&mut lsq, 0, &mut m);
        lsq.on_commit(InstTag(0));
        assert_eq!(lsq.len(), 0);
    }

    #[test]
    fn read_ports_limit_per_cycle() {
        let mut lsq = Lsq::new(2, 2);
        let mut m = mem();
        for i in 0..4u64 {
            lsq.push(InstTag(i), 0x40 + i * 4, 0x1000 + i * 4096, false, false);
            lsq.ea_computed(InstTag(i), 0);
        }
        assert_eq!(run_cycle(&mut lsq, 0, &mut m).len(), 2);
        assert_eq!(run_cycle(&mut lsq, 1, &mut m).len(), 2);
    }

    #[test]
    fn pending_accesses_are_visible() {
        let mut lsq = Lsq::new(8, 8);
        assert!(!lsq.has_pending_access());
        lsq.push(InstTag(0), 0x40, 0x1000, false, false);
        assert!(lsq.has_pending_access());
    }

    #[test]
    fn load_after_store_same_line_different_word_is_not_forwarded() {
        let mut lsq = Lsq::new(8, 8);
        let mut m = mem();
        lsq.push(InstTag(0), 0x40, 0x1000, true, false);
        lsq.push(InstTag(1), 0x44, 0x1008, false, false); // same 64B line, next word
        lsq.ea_computed(InstTag(0), 0);
        lsq.ea_computed(InstTag(1), 0);
        let ev = run_cycle(&mut lsq, 0, &mut m);
        match ev[0] {
            LsqEvent::LoadResolved { forwarded, .. } => assert!(!forwarded),
            other => panic!("{other:?}"),
        }
    }
}
