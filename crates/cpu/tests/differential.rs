//! Whole-pipeline differential test: a full out-of-order core built
//! around the segmented queue must behave identically whether the queue
//! serves its read paths from the maintained indexes (production) or
//! from naive full scans (the reference the indexes were derived from).
//! Both modes share every write path, so any divergence is an indexing
//! bug, not a modeling choice.

use chainiq_core::{SegmentedIq, SegmentedIqConfig};
use chainiq_cpu::{Pipeline, SimConfig};
use chainiq_workload::{Bench, SyntheticWorkload};

/// Runs one benchmark profile twice — indexed and naive — through the
/// whole pipeline and compares the full `Debug` render of the machine
/// statistics and of the queue's own statistics.
fn check_bench(bench: Bench, qc: SegmentedIqConfig, max_insts: u64, seed: u64) {
    let mut config = SimConfig::default().rob_for_iq(qc.capacity());
    config.extra_dispatch_cycle = true;

    let run = |naive: bool| {
        let mut iq = SegmentedIq::new(qc);
        iq.set_naive_kernel(naive);
        let workload = SyntheticWorkload::from_profile(bench.profile(), seed);
        let mut sim = Pipeline::new(config.clone(), iq, workload);
        let stats = sim.run(max_insts);
        (format!("{stats:?}"), format!("{:?}", sim.iq().full_stats()))
    };

    let (stats_fast, seg_fast) = run(false);
    let (stats_naive, seg_naive) = run(true);
    assert_eq!(stats_fast, stats_naive, "{bench:?}: machine statistics diverge");
    assert_eq!(seg_fast, seg_naive, "{bench:?}: queue statistics diverge");
}

#[test]
fn pipeline_matches_naive_reference_across_benches() {
    // Geometry mix: the paper's big queue, a small one that stresses
    // promotion pressure and deadlock recovery, and a chain-starved one.
    for (bench, qc, seed) in [
        (Bench::Equake, SegmentedIqConfig::paper(128, Some(64)), 7),
        (Bench::Gcc, SegmentedIqConfig::paper(64, Some(16)), 11),
        (Bench::Swim, SegmentedIqConfig::paper(256, None), 13),
        (Bench::Vortex, SegmentedIqConfig::small_for_tests(), 17),
    ] {
        check_bench(bench, qc, 3_000, seed);
    }
}

#[test]
fn pipeline_matches_naive_reference_with_features_off() {
    // Pushdown/bypass/two-chain off exercises the other halves of the
    // indexed eligibility predicates.
    let mut qc = SegmentedIqConfig::paper(64, Some(32));
    qc.pushdown = false;
    qc.bypass = false;
    qc.two_chain_tracking = false;
    check_bench(Bench::Twolf, qc, 3_000, 23);
}
