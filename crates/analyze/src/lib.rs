//! `chainiq-analyze` — in-repo static analysis enforcing the invariants
//! chainiq's experiments rest on: determinism (no hash-order iteration,
//! no wall clocks, no stray env reads in the model), hermeticity (no
//! registry dependencies), and panic hygiene (a ratcheted unwrap budget).
//!
//! `cargo clippy` cannot express these project-specific rules, so this
//! crate carries its own hand-rolled lexer ([`lexer`]), a token-stream
//! rule engine ([`rules`]), a manifest checker ([`manifest`]), and a
//! committed-baseline ratchet ([`baseline`]). The whole tool is
//! zero-dependency, like the rest of the workspace.
//!
//! Entry point: [`analyze_workspace`] walks `crates/*/src/**/*.rs` plus
//! every `Cargo.toml` and returns a [`Report`]; the `chainiq-analyze`
//! binary turns that into `file:line: rule: message` diagnostics and an
//! exit code. See `DESIGN.md` § Static analysis for the rule catalogue.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod manifest;
pub mod rules;

use rules::{Diagnostic, PanicCounts};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Everything one analysis run found.
#[derive(Debug, Default)]
pub struct Report {
    /// Failing findings across all rules, in deterministic (path-sorted
    /// scan) order. Non-empty → the run fails.
    pub diags: Vec<Diagnostic>,
    /// Non-failing notes (e.g. "under budget, re-ratchet").
    pub notes: Vec<String>,
    /// Fresh per-file panic-site counts (what `--write-baseline` pins).
    pub fresh_counts: PanicCounts,
    /// Number of `.rs` files scanned, for the summary line.
    pub files_scanned: usize,
}

/// Analyzes the workspace rooted at `root` (the directory holding the
/// virtual-workspace `Cargo.toml` and `crates/`).
///
/// # Errors
/// Propagates I/O failures reading the tree; a malformed committed
/// baseline is also an error (it is machine-written).
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();

    // Manifests: the workspace root first, then each crate, path-sorted.
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        manifest::check_manifest(
            "Cargo.toml",
            &fs::read_to_string(&root_manifest)?,
            &mut report.diags,
        );
    }
    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let crate_name = file_name_string(&crate_dir);
        let manifest_path = crate_dir.join("Cargo.toml");
        if manifest_path.is_file() {
            manifest::check_manifest(
                &format!("crates/{crate_name}/Cargo.toml"),
                &fs::read_to_string(&manifest_path)?,
                &mut report.diags,
            );
        }

        // Sources: everything under src/, recursively, path-sorted.
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        for file in sorted_rs_files(&src_dir)? {
            let rel = format!(
                "crates/{crate_name}/src/{}",
                file.strip_prefix(&src_dir)
                    .expect("walked file lives under the src dir it came from")
                    .display()
            );
            // Binary targets may unwrap at the top level; libraries may not.
            let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
            let scanned =
                rules::scan_source(&crate_name, &rel, &fs::read_to_string(&file)?, !is_bin);
            report.diags.extend(scanned.diags);
            if scanned.panic_sites > 0 {
                report.fresh_counts.insert(rel, scanned.panic_sites);
            }
            report.files_scanned += 1;
        }
    }

    // Ratchet: compare fresh counts against the committed baseline.
    let baseline_path = root.join(baseline::BASELINE_FILE);
    let committed = if baseline_path.is_file() {
        baseline::parse(&fs::read_to_string(&baseline_path)?).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e} (regenerate with --write-baseline)", baseline::BASELINE_FILE),
            )
        })?
    } else {
        PanicCounts::new()
    };
    let ratchet = baseline::compare(&committed, &report.fresh_counts, |f| root.join(f).is_file());
    report.diags.extend(ratchet.diags);
    report.notes.extend(ratchet.notes);

    Ok(report)
}

/// Regenerates `analyze-baseline.toml` from fresh counts. Returns the
/// path written. Rule diagnostics other than P1 still fail the run at
/// the CLI level, so `--write-baseline` cannot be used to bless e.g. a
/// new `HashMap`.
///
/// # Errors
/// Propagates I/O failures from the scan or the write.
pub fn write_baseline(root: &Path) -> io::Result<PathBuf> {
    let report = analyze_workspace(root)?;
    let path = root.join(baseline::BASELINE_FILE);
    fs::write(&path, baseline::render(&report.fresh_counts))?;
    Ok(path)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`. Mirrors the
/// runtime discovery the bench runner uses — nothing is baked in at
/// compile time, so the binary works from any cwd inside the repo.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    start.ancestors().find_map(|dir| {
        let manifest = dir.join("Cargo.toml");
        let text = fs::read_to_string(&manifest).ok()?;
        text.contains("[workspace]").then(|| dir.to_path_buf())
    })
}

/// Child directories of `dir`, sorted by name so diagnostics come out in
/// the same order on every OS (raw `read_dir` order is arbitrary).
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, path-sorted.
fn sorted_rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)?.collect::<io::Result<Vec<_>>>()? {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn file_name_string(p: &Path) -> String {
    p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}
