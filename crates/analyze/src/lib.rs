//! `chainiq-analyze` — in-repo static analysis enforcing the invariants
//! chainiq's experiments rest on: determinism (no hash-order iteration,
//! no wall clocks, no stray env reads in the model), hermeticity (no
//! registry dependencies), and panic hygiene (a ratcheted unwrap budget).
//!
//! `cargo clippy` cannot express these project-specific rules, so this
//! crate carries its own hand-rolled lexer ([`lexer`]), a token-stream
//! rule engine ([`rules`]), a manifest checker ([`manifest`]), and a
//! committed-baseline ratchet ([`baseline`]). The whole tool is
//! zero-dependency, like the rest of the workspace.
//!
//! On top of the per-file scan sits a whole-workspace pass: a
//! hand-rolled item parser ([`parser`]) recovers `fn` items and call
//! expressions, [`callgraph`] links them into a conservative name-based
//! call graph, and [`flows`] runs the flow rules over it — H2
//! (transitive hot-path purity), T1 (determinism taint with witness
//! paths), and the R1 panic-reachability report.
//!
//! Entry point: [`analyze_workspace`] walks `crates/*/src/**/*.rs` plus
//! every `Cargo.toml` and returns a [`Report`]; the `chainiq-analyze`
//! binary turns that into `file:line: rule: message` diagnostics and an
//! exit code. See `DESIGN.md` § Static analysis for the rule catalogue.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
mod callgraph;
mod flows;
pub mod json;
pub mod lexer;
pub mod manifest;
mod parser;
pub mod perfcheck;
pub mod rules;

pub use flows::{GraphStats, PanicEntry};

use rules::{Diagnostic, PanicCounts};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Everything one analysis run found.
#[derive(Debug, Default)]
pub struct Report {
    /// Failing findings across all rules, sorted by (file, line, rule).
    /// Non-empty → the run fails.
    pub diags: Vec<Diagnostic>,
    /// Non-failing notes (e.g. the R1 reachability summary).
    pub notes: Vec<String>,
    /// Ratchet slack: files under budget. Informational by default;
    /// `--check-tight` turns these into failures so cleanups are pinned.
    pub slack: Vec<String>,
    /// Fresh per-file panic-site counts (what `--write-baseline` pins).
    pub fresh_counts: PanicCounts,
    /// Fresh per-file H2 hot-path allocation-site counts.
    pub hot_alloc_counts: PanicCounts,
    /// Fresh per-file T1 tainted-sink counts.
    pub taint_counts: PanicCounts,
    /// Shape of the workspace call graph.
    pub callgraph: GraphStats,
    /// The R1 panic-reachability report, path-sorted.
    pub panic_report: Vec<PanicEntry>,
    /// Number of `.rs` files scanned, for the summary line.
    pub files_scanned: usize,
}

/// Analyzes the workspace rooted at `root` (the directory holding the
/// virtual-workspace `Cargo.toml` and `crates/`).
///
/// # Errors
/// Propagates I/O failures reading the tree; a malformed committed
/// baseline is also an error (it is machine-written).
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let mut file_items = Vec::new();
    // Crate dependency facts for call-graph visibility: package name →
    // crate directory, and per-directory runtime dep package names.
    let mut pkg_to_dir: BTreeMap<String, String> = BTreeMap::new();
    let mut direct_pkg_deps: BTreeMap<String, Vec<String>> = BTreeMap::new();

    // Manifests: the workspace root first, then each crate, path-sorted.
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        manifest::check_manifest(
            "Cargo.toml",
            &fs::read_to_string(&root_manifest)?,
            &mut report.diags,
        );
    }
    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let crate_name = file_name_string(&crate_dir);
        let manifest_path = crate_dir.join("Cargo.toml");
        if manifest_path.is_file() {
            let manifest_src = fs::read_to_string(&manifest_path)?;
            manifest::check_manifest(
                &format!("crates/{crate_name}/Cargo.toml"),
                &manifest_src,
                &mut report.diags,
            );
            if let Some(pkg) = manifest::package_name(&manifest_src) {
                pkg_to_dir.insert(pkg, crate_name.clone());
            }
            direct_pkg_deps.insert(crate_name.clone(), manifest::runtime_dep_names(&manifest_src));
        }

        // Sources: everything under src/, recursively, path-sorted.
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        for file in sorted_rs_files(&src_dir)? {
            let rel = format!(
                "crates/{crate_name}/src/{}",
                file.strip_prefix(&src_dir)
                    .expect("walked file lives under the src dir it came from")
                    .display()
            );
            // Binary targets may unwrap at the top level; libraries may not.
            let is_bin = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
            let src = fs::read_to_string(&file)?;
            let scanned = rules::scan_source(&crate_name, &rel, &src, !is_bin);
            report.diags.extend(scanned.diags);
            if scanned.panic_sites > 0 {
                report.fresh_counts.insert(rel.clone(), scanned.panic_sites);
            }
            file_items.push(parser::parse_file(&crate_name, &rel, &src, is_bin));
            report.files_scanned += 1;
        }
    }

    // Whole-workspace pass: call graph + flow rules.
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (dir, dep_pkgs) in &direct_pkg_deps {
        direct.insert(
            dir.clone(),
            dep_pkgs.iter().filter_map(|p| pkg_to_dir.get(p)).cloned().collect(),
        );
    }
    let deps = callgraph::close_deps(&direct);
    let graph = callgraph::build(file_items, &deps);
    let flow = flows::analyze(&graph);
    report.callgraph = flow.stats;
    for (f, ds) in &flow.h2 {
        report.hot_alloc_counts.insert(f.clone(), u32::try_from(ds.len()).unwrap_or(u32::MAX));
    }
    for (f, ds) in &flow.t1 {
        report.taint_counts.insert(f.clone(), u32::try_from(ds.len()).unwrap_or(u32::MAX));
    }
    if !flow.panic_report.is_empty() {
        let hot = flow.panic_report.iter().filter(|p| p.hot_reachable).count();
        report.notes.push(format!(
            "R1: {hot} of {} panic site(s) reachable from hot entry points (witness paths in \
             --json panic_report)",
            flow.panic_report.len()
        ));
    }
    report.panic_report = flow.panic_report;

    // Ratchets: compare fresh counts against the committed budgets.
    let baseline_path = root.join(baseline::BASELINE_FILE);
    let committed = if baseline_path.is_file() {
        baseline::parse(&fs::read_to_string(&baseline_path)?).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e} (regenerate with --write-baseline)", baseline::BASELINE_FILE),
            )
        })?
    } else {
        baseline::Baseline::default()
    };
    let exists = |f: &str| root.join(f).is_file();
    for ratchet in [
        baseline::compare(&committed.panic, &report.fresh_counts, exists),
        baseline::compare_sites(
            "hot-path allocation site(s)",
            &committed.hot_alloc,
            &flow.h2,
            exists,
        ),
        baseline::compare_sites("tainted sink(s)", &committed.taint, &flow.t1, exists),
    ] {
        report.diags.extend(ratchet.diags);
        report.slack.extend(ratchet.slack);
    }

    // One deterministic order for everything, wherever it was found.
    report
        .diags
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    Ok(report)
}

/// Regenerates `analyze-baseline.toml` from fresh counts (all three
/// budget sections). Returns the path written. Rule diagnostics other
/// than the ratcheted families still fail the run at the CLI level, so
/// `--write-baseline` cannot be used to bless e.g. a new `HashMap`.
///
/// # Errors
/// Propagates I/O failures from the scan or the write.
pub fn write_baseline(root: &Path) -> io::Result<PathBuf> {
    let report = analyze_workspace(root)?;
    let path = root.join(baseline::BASELINE_FILE);
    let fresh = baseline::Baseline {
        panic: report.fresh_counts,
        hot_alloc: report.hot_alloc_counts,
        taint: report.taint_counts,
    };
    fs::write(&path, baseline::render(&fresh))?;
    Ok(path)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`. Mirrors the
/// runtime discovery the bench runner uses — nothing is baked in at
/// compile time, so the binary works from any cwd inside the repo.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    start.ancestors().find_map(|dir| {
        let manifest = dir.join("Cargo.toml");
        let text = fs::read_to_string(&manifest).ok()?;
        text.contains("[workspace]").then(|| dir.to_path_buf())
    })
}

/// Child directories of `dir`, sorted by name so diagnostics come out in
/// the same order on every OS (raw `read_dir` order is arbitrary).
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, path-sorted.
fn sorted_rs_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)?.collect::<io::Result<Vec<_>>>()? {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn file_name_string(p: &Path) -> String {
    p.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}
