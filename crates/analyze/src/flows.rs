//! Flow-based rules over the workspace call graph: **H2** (transitive
//! hot-path purity), **T1** (determinism taint), and the **R1**
//! panic-reachability report.
//!
//! * **H2** runs a forward multi-source BFS from every hot-marked
//!   function; any allocation fact in a callee at depth ≥ 1 is flagged
//!   with a witness call path (depth 0 — the hot body itself — is P2's
//!   province, so the two rules never double-report a site).
//! * **T1** runs a *backward* multi-source BFS from every function
//!   containing a nondeterminism source; any sink — a `Snapshot` impl
//!   method, a `*Stats` impl method, or a public function of a sim
//!   crate — reachable at depth ≥ 1 is flagged with the witness path
//!   down to the source (direct uses at depth 0 are D1/D2/D3/S1's
//!   province). Suppression is checked at the *source* fact: an
//!   `allow(T1, …)` next to the offending read certifies the value never
//!   corrupts determinism, killing every flow out of it.
//! * **R1** never fails a run: it annotates every panic site with
//!   whether a hot entry point can reach it, so the P1 ratchet cleanup
//!   is ordered by blast radius.
//!
//! All traversals use index-ordered queues over `BTreeSet` adjacency, so
//! witness paths and diagnostic order are deterministic run to run.

use crate::callgraph::Graph;
use crate::rules::{Diagnostic, RuleId, SIM_CRATES};
use std::collections::{BTreeMap, VecDeque};

/// One row of the R1 panic-reachability report.
#[derive(Debug, Clone)]
pub struct PanicEntry {
    /// Workspace-relative file of the panic site.
    pub file: String,
    /// 1-based line of the site.
    pub line: u32,
    /// The construct (`.unwrap()`, `panic!`, …).
    pub what: String,
    /// Name of the enclosing function.
    pub function: String,
    /// Whether a hot-marked entry point reaches the enclosing function.
    pub hot_reachable: bool,
    /// Witness call path from a hot root, when reachable.
    pub witness: Option<String>,
    /// Whether the site carries an `allow(R1, reason)` review marker.
    pub justified: bool,
}

/// Shape of the call graph, surfaced in the summary and `--json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStats {
    /// Non-test functions in the graph.
    pub functions: usize,
    /// Distinct candidate call edges.
    pub edges: usize,
    /// Hot-marked entry points.
    pub hot_roots: usize,
}

/// Everything the flow pass produced, pre-ratchet.
#[derive(Debug, Default)]
pub(crate) struct FlowReport {
    /// Unsuppressed H2 site diagnostics, keyed by allocation-site file.
    pub(crate) h2: BTreeMap<String, Vec<Diagnostic>>,
    /// Unsuppressed T1 sink diagnostics, keyed by sink file.
    pub(crate) t1: BTreeMap<String, Vec<Diagnostic>>,
    /// The R1 report, in path-sorted file order.
    pub(crate) panic_report: Vec<PanicEntry>,
    /// Graph shape for the summary line.
    pub(crate) stats: GraphStats,
}

/// Runs all three flow analyses over the graph.
pub(crate) fn analyze(g: &Graph) -> FlowReport {
    let mut report = FlowReport {
        stats: GraphStats {
            functions: g.nodes.len(),
            edges: g.edge_count,
            hot_roots: g.nodes.iter().filter(|n| n.item.is_hot).count(),
        },
        ..FlowReport::default()
    };

    // ---- forward reachability from hot roots (H2 + R1) ----
    let hot_roots: Vec<usize> = (0..g.nodes.len()).filter(|&i| g.nodes[i].item.is_hot).collect();
    let fwd = bfs(&g.edges, &hot_roots);

    for (v, n) in g.nodes.iter().enumerate() {
        let Some(depth) = fwd.depth[v] else {
            continue;
        };
        if depth == 0 {
            continue; // the hot body itself is P2's province
        }
        for alloc in &n.item.allocs {
            let suppressed =
                g.markers.get(&n.file).is_some_and(|m| m.suppressed(RuleId::H2, alloc.line));
            if suppressed {
                continue;
            }
            let path = witness(g, &fwd, v, Direction::Forward);
            report.h2.entry(n.file.clone()).or_default().push(Diagnostic {
                file: n.file.clone(),
                line: alloc.line,
                rule: RuleId::H2,
                message: format!(
                    "{} allocates on a hot path: {path} → {}; per-cycle paths must not \
                     allocate at any depth — hoist the buffer, or carry \
                     `// chainiq-analyze: allow(H2, reason)` at this site (ratcheted under \
                     [hot-alloc-budget])",
                    alloc.what, alloc.what
                ),
            });
        }
    }

    // ---- backward reachability from taint sources (T1) ----
    // A node seeds the traversal if it holds at least one unsuppressed
    // taint fact; the first such fact is the witness endpoint.
    let mut source_fact: BTreeMap<usize, (String, u32)> = BTreeMap::new();
    let mut sources = Vec::new();
    for (v, n) in g.nodes.iter().enumerate() {
        let fact =
            n.item.taints.iter().find(|t| {
                !g.markers.get(&n.file).is_some_and(|m| m.suppressed(RuleId::T1, t.line))
            });
        if let Some(t) = fact {
            source_fact.insert(v, (t.what.clone(), t.line));
            sources.push(v);
        }
    }
    let bwd = bfs(&g.redges, &sources);

    for (v, n) in g.nodes.iter().enumerate() {
        let Some(depth) = bwd.depth[v] else {
            continue;
        };
        if depth == 0 {
            continue; // direct use: D1/D2/D3/S1 territory
        }
        let Some(sink_kind) = sink_kind(g, v) else {
            continue;
        };
        let path = witness(g, &bwd, v, Direction::Backward);
        // The witness ends at the seeding source node; name its fact.
        let src = trace_end(&bwd, v);
        let (what, line) = &source_fact[&src];
        report.t1.entry(n.file.clone()).or_default().push(Diagnostic {
            file: n.file.clone(),
            line: n.item.line,
            rule: RuleId::T1,
            message: format!(
                "{sink_kind} `{}` can reach a nondeterminism source: {path} → {what} at \
                 {}:{line}; route the value out of the model, or carry \
                 `// chainiq-analyze: allow(T1, reason)` at the source read (ratcheted under \
                 [taint-budget])",
                n.item.name, g.nodes[src].file
            ),
        });
    }

    // ---- R1: annotate every panic site with hot reachability ----
    for (v, n) in g.nodes.iter().enumerate() {
        if n.is_bin {
            continue; // binaries may unwrap at the top level (as in P1)
        }
        for p in &n.item.panics {
            let justified =
                g.markers.get(&n.file).is_some_and(|m| m.suppressed(RuleId::R1, p.line));
            let hot_reachable = fwd.depth[v].is_some();
            report.panic_report.push(PanicEntry {
                file: n.file.clone(),
                line: p.line,
                what: p.what.clone(),
                function: n.item.name.clone(),
                hot_reachable,
                witness: hot_reachable.then(|| witness(g, &fwd, v, Direction::Forward)),
                justified,
            });
        }
    }

    report
}

/// Which kind of T1 sink node `v` is, if any.
fn sink_kind(g: &Graph, v: usize) -> Option<&'static str> {
    let n = &g.nodes[v];
    if n.item.trait_name.as_deref() == Some("Snapshot") {
        return Some("Snapshot impl method");
    }
    let stats = |s: &Option<String>| s.as_deref().is_some_and(|t| t.ends_with("Stats"));
    if stats(&n.item.impl_ty) || stats(&n.item.trait_name) {
        return Some("Stats method");
    }
    if SIM_CRATES.contains(&n.crate_name.as_str()) && n.item.is_pub && !n.is_bin {
        return Some("sim-crate public fn");
    }
    None
}

/// Multi-source BFS state: depth and BFS-tree parent per node.
struct Bfs {
    depth: Vec<Option<u32>>,
    parent: Vec<Option<usize>>,
}

fn bfs(adj: &[std::collections::BTreeSet<usize>], roots: &[usize]) -> Bfs {
    let mut state = Bfs { depth: vec![None; adj.len()], parent: vec![None; adj.len()] };
    let mut q = VecDeque::new();
    for &r in roots {
        if state.depth[r].is_none() {
            state.depth[r] = Some(0);
            q.push_back(r);
        }
    }
    while let Some(u) = q.pop_front() {
        let du = state.depth[u].unwrap_or(0);
        for &v in &adj[u] {
            if state.depth[v].is_none() {
                state.depth[v] = Some(du + 1);
                state.parent[v] = Some(u);
                q.push_back(v);
            }
        }
    }
    state
}

enum Direction {
    /// The BFS ran over forward edges: the root is the path's head.
    Forward,
    /// The BFS ran over reverse edges: the root (a taint source) is the
    /// path's tail — print from `v` down to it.
    Backward,
}

/// The BFS-tree root reached by following parents up from `v`.
fn trace_end(b: &Bfs, v: usize) -> usize {
    let mut u = v;
    while let Some(p) = b.parent[u] {
        u = p;
    }
    u
}

/// Renders the witness path for `v` as `a.rs:10 (f) → b.rs:42 (g) → …`.
fn witness(g: &Graph, b: &Bfs, v: usize, dir: Direction) -> String {
    let mut hops = vec![v];
    let mut u = v;
    while let Some(p) = b.parent[u] {
        hops.push(p);
        u = p;
    }
    // Forward BFS discovered v from the root, so parents lead *back* to
    // the root: reverse to print root-first. Backward BFS parents lead
    // to the source, which is exactly sink-first order already.
    if matches!(dir, Direction::Forward) {
        hops.reverse();
    }
    hops.iter().map(|&h| g.nodes[h].describe()).collect::<Vec<_>>().join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::parser::parse_file;
    use std::collections::BTreeSet;

    fn flow_of(files: &[(&str, &str, &str)]) -> FlowReport {
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (c, _, _) in files {
            deps.insert(
                (*c).to_string(),
                files.iter().map(|(c2, _, _)| (*c2).to_string()).collect(),
            );
        }
        let g =
            build(files.iter().map(|(c, f, src)| parse_file(c, f, src, false)).collect(), &deps);
        analyze(&g)
    }

    #[test]
    fn h2_flags_transitive_allocation_with_witness() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "// chainiq-analyze: hot\n\
             pub fn tick() { helper(); }\n\
             fn helper() { let _v = Vec::new(); }\n",
        )]);
        let diags = &r.h2["crates/core/src/a.rs"];
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::H2);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("a.rs:2 (tick) → "), "{}", diags[0].message);
    }

    #[test]
    fn h2_skips_depth_zero_and_unreachable_allocs() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "// chainiq-analyze: hot\n\
             pub fn tick() { let _v = Vec::new(); }\n\
             fn cold() { let _v = Vec::new(); }\n",
        )]);
        assert!(r.h2.is_empty(), "depth-0 is P2's, cold is unreachable: {:?}", r.h2);
    }

    #[test]
    fn h2_survives_recursion_cycles() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "// chainiq-analyze: hot\n\
             pub fn tick() { ping(); }\n\
             fn ping() { pong(); }\n\
             fn pong() { ping(); let _s = format!(\"x\"); }\n",
        )]);
        let diags = &r.h2["crates/core/src/a.rs"];
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("format!"));
    }

    #[test]
    fn h2_suppression_at_site_wins() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "// chainiq-analyze: hot\n\
             pub fn tick() { helper(); }\n\
             fn helper() {\n\
             // chainiq-analyze: allow(H2, one-time growth amortized to zero)\n\
             let _v = Vec::new();\n\
             }\n",
        )]);
        assert!(r.h2.is_empty(), "{:?}", r.h2);
    }

    #[test]
    fn t1_flags_sim_pub_fn_reaching_source() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "pub fn api() { helper(); }\n\
             fn helper() { let _t = std::thread::current(); }\n",
        )]);
        let diags = &r.t1["crates/core/src/a.rs"];
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::T1);
        assert_eq!(diags[0].line, 1, "diagnostic anchors at the sink fn");
        assert!(diags[0].message.contains("thread::current"), "{}", diags[0].message);
        assert!(diags[0].message.contains("(api) → "), "{}", diags[0].message);
    }

    #[test]
    fn t1_skips_direct_use_and_private_fns() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "pub fn api() { let _t = std::thread::current(); }\n\
             fn private() { helper(); }\n\
             fn helper() { let _t = std::thread::current(); }\n",
        )]);
        assert!(r.t1.is_empty(), "direct use is D-rules'; private fns are not sinks: {:?}", r.t1);
    }

    #[test]
    fn t1_source_suppression_kills_the_flow() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "pub fn api() { helper(); }\n\
             fn helper() {\n\
             // chainiq-analyze: allow(T1, handle printed to stderr, never enters state)\n\
             let _t = std::thread::current();\n\
             }\n",
        )]);
        assert!(r.t1.is_empty(), "{:?}", r.t1);
    }

    #[test]
    fn t1_snapshot_and_stats_sinks() {
        let r = flow_of(&[(
            "bench",
            "crates/bench/src/a.rs",
            "impl Snapshot for Thing { fn save(&self) { now(); } }\n\
             impl RunStats { fn emit(&self) { now(); } }\n\
             fn now() { let _t = std::thread::current(); }\n",
        )]);
        let diags = &r.t1["crates/bench/src/a.rs"];
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("Snapshot impl method"), "{}", diags[0].message);
        assert!(diags[1].message.contains("Stats method"), "{}", diags[1].message);
    }

    #[test]
    fn r1_annotates_reachability_and_justification() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "// chainiq-analyze: hot\n\
             pub fn tick(o: Option<u8>) { step(o); }\n\
             fn step(o: Option<u8>) { o.unwrap(); }\n\
             fn cold(o: Option<u8>) {\n\
             // chainiq-analyze: allow(R1, input validated at parse time)\n\
             o.expect(\"validated\");\n\
             }\n",
        )]);
        assert_eq!(r.panic_report.len(), 2, "{:?}", r.panic_report);
        let hot = &r.panic_report[0];
        assert!(hot.hot_reachable && !hot.justified);
        assert!(hot.witness.as_deref().is_some_and(|w| w.contains("(tick)")), "{hot:?}");
        let cold = &r.panic_report[1];
        assert!(!cold.hot_reachable && cold.justified, "{cold:?}");
        assert!(cold.witness.is_none());
    }

    #[test]
    fn method_dispatch_through_two_candidate_impls_is_conservative() {
        // The hot loop calls `q.step()`; only one impl allocates, but
        // name-based resolution must consider both, so the allocating
        // one is flagged.
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "// chainiq-analyze: hot\n\
             pub fn drive(q: &mut dyn Queue) { q.step(); }\n\
             impl Clean { fn step(&mut self) {} }\n\
             impl Dirty { fn step(&mut self) { let _v = Vec::new(); } }\n",
        )]);
        let diags = &r.h2["crates/core/src/a.rs"];
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn stats_counts_graph_shape() {
        let r = flow_of(&[(
            "core",
            "crates/core/src/a.rs",
            "// chainiq-analyze: hot\n\
             pub fn tick() { helper(); }\n\
             fn helper() {}\n",
        )]);
        assert_eq!(r.stats.functions, 2);
        assert_eq!(r.stats.edges, 1);
        assert_eq!(r.stats.hot_roots, 1);
    }
}
