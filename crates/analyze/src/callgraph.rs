//! The workspace call graph, built from [`crate::parser`] output.
//!
//! Resolution is **conservative and name-based**: a call site links to
//! every workspace function that could plausibly be its target —
//!
//! * a free call `helper(…)` links to every free `fn helper` visible
//!   from the caller's crate;
//! * a method call `x.step(…)` links to every `fn step` defined inside
//!   *any* visible `impl`/`trait` block (no type inference — all
//!   candidate impls are taken, which is exactly what makes H2/T1 sound
//!   against dynamic dispatch and generics);
//! * a qualified call `Type::assoc(…)` links to methods of impls on
//!   `Type` (or of trait `Type`), falling back to free functions for
//!   module-qualified paths (`module::helper(…)`).
//!
//! Candidates are filtered by the crate dependency graph: crate A's
//! calls can only land in A itself or in crates A (transitively) depends
//! on, and cross-crate targets must be exported (`pub`, or a trait
//! method). Without this filter, same-named entry points across sibling
//! crates (every queue has a `step`) would weld the whole workspace into
//! one blob and drown the flow rules in false witnesses.
//!
//! Internals are `Vec` + `BTreeSet`/`BTreeMap` only, and nodes are laid
//! out in path-sorted file order, so every traversal — and therefore
//! every diagnostic and witness path — is deterministic.

use crate::parser::{CallKind, FileItems, FnItem};
use crate::rules::Markers;
use std::collections::{BTreeMap, BTreeSet};

/// One function in the graph.
#[derive(Debug)]
pub(crate) struct Node {
    /// Crate directory name under `crates/`.
    pub(crate) crate_name: String,
    /// Workspace-relative file path.
    pub(crate) file: String,
    /// Whether the file is a binary target.
    pub(crate) is_bin: bool,
    /// The parsed function.
    pub(crate) item: FnItem,
}

impl Node {
    /// `file:line (name)` — one hop of a witness path.
    pub(crate) fn describe(&self) -> String {
        format!("{}:{} ({})", self.file, self.item.line, self.item.name)
    }
}

/// The whole-workspace call graph.
#[derive(Debug, Default)]
pub(crate) struct Graph {
    /// Non-test functions, in path-sorted file order then source order.
    pub(crate) nodes: Vec<Node>,
    /// `edges[caller]` → candidate callee indices.
    pub(crate) edges: Vec<BTreeSet<usize>>,
    /// Reverse edges, for backward taint traversal.
    pub(crate) redges: Vec<BTreeSet<usize>>,
    /// Per-file marker facts (suppressions, hot markers).
    pub(crate) markers: BTreeMap<String, Markers>,
    /// Total number of distinct call edges.
    pub(crate) edge_count: usize,
}

/// Builds the graph. `deps` maps each crate directory name to the
/// (transitively closed) set of crate directories it may call into.
pub(crate) fn build(files: Vec<FileItems>, deps: &BTreeMap<String, BTreeSet<String>>) -> Graph {
    let mut nodes = Vec::new();
    let mut markers = BTreeMap::new();
    for fi in files {
        markers.insert(fi.file.clone(), fi.markers);
        for item in fi.fns {
            if item.is_test {
                continue;
            }
            nodes.push(Node {
                crate_name: fi.crate_name.clone(),
                file: fi.file.clone(),
                is_bin: fi.is_bin,
                item,
            });
        }
    }

    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_name.entry(n.item.name.as_str()).or_default().push(i);
    }

    let mut edges = vec![BTreeSet::new(); nodes.len()];
    let mut redges = vec![BTreeSet::new(); nodes.len()];
    let mut edge_count = 0usize;
    for c in 0..nodes.len() {
        let caller = &nodes[c];
        for call in &caller.item.calls {
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue;
            };
            for &k in cands {
                let callee = &nodes[k];
                if !crate_visible(caller, callee, deps) {
                    continue;
                }
                let shape_ok = match &call.kind {
                    CallKind::Free => !callee.item.in_container,
                    CallKind::Method => callee.item.in_container,
                    CallKind::Qualified(q) => {
                        callee.item.impl_ty.as_deref() == Some(q.as_str())
                            || callee.item.trait_name.as_deref() == Some(q.as_str())
                            || !callee.item.in_container
                    }
                };
                if shape_ok && edges[c].insert(k) {
                    redges[k].insert(c);
                    edge_count += 1;
                }
            }
        }
    }

    Graph { nodes, edges, redges, markers, edge_count }
}

/// Whether `caller`'s crate may call `callee` at all: same crate, or a
/// (transitive) dependency exposing the function.
fn crate_visible(caller: &Node, callee: &Node, deps: &BTreeMap<String, BTreeSet<String>>) -> bool {
    if caller.crate_name == callee.crate_name {
        return true;
    }
    if !deps.get(&caller.crate_name).is_some_and(|d| d.contains(&callee.crate_name)) {
        return false;
    }
    // Cross-crate: the target must be exported. Trait methods are
    // callable through the (pub) trait even when the `fn` itself carries
    // no `pub`, so count them as exported.
    callee.item.is_pub || callee.item.trait_name.is_some()
}

/// Transitively closes a direct crate-dependency map (dir → dirs).
pub(crate) fn close_deps(
    direct: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut closed = direct.clone();
    // Fixed-point iteration; the workspace has a dozen crates, so no
    // fancy algorithm is warranted.
    loop {
        let mut grew = false;
        for name in direct.keys() {
            let reach: BTreeSet<String> = closed[name]
                .iter()
                .flat_map(|d| closed.get(d).into_iter().flatten().cloned())
                .collect();
            if let Some(entry) = closed.get_mut(name) {
                for r in reach {
                    grew |= entry.insert(r);
                }
            }
        }
        if !grew {
            return closed;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn graph_of(files: &[(&str, &str, &str)]) -> Graph {
        // All fixture crates may see each other; tests that need the dep
        // filter build their own map.
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (c, _, _) in files {
            let all: BTreeSet<String> = files.iter().map(|(c2, _, _)| (*c2).to_string()).collect();
            deps.insert((*c).to_string(), all);
        }
        build(files.iter().map(|(c, f, src)| parse_file(c, f, src, false)).collect(), &deps)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.nodes.iter().position(|n| n.item.name == name).unwrap_or_else(|| panic!("no {name}"))
    }

    #[test]
    fn free_call_links_and_methods_do_not_cross_shapes() {
        let g = graph_of(&[(
            "core",
            "crates/core/src/a.rs",
            "pub fn a() { b(); }\nfn b() {}\nimpl T { fn a(&self) {} }\n",
        )]);
        let a = idx(&g, "a");
        let b = idx(&g, "b");
        assert!(g.edges[a].contains(&b));
        // The free call `b()` must not link to a method named `a`.
        let method_a =
            g.nodes.iter().position(|n| n.item.name == "a" && n.item.in_container).unwrap();
        assert!(!g.edges[a].contains(&method_a));
        assert!(g.redges[b].contains(&a));
    }

    #[test]
    fn method_call_links_to_every_candidate_impl() {
        let g = graph_of(&[(
            "core",
            "crates/core/src/a.rs",
            "pub fn drive(x: &mut dyn Q) { x.step(); }\n\
             impl A { fn step(&mut self) {} }\n\
             impl B { fn step(&mut self) {} }\n\
             fn step() {}\n",
        )]);
        let drive = idx(&g, "drive");
        let targets: Vec<bool> =
            g.edges[drive].iter().map(|&k| g.nodes[k].item.in_container).collect();
        assert_eq!(targets, vec![true, true], "both impls, not the free fn: {targets:?}");
    }

    #[test]
    fn qualified_call_prefers_the_named_type() {
        let g = graph_of(&[(
            "core",
            "crates/core/src/a.rs",
            "pub fn f() { A::step(); }\n\
             impl A { fn step() {} }\n\
             impl B { fn step() {} }\n",
        )]);
        let f = idx(&g, "f");
        assert_eq!(g.edges[f].len(), 1);
        let k = *g.edges[f].iter().next().unwrap();
        assert_eq!(g.nodes[k].item.impl_ty.as_deref(), Some("A"));
    }

    #[test]
    fn cross_crate_edges_respect_deps_and_visibility() {
        let files = [
            ("cpu", "crates/cpu/src/a.rs", "pub fn f() { helper(); }\n"),
            ("core", "crates/core/src/b.rs", "pub fn helper() {}\nfn hidden() { helper(); }\n"),
            ("mem", "crates/mem/src/c.rs", "pub fn helper() {}\n"),
        ];
        // cpu depends on core only.
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        deps.insert("cpu".into(), ["core".to_string()].into_iter().collect());
        let g =
            build(files.iter().map(|(c, f, src)| parse_file(c, f, src, false)).collect(), &deps);
        let f = idx(&g, "f");
        let targets: Vec<&str> = g.edges[f].iter().map(|&k| g.nodes[k].file.as_str()).collect();
        assert_eq!(targets, vec!["crates/core/src/b.rs"], "mem is not a dep of cpu: {targets:?}");
    }

    #[test]
    fn cross_crate_private_fns_are_not_candidates() {
        let files = [
            ("cpu", "crates/cpu/src/a.rs", "pub fn f() { hidden(); }\n"),
            ("core", "crates/core/src/b.rs", "fn hidden() {}\n"),
        ];
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        deps.insert("cpu".into(), ["core".to_string()].into_iter().collect());
        let g =
            build(files.iter().map(|(c, f, src)| parse_file(c, f, src, false)).collect(), &deps);
        assert!(g.edges[idx(&g, "f")].is_empty());
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let g = graph_of(&[(
            "core",
            "crates/core/src/a.rs",
            "pub fn real() {}\n#[cfg(test)]\nmod tests { fn t() { real(); } }\n",
        )]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.edge_count, 0);
    }

    #[test]
    fn close_deps_is_transitive() {
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        direct.insert("a".into(), ["b".to_string()].into_iter().collect());
        direct.insert("b".into(), ["c".to_string()].into_iter().collect());
        direct.insert("c".into(), BTreeSet::new());
        let closed = close_deps(&direct);
        assert!(closed["a"].contains("c"), "{closed:?}");
    }
}
