//! `--check-perf` / `--check-serve`: the perf-gate JSON consistency
//! checks, in Rust.
//!
//! ci.sh used to shell out to a python3 heredoc to validate the perf
//! artifacts; this module is the hermetic replacement — the last
//! non-Rust toolchain dependency in CI. For each benchmark suite it
//! asserts:
//!
//! 1. the emitted `BENCH_<suite>.json` names the right suite, has a
//!    non-empty `points` array, and a positive headline aggregate
//!    (`sim_kcycles_per_sec` for perf, `jobs_per_sec` for serve —
//!    where `warm_over_cold` must additionally be positive);
//! 2. the last line of `BENCH_<suite>_history.jsonl` covers the same
//!    point set and carries a non-empty `rev` label;
//! 3. the emitted point set matches the *committed*
//!    `results/BENCH_<suite>.json` — a silently dropped or renamed
//!    matrix point is a gate regression.

use crate::json::{parse, Value};
use std::collections::BTreeSet;

/// Runs the consistency check over the perf-suite artifact texts
/// (emitted JSON, history JSONL, committed JSON). Returns a one-line
/// summary.
///
/// # Errors
/// A human-readable description of the first inconsistency found.
pub fn check_perf(emitted: &str, history: &str, committed: &str) -> Result<String, String> {
    check_suite("perf", &["sim_kcycles_per_sec"], emitted, history, committed)
}

/// Runs the consistency check over the serve-suite artifact texts; the
/// serve aggregate must carry positive `jobs_per_sec` *and*
/// `warm_over_cold` (a cold-only or degenerate storm run gates red).
///
/// # Errors
/// A human-readable description of the first inconsistency found.
pub fn check_serve(emitted: &str, history: &str, committed: &str) -> Result<String, String> {
    check_suite("serve", &["jobs_per_sec", "warm_over_cold"], emitted, history, committed)
}

fn check_suite(
    suite: &str,
    aggregate_keys: &[&str],
    emitted: &str,
    history: &str,
    committed: &str,
) -> Result<String, String> {
    let doc = parse(emitted).map_err(|e| format!("emitted {suite} JSON does not parse: {e}"))?;

    let found = doc.get("suite").and_then(Value::as_str).unwrap_or_default();
    if found != suite {
        return Err(format!("emitted suite is `{found}`, expected `{suite}`"));
    }
    let points = point_set(&doc, "emitted")?;
    let mut headline = 0.0;
    for key in aggregate_keys {
        let agg = doc
            .get("aggregate")
            .and_then(|a| a.get(key))
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("emitted JSON lacks aggregate.{key}"))?;
        if !agg.is_finite() || agg <= 0.0 {
            return Err(format!("aggregate {key} is {agg}, expected > 0"));
        }
        if key == aggregate_keys.first().unwrap_or(&"") {
            headline = agg;
        }
    }

    // Every history line is itself one JSON object covering the same
    // matrix; only the freshest line must match the emitted run.
    let last_line =
        history.lines().rfind(|l| !l.trim().is_empty()).ok_or("history file has no records")?;
    let last = parse(last_line).map_err(|e| format!("last history line does not parse: {e}"))?;
    let hist_points = point_set(&last, "history")?;
    if hist_points != points {
        return Err(format!(
            "history point set drifted: only-emitted={:?} only-history={:?}",
            diff(&points, &hist_points),
            diff(&hist_points, &points)
        ));
    }
    if last.get("rev").and_then(Value::as_str).unwrap_or_default().is_empty() {
        return Err("history line lacks a revision label".to_string());
    }

    // The smoke run must cover exactly the matrix the committed artifact
    // records.
    let committed_doc =
        parse(committed).map_err(|e| format!("committed {suite} JSON does not parse: {e}"))?;
    let committed_points = point_set(&committed_doc, "committed")?;
    if committed_points != points {
        return Err(format!(
            "matrix drifted from the committed artifact: only-emitted={:?} only-committed={:?}",
            diff(&points, &committed_points),
            diff(&committed_points, &points)
        ));
    }

    Ok(format!(
        "{suite} artifacts consistent: {} point(s), aggregate {headline} {}",
        points.len(),
        aggregate_keys.first().unwrap_or(&"")
    ))
}

/// The set of `points[].point` names of one artifact document.
fn point_set(doc: &Value, which: &str) -> Result<BTreeSet<String>, String> {
    let arr = doc
        .get("points")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{which} JSON lacks a points array"))?;
    if arr.is_empty() {
        return Err(format!("{which} JSON has no points"));
    }
    arr.iter()
        .map(|p| {
            p.get("point")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{which} JSON has a point without a `point` name"))
        })
        .collect()
}

fn diff(a: &BTreeSet<String>, b: &BTreeSet<String>) -> Vec<String> {
    a.difference(b).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EMITTED: &str = "{\"suite\": \"perf\", \
        \"points\": [{\"point\": \"a\"}, {\"point\": \"b\"}], \
        \"aggregate\": {\"sim_kcycles_per_sec\": 123.4}}";
    const HISTORY: &str = "{\"rev\": \"old\", \"points\": [{\"point\": \"a\"}]}\n\
        {\"rev\": \"abc123\", \"points\": [{\"point\": \"b\"}, {\"point\": \"a\"}]}\n";
    const COMMITTED: &str = "{\"points\": [{\"point\": \"a\"}, {\"point\": \"b\"}]}";

    const SERVE_EMITTED: &str = "{\"suite\": \"serve\", \
        \"points\": [{\"point\": \"cold\"}, {\"point\": \"warm\"}], \
        \"aggregate\": {\"jobs_per_sec\": 9000.5, \"warm_over_cold\": 42.0}}";
    const SERVE_HISTORY: &str = "{\"rev\": \"abc123\", \
        \"points\": [{\"point\": \"cold\"}, {\"point\": \"warm\"}]}\n";
    const SERVE_COMMITTED: &str = "{\"points\": [{\"point\": \"warm\"}, {\"point\": \"cold\"}]}";

    #[test]
    fn consistent_artifacts_pass() {
        let summary = check_perf(EMITTED, HISTORY, COMMITTED).unwrap();
        assert!(summary.contains("2 point(s)"), "{summary}");
    }

    #[test]
    fn wrong_suite_empty_points_and_zero_aggregate_fail() {
        let bad = EMITTED.replace("perf", "fig3");
        assert!(check_perf(&bad, HISTORY, COMMITTED).unwrap_err().contains("suite"));
        let empty = "{\"suite\": \"perf\", \"points\": [], \
            \"aggregate\": {\"sim_kcycles_per_sec\": 1}}";
        assert!(check_perf(empty, HISTORY, COMMITTED).unwrap_err().contains("no points"));
        let zero = EMITTED.replace("123.4", "0");
        assert!(check_perf(&zero, HISTORY, COMMITTED).unwrap_err().contains("expected > 0"));
    }

    #[test]
    fn history_drift_and_missing_rev_fail() {
        let drifted = "{\"rev\": \"abc\", \"points\": [{\"point\": \"a\"}]}\n";
        let err = check_perf(EMITTED, drifted, COMMITTED).unwrap_err();
        assert!(err.contains("history point set drifted"), "{err}");
        let no_rev = "{\"rev\": \"\", \"points\": [{\"point\": \"a\"}, {\"point\": \"b\"}]}\n";
        assert!(check_perf(EMITTED, no_rev, COMMITTED).unwrap_err().contains("revision"));
        assert!(check_perf(EMITTED, "\n\n", COMMITTED).unwrap_err().contains("no records"));
    }

    #[test]
    fn committed_matrix_drift_fails_with_both_sides() {
        let committed = "{\"points\": [{\"point\": \"a\"}, {\"point\": \"c\"}]}";
        let err = check_perf(EMITTED, HISTORY, committed).unwrap_err();
        assert!(err.contains("only-emitted=[\"b\"]"), "{err}");
        assert!(err.contains("only-committed=[\"c\"]"), "{err}");
    }

    #[test]
    fn serve_artifacts_pass_and_suites_do_not_cross() {
        let summary = check_serve(SERVE_EMITTED, SERVE_HISTORY, SERVE_COMMITTED).unwrap();
        assert!(summary.contains("jobs_per_sec"), "{summary}");
        // A perf artifact handed to the serve gate is a suite mismatch.
        let err = check_serve(EMITTED, SERVE_HISTORY, SERVE_COMMITTED).unwrap_err();
        assert!(err.contains("expected `serve`"), "{err}");
    }

    #[test]
    fn serve_requires_positive_warm_over_cold() {
        let flat = SERVE_EMITTED.replace("42.0", "0");
        let err = check_serve(&flat, SERVE_HISTORY, SERVE_COMMITTED).unwrap_err();
        assert!(err.contains("warm_over_cold"), "{err}");
        let missing = SERVE_EMITTED.replace(", \"warm_over_cold\": 42.0", "");
        let err = check_serve(&missing, SERVE_HISTORY, SERVE_COMMITTED).unwrap_err();
        assert!(err.contains("lacks aggregate.warm_over_cold"), "{err}");
    }
}
