//! The rule engine: walks a file's token stream and reports violations
//! of the determinism / hermeticity / panic-hygiene rules.
//!
//! Rules over *source* (this module; manifests are checked in
//! [`crate::manifest`], the ratchet in [`crate::baseline`]):
//!
//! * **D1** — no `HashMap`/`HashSet` in simulation crates. Hash-map
//!   iteration order varies run to run; one `for … in &map` inside the
//!   timing model silently breaks the bit-for-bit reproducibility every
//!   experiment depends on. Rather than attempt flow analysis to prove a
//!   particular map is never iterated, the rule bans the types outright
//!   in sim crates — `BTreeMap`/`BTreeSet` are the deterministic
//!   drop-ins, and a lookup-only map that must stay hashed can carry an
//!   inline suppression.
//! * **D2** — no `std::time` (`Instant`, `SystemTime`) outside
//!   `crates/bench`, `crates/devtest` and `crates/serve`. Wall-clock
//!   reads in the model are hidden inputs.
//! * **D3** — no `std::env::var` (or `var_os`/`vars`) outside
//!   `crates/bench/src/knob.rs`, the one blessed knob-parsing module.
//!   Scattered env reads are hidden inputs ci.sh cannot see.
//! * **P1** — count `.unwrap()` / `.expect(…)` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test code. The
//!   count per file is ratcheted against `analyze-baseline.toml`: the
//!   existing debt does not fail CI, any *increase* does.
//! * **P2** — no allocation in hot-marked kernel functions. A function
//!   annotated with the `hot` marker comment (same line as `fn` or the
//!   line directly above) is a per-cycle simulation path; `.clone()`,
//!   `.collect()`, `.to_vec()`, `.to_string()`, `Vec::new`, `Box::new`
//!   and `format!` inside its body are flagged — reuse a scratch buffer
//!   or an index instead. (**H2**, in [`crate::flows`], extends the same
//!   check to every function a hot function transitively calls.)
//! * **P3** — no `BTreeMap`/`BTreeSet` in a file carrying the bare
//!   `hot-path` marker comment. Those files hold the
//!   per-cycle kernel data structures, which were deliberately rebuilt
//!   on slab-intrusive lists, bitsets and event wheels; a tree map
//!   reintroduces pointer-chasing node allocation on the paths the
//!   marker protects. Test code is exempt as always (reference models
//!   in differential tests are the intended place for tree maps).
//! * **S1** — no wall-clock or environment reads (`Instant`,
//!   `SystemTime`, `std::time`, `env::var*`) inside a `Snapshot` impl —
//!   in **any** crate, including the ones D2/D3 exempt. Checkpoint
//!   save/restore must be a pure function of machine state; a hidden
//!   input there makes images nonreproducible and silently breaks the
//!   restore-equals-continuous guarantee.
//! * **U1** — every crate's `src/lib.rs` must carry
//!   `#![forbid(unsafe_code)]`.
//! * **A0** — a suppression comment without a reason is itself a
//!   violation.
//!
//! The flow rules — **H2** (transitive hot-path purity), **T1**
//! (determinism taint), and the **R1** panic-reachability report — run
//! over the workspace call graph in [`crate::flows`]; this module only
//! defines their [`RuleId`]s, `--explain` text, and suppressions.
//!
//! Test code — `#[cfg(test)]` items and `#[test]` functions — is exempt
//! from every rule: tests may use wall clocks, unwraps and hash maps
//! freely.
//!
//! # Suppression
//!
//! `// chainiq-analyze: allow(D1, why this occurrence is sound)` on the
//! same line or the line directly above an occurrence suppresses it. The
//! reason is mandatory (**A0**). The only other well-formed marker
//! bodies are the bare word `hot`, which opts the following function
//! into P2, and the bare word `hot-path`, which opts the whole file into
//! P3.

use crate::lexer::{lex, TokKind, Token};
use std::collections::BTreeMap;

/// Crate directory names (under `crates/`) whose code is part of the
/// simulation proper and therefore subject to D1, and whose public
/// functions are T1 determinism sinks. `analyze` itself is on the list:
/// the call-graph analysis must be deterministic too (path-sorted
/// diagnostics, BTree-only internals), so it passes its own D1.
pub const SIM_CRATES: &[&str] = &[
    "analyze", "baseline", "chainiq", "circuit", "core", "cpu", "isa", "mem", "power", "predict",
    "workload",
];

/// Crates allowed to read wall clocks (D2): the bench harness times
/// experiment wall-clock, the devtest harness reports case timing, and
/// the serve daemon's storm benchmark measures jobs/sec. `serve` is
/// deliberately *not* in [`SIM_CRATES`]: like `bench` it is harness
/// code around the model, and its `ServeStats` counters are still T1
/// sinks (Stats-suffixed methods are sinks in every crate), so timing
/// taint must not leak into the counters it reports.
pub const TIME_ALLOWED_CRATES: &[&str] = &["bench", "devtest", "serve"];

/// The one file allowed to read the environment (D3).
pub const ENV_ALLOWED_FILE: &str = "crates/bench/src/knob.rs";

/// Identifiers of the rules, as they appear in diagnostics and
/// suppression comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash collections in sim crates.
    D1,
    /// Wall-clock reads outside bench/devtest.
    D2,
    /// Environment reads outside the knob module.
    D3,
    /// Registry (non-workspace) dependency in a manifest.
    H1,
    /// Panic-site budget exceeded.
    P1,
    /// Allocation in a hot-marked kernel function.
    P2,
    /// Tree map in a hot-path-marked file.
    P3,
    /// Wall-clock or environment read inside a `Snapshot` impl.
    S1,
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    U1,
    /// Malformed suppression comment.
    A0,
    /// Stale baseline entry (file no longer exists).
    B1,
    /// Allocation transitively reachable from a hot-marked function.
    H2,
    /// Determinism-taint source reaching a Snapshot/Stats/sim-public sink.
    T1,
    /// Panic-reachability report entry (never fails on its own; the id
    /// exists for `--explain` and for `allow(R1, …)` justifications).
    R1,
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RuleId::D1 => "D1",
            RuleId::D2 => "D2",
            RuleId::D3 => "D3",
            RuleId::H1 => "H1",
            RuleId::P1 => "P1",
            RuleId::P2 => "P2",
            RuleId::P3 => "P3",
            RuleId::S1 => "S1",
            RuleId::U1 => "U1",
            RuleId::A0 => "A0",
            RuleId::B1 => "B1",
            RuleId::H2 => "H2",
            RuleId::T1 => "T1",
            RuleId::R1 => "R1",
        })
    }
}

impl RuleId {
    fn from_str_id(s: &str) -> Option<RuleId> {
        match s {
            "D1" => Some(RuleId::D1),
            "D2" => Some(RuleId::D2),
            "D3" => Some(RuleId::D3),
            "H1" => Some(RuleId::H1),
            "P1" => Some(RuleId::P1),
            "P2" => Some(RuleId::P2),
            "P3" => Some(RuleId::P3),
            "S1" => Some(RuleId::S1),
            "U1" => Some(RuleId::U1),
            "A0" => Some(RuleId::A0),
            "B1" => Some(RuleId::B1),
            "H2" => Some(RuleId::H2),
            "T1" => Some(RuleId::T1),
            "R1" => Some(RuleId::R1),
            _ => None,
        }
    }

    /// Parses a rule id from its diagnostic spelling (`"D1"`, `"H2"`, …).
    /// Public counterpart of the suppression-comment parser, used by the
    /// CLI's `--explain`.
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::from_str_id(s)
    }

    /// Every rule, in catalogue order (for `--explain` with no argument).
    pub const ALL: &'static [RuleId] = &[
        RuleId::D1,
        RuleId::D2,
        RuleId::D3,
        RuleId::H1,
        RuleId::H2,
        RuleId::P1,
        RuleId::P2,
        RuleId::P3,
        RuleId::R1,
        RuleId::S1,
        RuleId::T1,
        RuleId::U1,
        RuleId::A0,
        RuleId::B1,
    ];

    /// One-paragraph rationale plus the suppression recipe, printed by
    /// `chainiq-analyze --explain <RULE>`.
    #[must_use]
    pub fn explain(self) -> &'static str {
        match self {
            RuleId::D1 => {
                "D1 — no HashMap/HashSet in simulation crates.\n\
                 Hash iteration order varies run to run; one `for … in &map` inside the timing\n\
                 model silently breaks the bit-for-bit reproducibility every experiment rests\n\
                 on. BTreeMap/BTreeSet are the deterministic drop-ins.\n\
                 Suppress: `// chainiq-analyze: allow(D1, reason)` on or above the line, e.g.\n\
                 for a lookup-only map that is provably never iterated."
            }
            RuleId::D2 => {
                "D2 — no std::time (Instant, SystemTime) outside crates/bench and\n\
                 crates/devtest. Wall-clock reads in the model are hidden inputs: they make\n\
                 two runs of the same seed observably different.\n\
                 Suppress: `// chainiq-analyze: allow(D2, reason)` when the read provably\n\
                 never feeds simulation state or stats."
            }
            RuleId::D3 => {
                "D3 — no std::env::var* outside crates/bench/src/knob.rs. Every CHAINIQ_*\n\
                 knob goes through the central helper so typos warn instead of silently\n\
                 changing the experiment.\n\
                 Suppress: `// chainiq-analyze: allow(D3, reason)` for reads that are a\n\
                 module's own debugging interface, not experiment inputs."
            }
            RuleId::H1 => {
                "H1 — every manifest dependency must resolve inside the workspace\n\
                 (`path = …` or `workspace = true`). Registry/git deps break the hermetic\n\
                 --offline build. There is no inline suppression: the fix is always to\n\
                 vendor the code in-repo or drop the dependency."
            }
            RuleId::H2 => {
                "H2 — transitive hot-path purity. From every `// chainiq-analyze: hot`\n\
                 function, no reachable callee (any depth, workspace-wide, conservative\n\
                 name-based call resolution) may allocate: .clone(), .collect(), .to_vec(),\n\
                 .to_string(), Vec::new, Box::new, format!. This generalizes P2 from\n\
                 body-local to reachability: a hot function calling an innocent-looking\n\
                 helper that allocates is exactly the regression the perf gate cannot see.\n\
                 Diagnostics carry the witness call path from the hot root to the site.\n\
                 Suppress: `// chainiq-analyze: allow(H2, reason)` at the allocation site\n\
                 (e.g. a cold error path, or a one-time growth amortized to zero); residual\n\
                 debt is ratcheted per file under [hot-alloc-budget] in analyze-baseline.toml."
            }
            RuleId::P1 => {
                "P1 — ratcheted panic budget. Non-test .unwrap()/.expect()/panic!/\n\
                 unreachable!/todo!/unimplemented! counts per file are pinned in\n\
                 analyze-baseline.toml; existing debt passes, any increase fails, a decrease\n\
                 prints a note (and fails --check-tight) until --write-baseline re-pins it.\n\
                 Suppress: `// chainiq-analyze: allow(P1, reason)` on a provably-unreachable\n\
                 site; binary targets (src/bin, src/main.rs) are exempt."
            }
            RuleId::P2 => {
                "P2 — no allocation in the body of a hot-marked kernel function\n\
                 (.clone(), .collect(), .to_vec(), .to_string(), Vec::new, Box::new,\n\
                 format!). Mark per-cycle functions with `// chainiq-analyze: hot` on the\n\
                 `fn` line or the line above. H2 extends this check to everything the\n\
                 function transitively calls.\n\
                 Suppress: `// chainiq-analyze: allow(P2, reason)` at the site."
            }
            RuleId::P3 => {
                "P3 — no BTreeMap/BTreeSet in a file carrying the\n\
                 `// chainiq-analyze: hot-path` marker. The kernel files were deliberately\n\
                 rebuilt on slab-intrusive lists, bitsets and event wheels; a tree map\n\
                 reintroduces pointer-chasing node allocation. Test code is exempt\n\
                 (reference models in differential tests are the intended place for maps).\n\
                 Suppress: `// chainiq-analyze: allow(P3, reason)` for cold-path tables."
            }
            RuleId::R1 => {
                "R1 — panic-reachability report (informational, never fails a run). Every\n\
                 P1 panic site is annotated with whether it is reachable from a hot-marked\n\
                 kernel entry point through the call graph, so ratchet cleanup is\n\
                 prioritized by blast radius: a panic reachable from the per-cycle loop can\n\
                 kill a billion-cycle sweep. See the `panic_report` array in `--json`.\n\
                 Mark a site as reviewed with `// chainiq-analyze: allow(R1, reason)`: it\n\
                 stays in the report, flagged as justified."
            }
            RuleId::S1 => {
                "S1 — no wall-clock or environment reads inside a `Snapshot` impl, in any\n\
                 crate (including the ones D2/D3 exempt). Checkpoint save/restore must be a\n\
                 pure function of machine state; a hidden input there silently breaks the\n\
                 restore-equals-continuous guarantee. T1 extends this check to everything\n\
                 the impl transitively calls.\n\
                 Suppress: `// chainiq-analyze: allow(S1, reason)` when the read provably\n\
                 never enters the image."
            }
            RuleId::T1 => {
                "T1 — determinism taint. A function using a nondeterminism source\n\
                 (std::time/Instant/SystemTime, env::var*, HashMap/HashSet iteration,\n\
                 thread::current) must not be reachable, through the call graph, from a\n\
                 Snapshot impl method, a *Stats impl method, or a public function of a\n\
                 simulation crate. Direct uses are D1/D2/D3/S1's province; T1 catches the\n\
                 flows those file-local rules cannot see, and prints the witness path\n\
                 (`sink → helper → source`).\n\
                 Suppress: `// chainiq-analyze: allow(T1, reason)` at the source site;\n\
                 residual debt is ratcheted per sink file under [taint-budget]."
            }
            RuleId::U1 => {
                "U1 — every crate root must carry `#![forbid(unsafe_code)]`. The workspace\n\
                 has no unsafe code; keep it that way by construction. No suppression —\n\
                 add the attribute."
            }
            RuleId::A0 => {
                "A0 — a malformed marker comment (`chainiq-analyze:` followed by neither\n\
                 `hot`, `hot-path`, nor a well-formed `allow(RULE, reason)`) is itself a\n\
                 violation. Suppressions are permanent documentation; a reasonless one is\n\
                 noise. Fix the comment."
            }
            RuleId::B1 => {
                "B1 — a baseline entry for a file that no longer exists. A stale entry's\n\
                 budget could silently absorb new debt after a rename. Fix with\n\
                 `--write-baseline`."
            }
        }
    }
}

/// One finding, formatted as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for file-level findings such as H1 and B1).
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Result of scanning one source file.
#[derive(Debug, Default)]
pub struct SourceReport {
    /// Rule violations (D1/D2/D3/U1/A0) found in the file.
    pub diags: Vec<Diagnostic>,
    /// Unsuppressed P1 panic sites in non-test code (compared against the
    /// baseline by the caller).
    pub panic_sites: u32,
}

/// The comment marker that introduces a suppression.
const SUPPRESS_MARKER: &str = "chainiq-analyze:";

#[derive(Debug)]
pub(crate) struct Suppression {
    pub(crate) rule: RuleId,
    /// Lines this suppression covers: its own and the next.
    pub(crate) lines: [u32; 2],
}

/// Everything the marker comments of one file declare: suppressions,
/// `hot` function markers, and the file-level `hot-path` marker. Shared
/// between the per-file rule scan and the workspace flow analysis
/// ([`crate::flows`]), which needs the same suppression and hot-marker
/// facts without re-reporting A0.
#[derive(Debug, Default)]
pub(crate) struct Markers {
    pub(crate) sups: Vec<Suppression>,
    pub(crate) hot_lines: Vec<u32>,
    pub(crate) hot_path: bool,
}

impl Markers {
    /// Whether `line` in this file is covered by an `allow(rule, …)`.
    pub(crate) fn suppressed(&self, rule: RuleId, line: u32) -> bool {
        is_suppressed(&self.sups, rule, line)
    }

    /// Whether a `fn` token on `line` carries the `hot` marker (same
    /// line or the line directly above).
    pub(crate) fn is_hot_fn_line(&self, line: u32) -> bool {
        self.hot_lines.iter().any(|&l| l == line || l + 1 == line)
    }
}

/// Parses suppression and `hot` / `hot-path` marker comments out of the
/// token stream. Malformed ones (neither a marker word nor `allow(...)`,
/// unknown rule id, missing reason) produce A0 diagnostics. Returns the
/// suppressions, the lines carrying a `hot` marker (which gates P2; see
/// [`hot_mask`]) and whether the file carries a `hot-path` marker (which
/// gates P3).
pub(crate) fn collect_markers(
    file: &str,
    toks: &[Token<'_>],
    diags: &mut Vec<Diagnostic>,
) -> Markers {
    let mut out = Vec::new();
    let mut hot_lines = Vec::new();
    let mut hot_path = false;
    for t in toks {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        let Some(pos) = t.text.find(SUPPRESS_MARKER) else {
            continue;
        };
        let rest = t.text[pos + SUPPRESS_MARKER.len()..].trim_start();
        if rest.trim_end() == "hot" {
            hot_lines.push(t.line);
            continue;
        }
        if rest.trim_end() == "hot-path" {
            hot_path = true;
            continue;
        }
        let bad = |msg: &str, diags: &mut Vec<Diagnostic>| {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: t.line,
                rule: RuleId::A0,
                message: format!(
                    "{msg} — write `// chainiq-analyze: allow(RULE, reason)` with a non-empty \
                     reason, `// chainiq-analyze: hot` to mark a kernel function, or \
                     `// chainiq-analyze: hot-path` to mark a kernel file"
                ),
            });
        };
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.rfind(')').map(|e| &r[..e]))
        else {
            bad("suppression comment without a well-formed `allow(...)`", diags);
            continue;
        };
        let (rule_str, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (inner.trim(), ""),
        };
        let Some(rule) = RuleId::from_str_id(rule_str) else {
            bad(&format!("suppression names unknown rule `{rule_str}`"), diags);
            continue;
        };
        if reason.is_empty() {
            bad(&format!("suppression of {rule} is missing its mandatory reason"), diags);
            continue;
        }
        out.push(Suppression { rule, lines: [t.line, t.line + 1] });
    }
    Markers { sups: out, hot_lines, hot_path }
}

pub(crate) fn is_suppressed(sups: &[Suppression], rule: RuleId, line: u32) -> bool {
    sups.iter().any(|s| s.rule == rule && s.lines.contains(&line))
}

/// Marks token ranges that belong to test-only items: an item preceded by
/// `#[cfg(test)]` or `#[test]` (attributes stacked in any order), covered
/// to the end of its brace block or terminating semicolon.
pub(crate) fn test_mask(toks: &[Token<'_>]) -> Vec<bool> {
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut mask = vec![false; toks.len()];
    let at = |ci: usize| -> Option<&Token<'_>> { code.get(ci).map(|&i| &toks[i]) };
    let is_punct =
        |ci: usize, p: &str| at(ci).is_some_and(|t| t.kind == TokKind::Punct && t.text == p);
    let is_ident =
        |ci: usize, s: &str| at(ci).is_some_and(|t| t.kind == TokKind::Ident && t.text == s);

    // Advances past one `#[...]` attribute starting at `ci` (which must
    // point at `#`); returns (end, is_test_gate).
    let scan_attr = |mut ci: usize| -> (usize, bool) {
        let start = ci;
        ci += 1; // '#'
        if is_punct(ci, "!") {
            ci += 1; // inner attribute `#![...]` — never a test gate
        }
        if !is_punct(ci, "[") {
            return (ci, false);
        }
        let attr_body = ci + 1;
        let mut depth = 0usize;
        while let Some(t) = at(ci) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            ci += 1;
        }
        let end = ci + 1;
        // `#[test]` exactly, or `#[cfg(test)]` exactly. `#[cfg(not(test))]`
        // and feature gates are not test gates.
        let gate = (is_ident(attr_body, "test") && is_punct(attr_body + 1, "]"))
            || (is_ident(attr_body, "cfg")
                && is_punct(attr_body + 1, "(")
                && is_ident(attr_body + 2, "test")
                && is_punct(attr_body + 3, ")"));
        let _ = start;
        (end, gate)
    };

    let mut ci = 0usize;
    while ci < code.len() {
        if !is_punct(ci, "#") {
            ci += 1;
            continue;
        }
        // Scan the full run of attributes on this item.
        let attr_start = ci;
        let mut gated = false;
        while is_punct(ci, "#") {
            let (end, gate) = scan_attr(ci);
            gated |= gate;
            ci = end;
        }
        if !gated {
            continue;
        }
        // Cover the item: to the matching `}` of its first brace block, or
        // to a `;` seen before any `{` (e.g. a gated `use` or `mod foo;`).
        let item_start = ci;
        let mut depth = 0usize;
        let mut item_end = code.len();
        let mut saw_brace = false;
        let mut cj = item_start;
        while cj < code.len() {
            if let Some(t) = at(cj) {
                if t.kind == TokKind::Punct {
                    match t.text {
                        "{" => {
                            depth += 1;
                            saw_brace = true;
                        }
                        "}" => {
                            depth = depth.saturating_sub(1);
                            if saw_brace && depth == 0 {
                                item_end = cj + 1;
                                break;
                            }
                        }
                        ";" if !saw_brace => {
                            item_end = cj + 1;
                            break;
                        }
                        _ => {}
                    }
                }
            }
            cj += 1;
        }
        for &ti in &code[attr_start..item_end.min(code.len())] {
            mask[ti] = true;
        }
        ci = item_end;
    }
    mask
}

/// Marks token ranges inside hot-marked kernel functions: a `fn` whose
/// line carries (or directly follows) a `hot` marker comment is covered
/// through the matching `}` of its body. Tokens inside are subject to
/// P2.
fn hot_mask(toks: &[Token<'_>], hot_lines: &[u32]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    if hot_lines.is_empty() {
        return mask;
    }
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let covered = |line: u32| hot_lines.iter().any(|&l| l == line || l + 1 == line);
    let mut ci = 0usize;
    while ci < code.len() {
        let t = &toks[code[ci]];
        if !(t.kind == TokKind::Ident && t.text == "fn" && covered(t.line)) {
            ci += 1;
            continue;
        }
        // Cover from `fn` to the matching `}` of its body (or a `;` for a
        // bodiless signature, e.g. in a trait).
        let start = ci;
        let mut depth = 0usize;
        let mut saw_brace = false;
        let mut end = code.len();
        let mut cj = ci;
        while cj < code.len() {
            let tj = &toks[code[cj]];
            if tj.kind == TokKind::Punct {
                match tj.text {
                    "{" => {
                        depth += 1;
                        saw_brace = true;
                    }
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if saw_brace && depth == 0 {
                            end = cj + 1;
                            break;
                        }
                    }
                    ";" if !saw_brace => {
                        end = cj + 1;
                        break;
                    }
                    _ => {}
                }
            }
            cj += 1;
        }
        for &ti in &code[start..end.min(code.len())] {
            mask[ti] = true;
        }
        ci = end;
    }
    mask
}

/// Marks token ranges inside `Snapshot` trait impls: an `impl` whose
/// header names `Snapshot for` (path-qualified or not, generics and
/// where-clauses included) is covered from the `impl` keyword through the
/// matching `}` of its body. Tokens inside are subject to S1. A
/// where-clause *bound* on `Snapshot` does not mark an impl — the trait
/// name must be immediately followed by `for`.
fn snapshot_mask(toks: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| !matches!(toks[i].kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let mut ci = 0usize;
    while ci < code.len() {
        let t = &toks[code[ci]];
        if !(t.kind == TokKind::Ident && t.text == "impl") {
            ci += 1;
            continue;
        }
        // Walk the impl header (no braces occur before the body's `{`).
        let mut is_snapshot = false;
        let mut cj = ci + 1;
        while cj < code.len() {
            let tj = &toks[code[cj]];
            if tj.kind == TokKind::Punct && tj.text == "{" {
                break;
            }
            if tj.kind == TokKind::Ident && tj.text == "Snapshot" {
                if let Some(&ni) = code.get(cj + 1) {
                    let tn = &toks[ni];
                    if tn.kind == TokKind::Ident && tn.text == "for" {
                        is_snapshot = true;
                    }
                }
            }
            cj += 1;
        }
        if !is_snapshot {
            ci = cj + 1;
            continue;
        }
        // Cover from `impl` to the matching `}` of the body.
        let mut depth = 0usize;
        let mut end = code.len();
        let mut ck = cj;
        while ck < code.len() {
            let tk = &toks[code[ck]];
            if tk.kind == TokKind::Punct {
                match tk.text {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = ck + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            ck += 1;
        }
        for &ti in &code[ci..end.min(code.len())] {
            mask[ti] = true;
        }
        ci = end;
    }
    mask
}

/// Scans one source file under every source-level rule.
///
/// `crate_name` is the directory name under `crates/` (e.g. `core`);
/// `file` is the workspace-relative path used in diagnostics and for the
/// D3 allow-list; `count_panics` disables P1 counting (used for binary
/// targets, which are allowed to unwrap at the top level).
#[must_use]
pub fn scan_source(crate_name: &str, file: &str, src: &str, count_panics: bool) -> SourceReport {
    let toks = lex(src);
    let mut report = SourceReport::default();
    let markers = collect_markers(file, &toks, &mut report.diags);
    let Markers { sups, hot_lines, hot_path: hot_path_file } = markers;
    let mask = test_mask(&toks);
    let hotm = hot_mask(&toks, &hot_lines);
    let snapm = snapshot_mask(&toks);

    let sim = SIM_CRATES.contains(&crate_name);
    let time_allowed = TIME_ALLOWED_CRATES.contains(&crate_name);
    let env_allowed = file == ENV_ALLOWED_FILE;

    // Code tokens only (comments out, test items out), with a parallel
    // per-token hot flag for P2.
    let mut code: Vec<&Token<'_>> = Vec::new();
    let mut hot: Vec<bool> = Vec::new();
    let mut snap: Vec<bool> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        code.push(t);
        hot.push(hotm[i]);
        snap.push(snapm[i]);
    }

    let ident =
        |i: usize, s: &str| code.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == s);
    let punct =
        |i: usize, p: &str| code.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == p);

    let push = |report: &mut SourceReport, rule: RuleId, line: u32, message: String| {
        if !is_suppressed(&sups, rule, line) {
            report.diags.push(Diagnostic { file: file.to_string(), line, rule, message });
        }
    };

    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text {
            "BTreeMap" | "BTreeSet" if hot_path_file => push(
                &mut report,
                RuleId::P3,
                t.line,
                format!(
                    "{} in a hot-path-marked file: the kernel files were rebuilt on \
                     slab-intrusive lists, bitsets and event wheels — keep tree maps out of \
                     them (reference models belong in test code, which is exempt)",
                    t.text
                ),
            ),
            "HashMap" | "HashSet" if sim => push(
                &mut report,
                RuleId::D1,
                t.line,
                format!(
                    "{} in simulation crate `{crate_name}`: hash iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or an explicitly sorted collect",
                    t.text
                ),
            ),
            "Instant" | "SystemTime" if snap[i] || !time_allowed => {
                if snap[i] {
                    push(&mut report, RuleId::S1, t.line, s1_message(t.text));
                } else {
                    push(
                        &mut report,
                        RuleId::D2,
                        t.line,
                        format!(
                            "{} in crate `{crate_name}`: wall-clock reads are hidden inputs; \
                             only crates/bench and crates/devtest may time things",
                            t.text
                        ),
                    );
                }
            }
            "std"
                if (snap[i] || !time_allowed)
                    && punct(i + 1, ":")
                    && punct(i + 2, ":")
                    && ident(i + 3, "time") =>
            {
                if snap[i] {
                    push(&mut report, RuleId::S1, t.line, s1_message("std::time"));
                } else {
                    push(
                        &mut report,
                        RuleId::D2,
                        t.line,
                        format!(
                            "std::time in crate `{crate_name}`: wall-clock reads are hidden \
                             inputs; only crates/bench and crates/devtest may time things"
                        ),
                    );
                }
            }
            "env"
                if (snap[i] || !env_allowed)
                    && punct(i + 1, ":")
                    && punct(i + 2, ":")
                    && code
                        .get(i + 3)
                        .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("var")) =>
            {
                if snap[i] {
                    push(
                        &mut report,
                        RuleId::S1,
                        t.line,
                        s1_message(&format!("env::{}", code[i + 3].text)),
                    );
                } else {
                    push(
                        &mut report,
                        RuleId::D3,
                        t.line,
                        format!(
                            "env::{} outside {ENV_ALLOWED_FILE}: every CHAINIQ_* knob must go \
                             through the central knob module so typos warn instead of silently \
                             changing the experiment",
                            code[i + 3].text
                        ),
                    );
                }
            }
            "unwrap" | "expect"
                if count_panics
                    && i > 0
                    && punct(i - 1, ".")
                    && punct(i + 1, "(")
                    && !is_suppressed(&sups, RuleId::P1, t.line) =>
            {
                report.panic_sites += 1;
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if count_panics
                    && punct(i + 1, "!")
                    && !punct_before_is_dot(&code, i)
                    && !is_suppressed(&sups, RuleId::P1, t.line) =>
            {
                report.panic_sites += 1;
            }
            "clone" | "collect" | "to_vec" | "to_string"
                if hot[i]
                    && i > 0
                    && punct(i - 1, ".")
                    && punct(after_turbofish(&code, i), "(") =>
            {
                push(
                    &mut report,
                    RuleId::P2,
                    t.line,
                    format!(
                        ".{}() in a hot-marked kernel function: per-cycle paths must not \
                         allocate; reuse a scratch buffer or walk the index directly",
                        t.text
                    ),
                );
            }
            "Vec" | "Box"
                if hot[i] && punct(i + 1, ":") && punct(i + 2, ":") && ident(i + 3, "new") =>
            {
                push(
                    &mut report,
                    RuleId::P2,
                    t.line,
                    format!(
                        "{}::new in a hot-marked kernel function: per-cycle paths must not \
                         allocate; hoist the buffer into the struct and reuse it",
                        t.text
                    ),
                );
            }
            "format" if hot[i] && punct(i + 1, "!") => {
                push(
                    &mut report,
                    RuleId::P2,
                    t.line,
                    "format! in a hot-marked kernel function: per-cycle paths must not \
                     allocate; write into a reused String or defer rendering off the hot loop"
                        .to_string(),
                );
            }
            _ => {}
        }
    }

    // U1: crate roots must forbid unsafe code.
    if file.ends_with("src/lib.rs") && !has_forbid_unsafe(&toks) {
        push(
            &mut report,
            RuleId::U1,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    report
}

/// The S1 diagnostic text for one offending read.
fn s1_message(what: &str) -> String {
    format!(
        "{what} inside a Snapshot impl: checkpoint save/restore must be a pure function of \
         machine state — a wall-clock or environment read here makes images nonreproducible \
         and breaks restore-equals-continuous"
    )
}

/// `foo.panic!` cannot occur in Rust, but be conservative about strange
/// token runs: only count a bang-macro when it is not preceded by `.`.
fn punct_before_is_dot(code: &[&Token<'_>], i: usize) -> bool {
    i > 0 && code[i - 1].kind == TokKind::Punct && code[i - 1].text == "."
}

/// Index of the token that must be `(` for `code[i]` (a name) to be a
/// call: skips an optional turbofish (`::<…>`) after the name, so
/// `.collect::<Vec<_>>()` is recognized as a call of `collect`.
pub(crate) fn after_turbofish(code: &[&Token<'_>], i: usize) -> usize {
    let punct_at =
        |j: usize, p: &str| code.get(j).is_some_and(|t| t.kind == TokKind::Punct && t.text == p);
    if !(punct_at(i + 1, ":") && punct_at(i + 2, ":") && punct_at(i + 3, "<")) {
        return i + 1;
    }
    let mut depth = 0usize;
    let mut j = i + 3;
    while let Some(t) = code.get(j) {
        if t.kind == TokKind::Punct {
            match t.text {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

/// Whether the token stream contains `#![forbid(unsafe_code)]` (spacing
/// and attribute position independent).
fn has_forbid_unsafe(toks: &[Token<'_>]) -> bool {
    let code: Vec<&Token<'_>> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    code.windows(7).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == "forbid"
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
    })
}

/// Per-file panic-site counts, keyed by workspace-relative path — the
/// currency of the P1 ratchet.
pub type PanicCounts = BTreeMap<String, u32>;

#[cfg(test)]
mod tests {
    use super::*;

    fn diags_of(crate_name: &str, file: &str, src: &str) -> Vec<Diagnostic> {
        scan_source(crate_name, file, src, true).diags
    }

    // ---- D1 ----

    #[test]
    fn d1_flags_hashmap_in_sim_crate() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert!(d.iter().all(|d| d.rule == RuleId::D1));
        assert_eq!(d.len(), 3, "import + type + constructor: {d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn d1_flags_hashset_iteration_site() {
        let d = diags_of(
            "mem",
            "crates/mem/src/x.rs",
            "fn f(s: &std::collections::HashSet<u64>) { for x in s.iter() { drop(x); } }",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::D1);
    }

    #[test]
    fn d1_suppressed_with_reason_passes() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: allow(D1, lookup-only map, never iterated)\n\
             use std::collections::HashMap;",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn d1_trailing_same_line_suppression_passes() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "use std::collections::HashMap; // chainiq-analyze: allow(D1, lookup-only)",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn d1_clean_btreemap_passes() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn d1_ignores_non_sim_crates_and_strings_and_comments() {
        assert!(
            diags_of("bench", "crates/bench/src/x.rs", "use std::collections::HashMap;").is_empty()
        );
        assert!(diags_of("core", "crates/core/src/x.rs", "// HashMap in a comment\nfn f() {}")
            .is_empty());
        assert!(diags_of("core", "crates/core/src/x.rs", "const S: &str = \"HashMap\";").is_empty());
    }

    #[test]
    fn d1_ignores_test_code() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}";
        assert!(diags_of("core", "crates/core/src/x.rs", src).is_empty());
    }

    // ---- D2 ----

    #[test]
    fn d2_flags_instant_outside_bench() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "use std::time::Instant;\nfn f() { let _t = Instant::now(); }",
        );
        assert!(!d.is_empty());
        assert!(d.iter().all(|d| d.rule == RuleId::D2));
    }

    #[test]
    fn d2_flags_systemtime_and_std_time_path() {
        let d = diags_of("cpu", "crates/cpu/src/x.rs", "fn f() -> std::time::Duration { todo!() }");
        assert!(d.iter().any(|d| d.rule == RuleId::D2), "{d:?}");
        let d2 = diags_of("cpu", "crates/cpu/src/x.rs", "fn f() { let _ = SystemTime::now(); }");
        assert_eq!(d2.len(), 1);
    }

    #[test]
    fn d2_allows_bench_and_devtest() {
        assert!(diags_of("bench", "crates/bench/src/x.rs", "use std::time::Instant;").is_empty());
        assert!(
            diags_of("devtest", "crates/devtest/src/x.rs", "use std::time::Instant;").is_empty()
        );
    }

    #[test]
    fn d2_suppressed_with_reason_passes() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: allow(D2, timing diagnostic never feeds stats)\n\
             use std::time::Instant;",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    // ---- D3 ----

    #[test]
    fn d3_flags_env_var_everywhere_but_knob() {
        let d = diags_of("core", "crates/core/src/x.rs", "fn f() { std::env::var(\"X\").ok(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::D3);
        let d2 =
            diags_of("bench", "crates/bench/src/sweep.rs", "fn f() { std::env::var_os(\"X\"); }");
        assert_eq!(d2.len(), 1, "var_os is also an env read");
    }

    #[test]
    fn d3_allows_knob_rs() {
        let d = diags_of("bench", ENV_ALLOWED_FILE, "fn f() { std::env::var(\"X\").ok(); }");
        assert!(d.is_empty());
    }

    #[test]
    fn d3_suppressed_with_reason_passes() {
        let d = diags_of(
            "devtest",
            "crates/devtest/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             // chainiq-analyze: allow(D3, replay knobs are devtest's own interface)\n\
             fn f() { std::env::var(\"CHAINIQ_PROP_SEED\").ok(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn d3_does_not_flag_env_macro() {
        let d =
            diags_of("core", "crates/core/src/x.rs", "const D: &str = env!(\"CARGO_PKG_NAME\");");
        assert!(d.is_empty(), "env!() is compile-time, not a hidden runtime input");
    }

    // ---- P1 ----

    #[test]
    fn p1_counts_unwrap_expect_and_bang_macros() {
        let r = scan_source(
            "core",
            "crates/core/src/x.rs",
            "fn f(o: Option<u8>) -> u8 {\n\
             let a = o.unwrap();\n\
             let b = o.expect(\"msg\");\n\
             if a > b { panic!(\"no\"); }\n\
             match a { 0 => unreachable!(), _ => a }\n\
             }",
            true,
        );
        assert_eq!(r.panic_sites, 4);
    }

    #[test]
    fn p1_ignores_unwrap_or_variants_and_comments() {
        let r = scan_source(
            "core",
            "crates/core/src/x.rs",
            "/// call .unwrap() responsibly\nfn f(o: Option<u8>) -> u8 { o.unwrap_or(0).max(o.unwrap_or_else(|| 1)) }",
            true,
        );
        assert_eq!(r.panic_sites, 0);
    }

    #[test]
    fn p1_ignores_test_code_and_respects_suppression() {
        let r = scan_source(
            "core",
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() { None::<u8>.unwrap(); } }\n\
             fn f(o: Option<u8>) -> u8 {\n\
             // chainiq-analyze: allow(P1, slot was bounds-checked two lines up)\n\
             o.unwrap()\n}",
            true,
        );
        assert_eq!(r.panic_sites, 0);
    }

    #[test]
    fn p1_not_counted_in_binaries() {
        let r = scan_source(
            "bench",
            "crates/bench/src/bin/x.rs",
            "fn main() { foo().unwrap(); }\nfn foo() -> Option<()> { None }",
            false,
        );
        assert_eq!(r.panic_sites, 0);
    }

    // ---- P2 ----

    #[test]
    fn p2_flags_allocation_in_hot_fn() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot\n\
             fn tick(&mut self) {\n\
             let v = self.items.clone();\n\
             let w: Vec<u32> = Vec::new();\n\
             let x: Vec<u32> = v.iter().copied().collect();\n\
             drop((w, x));\n\
             }",
        );
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|d| d.rule == RuleId::P2));
        assert_eq!(d[0].line, 3);
        assert_eq!(d[1].line, 4);
        assert_eq!(d[2].line, 5);
    }

    #[test]
    fn p2_marker_on_fn_line_also_covers() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "fn tick(&mut self) { // chainiq-analyze: hot\n let _v = self.items.clone();\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::P2);
    }

    #[test]
    fn p2_ignores_non_hot_functions() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot\n\
             fn hot_one(&self) -> u32 { self.n }\n\
             fn cold(&self) -> Vec<u32> { self.items.clone() }",
        );
        assert!(d.is_empty(), "allocation outside the hot fn is fine: {d:?}");
    }

    #[test]
    fn p2_hot_marker_is_not_a0() {
        let d = diags_of("core", "crates/core/src/x.rs", "// chainiq-analyze: hot\nfn f() {}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn p2_hot_marker_with_trailing_words_is_a0() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot path here\nfn f() {}",
        );
        assert!(d.iter().any(|d| d.rule == RuleId::A0), "{d:?}");
    }

    #[test]
    fn p2_suppressed_with_reason_passes() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot\n\
             fn tick(&mut self) {\n\
             // chainiq-analyze: allow(P2, one-time growth amortized to zero)\n\
             let _v = self.items.clone();\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn p2_ignores_clone_without_call_parens_and_with_capacity() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot\n\
             fn tick(&mut self) {\n\
             let _c = Clone::clone;\n\
             let _v: Vec<u32> = Vec::with_capacity(4);\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    // ---- P3 ----

    #[test]
    fn p3_flags_tree_maps_in_hot_path_file() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot-path\n\
             use std::collections::BTreeMap;\n\
             fn f() { let _m: BTreeMap<u32, u32> = BTreeMap::new(); }",
        );
        assert_eq!(d.len(), 3, "import + type + constructor: {d:?}");
        assert!(d.iter().all(|d| d.rule == RuleId::P3));
    }

    #[test]
    fn p3_ignores_tree_maps_without_the_file_marker() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "use std::collections::BTreeSet;\nfn f() { let _s: BTreeSet<u32> = BTreeSet::new(); }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn p3_ignores_tree_maps_in_test_code() {
        // The differential/property tests inside a kernel file use tree
        // maps as reference models on purpose.
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot-path\n\
             fn f() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use std::collections::BTreeMap;\n\
                 #[test]\n\
                 fn t() { let _m: BTreeMap<u8, u8> = BTreeMap::new(); }\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn p3_suppressed_with_reason_passes() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot-path\n\
             // chainiq-analyze: allow(P3, cold-path config table, never touched per cycle)\n\
             use std::collections::BTreeMap;",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn p3_hot_path_marker_is_not_a0() {
        let d = diags_of("core", "crates/core/src/x.rs", "// chainiq-analyze: hot-path\nfn f() {}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn p3_hot_path_marker_with_trailing_words_is_a0() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: hot-path stuff\nfn f() {}",
        );
        assert!(d.iter().any(|d| d.rule == RuleId::A0), "{d:?}");
    }

    // ---- S1 ----

    #[test]
    fn s1_flags_wall_clock_in_snapshot_impl_even_in_exempt_crates() {
        // Crate `bench` is D2-exempt; S1 applies regardless.
        let d = diags_of(
            "bench",
            "crates/bench/src/x.rs",
            "impl chainiq_ckpt::Snapshot for Thing {\n\
             fn save(&self, w: &mut Writer) { let _t = Instant::now(); }\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::S1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn s1_flags_env_read_in_snapshot_impl_even_in_knob_rs() {
        let d = diags_of(
            "bench",
            ENV_ALLOWED_FILE,
            "impl Snapshot for Thing {\n\
             fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError> {\n\
             let _ = std::env::var(\"HOME\");\nOk(())\n}\n}",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::S1);
    }

    #[test]
    fn s1_flags_std_time_path_in_generic_snapshot_impl() {
        let d = diags_of(
            "cpu",
            "crates/cpu/src/x.rs",
            "impl<Q, W> chainiq_ckpt::Snapshot for Pipeline<Q, W>\n\
             where\n    Q: IssueQueue + chainiq_ckpt::Snapshot,\n    W: Iterator,\n{\n\
             fn save(&self, w: &mut Writer) { let _d = std::time::Duration::ZERO; }\n\
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::S1, "S1 takes precedence over D2 inside the impl");
    }

    #[test]
    fn s1_does_not_mark_snapshot_bounds_or_other_impls() {
        // A `Snapshot` *bound* is not a `Snapshot` impl; the D2 exemption
        // for bench still applies outside snapshot impls.
        let d = diags_of(
            "bench",
            "crates/bench/src/x.rs",
            "impl<Q: Snapshot> Runner<Q> {\n\
             fn time(&self) { let _t = Instant::now(); }\n\
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn s1_outside_exempt_crates_still_reports_d2_not_both() {
        let d = diags_of(
            "cpu",
            "crates/cpu/src/x.rs",
            "impl Snapshot for Thing { fn save(&self) { let _t = Instant::now(); } }\n\
             fn elsewhere() { let _t = Instant::now(); }",
        );
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].rule, RuleId::S1, "inside the impl: S1");
        assert_eq!(d[1].rule, RuleId::D2, "outside the impl: plain D2");
    }

    #[test]
    fn s1_suppressed_with_reason_passes() {
        let d = diags_of(
            "bench",
            "crates/bench/src/x.rs",
            "impl Snapshot for Thing {\n\
             // chainiq-analyze: allow(S1, stderr diagnostic, never packed into the image)\n\
             fn save(&self) { let _t = Instant::now(); }\n\
             fn other(&self) { let _t = Instant::now(); }\n\
             }",
        );
        assert_eq!(d.len(), 1, "only the unsuppressed read reports: {d:?}");
        assert_eq!(d[0].rule, RuleId::S1);
        assert_eq!(d[0].line, 4);
    }

    // ---- U1 ----

    #[test]
    fn u1_requires_forbid_unsafe_in_lib_root() {
        let d = diags_of("core", "crates/core/src/lib.rs", "//! docs\npub fn f() {}");
        assert!(d.iter().any(|d| d.rule == RuleId::U1));
        let ok = diags_of(
            "core",
            "crates/core/src/lib.rs",
            "//! docs\n#![forbid(unsafe_code)]\npub fn f() {}",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn u1_not_required_outside_lib_root() {
        assert!(diags_of("core", "crates/core/src/queue.rs", "pub fn f() {}").is_empty());
    }

    // ---- A0 / suppression hygiene ----

    #[test]
    fn a0_suppression_without_reason_fails() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: allow(D1)\nuse std::collections::HashMap;",
        );
        assert!(d.iter().any(|d| d.rule == RuleId::A0), "{d:?}");
        assert!(d.iter().any(|d| d.rule == RuleId::D1), "reasonless allow must not suppress");
    }

    #[test]
    fn a0_unknown_rule_fails() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: allow(D9, whatever)\nfn f() {}",
        );
        assert!(d.iter().any(|d| d.rule == RuleId::A0));
    }

    #[test]
    fn a0_malformed_marker_fails() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "// chainiq-analyze: please ignore\nfn f() {}",
        );
        assert!(d.iter().any(|d| d.rule == RuleId::A0));
    }

    // ---- cfg(test) mask edge cases ----

    #[test]
    fn cfg_not_test_is_not_a_test_gate() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "#[cfg(not(test))]\nfn f() { let _m = std::collections::HashMap::<u8, u8>::new(); }",
        );
        assert_eq!(d.len(), 1, "cfg(not(test)) code is live code: {d:?}");
    }

    #[test]
    fn gated_semicolon_item_is_skipped() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "#[cfg(test)]\nuse std::collections::HashMap;\nfn f() {}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn code_after_test_module_is_still_scanned() {
        let d = diags_of(
            "core",
            "crates/core/src/x.rs",
            "#[cfg(test)]\nmod tests { fn t() {} }\nuse std::collections::HashMap;",
        );
        assert_eq!(d.len(), 1);
    }
}
