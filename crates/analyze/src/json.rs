//! Minimal JSON support: a hand-rolled parser (enough for the perf-gate
//! artifacts, which this workspace itself emits) and the `--json` report
//! writer. Zero-dependency by design, like everything else in the tool;
//! objects parse into `BTreeMap` so iteration order is deterministic.

use crate::Report;
use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as `f64`; the perf artifacts stay well inside
    /// exact range).
    Num(f64),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key-sorted.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub(crate) fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { b: bytes, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != bytes.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        while matches!(self.b.get(self.i), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number `{text}`"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.b.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.i += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", *other as char)),
                    }
                }
                Some(&c) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.i;
                    self.i += 1;
                    while self.b.get(self.i).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.i += 1;
                    }
                    match std::str::from_utf8(&self.b[start..self.i]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err("non-utf8 string content".to_string()),
                    }
                    let _ = c;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }
}

/// JSON-escapes a string (quotes not included).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`Report`] as the machine-readable CI artifact. Schema (see
/// DESIGN.md §8): `schema_version`, `clean`, `files_scanned`, `diags[]`
/// (`file`/`line`/`rule`/`message`), `notes[]`, `slack[]`, `callgraph`
/// (`functions`/`edges`/`hot_roots`), `panic_report[]` (`file`/`line`/
/// `what`/`function`/`hot_reachable`/`justified`/`witness`). Key order
/// and array order are deterministic.
#[must_use]
pub fn render_report(r: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"clean\": {},\n", r.diags.is_empty()));
    out.push_str(&format!("  \"files_scanned\": {},\n", r.files_scanned));
    out.push_str("  \"diags\": [");
    for (i, d) in r.diags.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        out.push_str(&format!(
            "{sep}    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&d.file),
            d.line,
            d.rule,
            escape(&d.message)
        ));
    }
    out.push_str(if r.diags.is_empty() { "],\n" } else { "\n  ],\n" });
    let string_list = |items: &[String]| {
        items.iter().map(|n| format!("\"{}\"", escape(n))).collect::<Vec<_>>().join(", ")
    };
    out.push_str(&format!("  \"notes\": [{}],\n", string_list(&r.notes)));
    out.push_str(&format!("  \"slack\": [{}],\n", string_list(&r.slack)));
    out.push_str(&format!(
        "  \"callgraph\": {{\"functions\": {}, \"edges\": {}, \"hot_roots\": {}}},\n",
        r.callgraph.functions, r.callgraph.edges, r.callgraph.hot_roots
    ));
    out.push_str("  \"panic_report\": [");
    for (i, p) in r.panic_report.iter().enumerate() {
        let sep = if i == 0 { "\n" } else { ",\n" };
        let witness = match &p.witness {
            Some(w) => format!("\"{}\"", escape(w)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{sep}    {{\"file\": \"{}\", \"line\": {}, \"what\": \"{}\", \"function\": \"{}\", \
             \"hot_reachable\": {}, \"justified\": {}, \"witness\": {witness}}}",
            escape(&p.file),
            p.line,
            escape(&p.what),
            escape(&p.function),
            p.hot_reachable,
            p.justified
        ));
    }
    out.push_str(if r.panic_report.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_the_perf_artifacts_use() {
        let v = parse(
            "{\"suite\": \"perf\", \"points\": [{\"point\": \"seg-4x32\", \"kc\": 12.5}], \
             \"ok\": true, \"none\": null, \"neg\": -3e2}",
        )
        .unwrap();
        assert_eq!(v.get("suite").and_then(Value::as_str), Some("perf"));
        let points = v.get("points").and_then(Value::as_arr).unwrap();
        assert_eq!(points[0].get("point").and_then(Value::as_str), Some("seg-4x32"));
        assert_eq!(points[0].get("kc").and_then(Value::as_f64), Some(12.5));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-300.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse("\"a\\n\\\"b\\\\c\\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("a\n\"b\\cA"));
        assert_eq!(escape("a\n\"b\\c"), "a\\n\\\"b\\\\c");
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn report_renders_and_reparses() {
        let r =
            Report { files_scanned: 3, notes: vec!["a \"note\"".to_string()], ..Report::default() };
        let text = render_report(&r);
        let v = parse(&text).expect("self-emitted JSON must reparse");
        assert_eq!(v.get("clean"), Some(&Value::Bool(true)));
        assert_eq!(v.get("files_scanned").and_then(Value::as_f64), Some(3.0));
        assert_eq!(
            v.get("notes").and_then(Value::as_arr).and_then(|a| a[0].as_str()),
            Some("a \"note\"")
        );
    }
}
