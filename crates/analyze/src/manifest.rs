//! Rule **H1**: manifest hermeticity.
//!
//! Every dependency in every crate's `Cargo.toml` (and every entry in the
//! root `[workspace.dependencies]`) must resolve inside the workspace —
//! `path = "..."` or `workspace = true`. A bare version string (`foo =
//! "1.0"`) or a `version =` / `git =` key means a registry or network
//! fetch, which breaks the `--offline` hermetic build long after the PR
//! that introduced it.
//!
//! This is a purpose-built scan of the handful of TOML shapes Cargo
//! accepts for dependency tables, not a general TOML parser:
//!
//! * `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]` /
//!   `[target.'cfg(..)'.dependencies]` / `[workspace.dependencies]`
//!   sections with `name = <spec>` lines, where `<spec>` is a string or
//!   an inline table;
//! * `[dependencies.foo]` subsections whose keys spread over lines.

use crate::rules::{Diagnostic, RuleId};

/// What a dependency section header introduces.
#[derive(PartialEq)]
enum Section {
    /// Not a dependency section — ignore its lines.
    Other,
    /// A `[*dependencies]` table: each `name = spec` line is one dep.
    DepTable,
    /// A `[*dependencies.<name>]` subsection: the keys spread over lines.
    DepEntry { name: String, seen_local: bool, line: u32 },
}

/// Scans one manifest; appends an H1 diagnostic per offending dependency.
///
/// `file` is the workspace-relative manifest path used in diagnostics.
pub fn check_manifest(file: &str, src: &str, diags: &mut Vec<Diagnostic>) {
    let mut section = Section::Other;
    let flush = |section: &mut Section, diags: &mut Vec<Diagnostic>| {
        if let Section::DepEntry { name, seen_local: false, line } = &section {
            diags.push(violation(file, *line, name));
        }
        *section = Section::Other;
    };

    for (idx, raw) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut section, diags);
            let header = line.trim_start_matches('[').trim_end_matches(']').trim();
            section = classify_header(header, line_no);
            continue;
        }
        match &mut section {
            Section::Other => {}
            Section::DepTable => {
                if let Some((name, spec)) = line.split_once('=') {
                    let name = name.trim().trim_matches('"');
                    // Dotted-key shorthand: `foo.workspace = true` and
                    // `foo.path = "..."` are local; `foo.version = ...`
                    // and the rest are not.
                    let local = match name.rsplit_once('.') {
                        Some((_, "workspace")) => spec.trim() == "true",
                        Some((_, "path")) => true,
                        Some(_) => false,
                        None => spec_is_local(spec.trim()),
                    };
                    if !local {
                        diags.push(violation(
                            file,
                            line_no,
                            name.split('.').next().unwrap_or(name),
                        ));
                    }
                }
            }
            Section::DepEntry { seen_local, .. } => {
                if let Some((key, _)) = line.split_once('=') {
                    let key = key.trim();
                    if key == "path" || (key == "workspace" && line.contains("true")) {
                        *seen_local = true;
                    }
                }
            }
        }
    }
    flush(&mut section, diags);
}

/// The `[package] name = "…"` of a manifest, if any.
#[must_use]
pub fn package_name(src: &str) -> Option<String> {
    let mut in_package = false;
    for raw in src.lines() {
        let line = strip_toml_comment(raw).trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some((key, val)) = line.split_once('=') {
                if key.trim() == "name" {
                    return Some(val.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Package names this manifest depends on at *runtime*: entries of
/// `[dependencies]` and `[target.….dependencies]` (and their dotted
/// subsections). Dev- and build-dependencies are excluded on purpose —
/// the call graph only covers `src/` with `#[cfg(test)]` masked out, so
/// a dev-dep edge would manufacture flows that cannot execute in the
/// shipped simulator.
#[must_use]
pub fn runtime_dep_names(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_deps = false;
    let runtime_table = |header: &str| {
        header == "dependencies"
            || (header.ends_with(".dependencies") && header.starts_with("target."))
    };
    for raw in src.lines() {
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let header = line.trim_start_matches('[').trim_end_matches(']').trim();
            in_deps = runtime_table(header);
            if !in_deps {
                // `[dependencies.foo]` subsection names a dep directly.
                if let Some((table, name)) = header.rsplit_once('.') {
                    if runtime_table(table) {
                        out.push(name.trim().trim_matches('"').to_string());
                    }
                }
            }
            continue;
        }
        if in_deps {
            if let Some((name, _)) = line.split_once('=') {
                let name = name.trim().trim_matches('"');
                // Dotted-key shorthand `foo.workspace = true` → `foo`.
                out.push(name.split('.').next().unwrap_or(name).to_string());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn classify_header(header: &str, line: u32) -> Section {
    // `dependencies`, `dev-dependencies`, `workspace.dependencies`,
    // `target.'cfg(unix)'.dependencies`, ... — and their `.name` subsections.
    if header.ends_with("dependencies") {
        return Section::DepTable;
    }
    if let Some((table, name)) = header.rsplit_once('.') {
        if table.ends_with("dependencies") {
            return Section::DepEntry {
                name: name.trim().trim_matches('"').to_string(),
                seen_local: false,
                line,
            };
        }
    }
    Section::Other
}

/// Whether an inline dependency spec keeps resolution inside the
/// workspace: `{ path = "..." }`, `{ workspace = true }`, or the
/// shorthand `foo.workspace = true` (handled by the caller's key split
/// leaving `true` here only for the `workspace` key — a bare string spec
/// like `"1.0"` is never local).
fn spec_is_local(spec: &str) -> bool {
    if spec.starts_with('"') || spec.starts_with('\'') {
        return false; // bare version string → registry
    }
    spec.contains("path") && spec.contains('=')
        || spec.contains("workspace") && spec.contains("true")
}

/// TOML comments start at a `#` outside a string. The manifests this
/// tool checks keep dependency specs `#`-free, so a conservative scan
/// that respects double-quoted strings is sufficient.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn violation(file: &str, line: u32, name: &str) -> Diagnostic {
    Diagnostic {
        file: file.to_string(),
        line,
        rule: RuleId::H1,
        message: format!(
            "dependency `{name}` does not resolve inside the workspace (needs `path = ...` or \
             `workspace = true`); registry/git deps break the hermetic --offline build"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Diagnostic> {
        let mut d = Vec::new();
        check_manifest("crates/x/Cargo.toml", src, &mut d);
        d
    }

    #[test]
    fn workspace_and_path_deps_pass() {
        let d = check(
            "[package]\nname = \"x\"\n\n[dependencies]\n\
             chainiq-core.workspace = true\n\
             chainiq-rng = { workspace = true }\n\
             chainiq-isa = { path = \"../isa\" }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn registry_version_string_fails() {
        let d = check("[dependencies]\nserde = \"1.0\"\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::H1);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("serde"));
    }

    #[test]
    fn inline_table_with_version_or_git_fails() {
        let d = check(
            "[dev-dependencies]\nrand = { version = \"0.8\", features = [\"std\"] }\n\
             [build-dependencies]\ncc = { git = \"https://example.com/cc\" }\n",
        );
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn dotted_subsection_forms() {
        let ok = check("[dependencies.chainiq-core]\nworkspace = true\n");
        assert!(ok.is_empty(), "{ok:?}");
        let ok2 = check("[dependencies.chainiq-core]\npath = \"../core\"\nfeatures = []\n");
        assert!(ok2.is_empty(), "{ok2:?}");
        let bad = check("[dependencies.serde]\nversion = \"1.0\"\n");
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("serde"));
    }

    #[test]
    fn workspace_dependencies_root_table_is_checked() {
        let bad = check("[workspace.dependencies]\nserde = \"1.0\"\n");
        assert_eq!(bad.len(), 1);
        let ok = check("[workspace.dependencies]\nchainiq-core = { path = \"crates/core\" }\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn package_name_and_runtime_deps_extract() {
        let src = "[package]\nname = \"chainiq-cpu\"\nversion = \"0.1.0\"\n\n\
                   [dependencies]\nchainiq-core.workspace = true\n\
                   chainiq-isa = { path = \"../isa\" }\n\n\
                   [dependencies.chainiq-mem]\nworkspace = true\n\n\
                   [dev-dependencies]\nchainiq-devtest.workspace = true\n\n\
                   [target.'cfg(unix)'.dependencies]\nchainiq-rng = { path = \"../rng\" }\n";
        assert_eq!(package_name(src).as_deref(), Some("chainiq-cpu"));
        assert_eq!(
            runtime_dep_names(src),
            vec!["chainiq-core", "chainiq-isa", "chainiq-mem", "chainiq-rng"],
            "dev-dependencies must be excluded"
        );
    }

    #[test]
    fn non_dep_sections_and_comments_ignored() {
        let d = check(
            "[package]\nversion = \"0.1.0\"\n\n[features]\ndefault = []\n\n\
             [[bench]]\nname = \"b\"\nharness = false\n\n\
             [dependencies]\n# serde = \"1.0\"\nchainiq-core.workspace = true # local\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
