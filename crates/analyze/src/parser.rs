//! A hand-rolled *item* parser over the [`crate::lexer`] token stream —
//! just enough structure for the workspace call graph.
//!
//! This is still not a full Rust parser. It recovers exactly the facts
//! the flow rules ([`crate::flows`]) need:
//!
//! * `fn` definitions — name, line, visibility, the enclosing `impl` /
//!   `trait` block (self-type and trait names), test/hot markers;
//! * call expressions inside each function body — free calls
//!   (`helper(…)`), method calls (`x.step(…)`), and path-qualified calls
//!   (`Type::assoc(…)`, turbofish included), with `use … as …` aliases
//!   resolved back to their original names;
//! * per-body **facts**: allocation sites (`.clone()`, `.collect()`,
//!   `.to_vec()`, `.to_string()`, `Vec::new`, `Box::new`, `format!`),
//!   determinism-taint sources (`std::time`/`Instant`/`SystemTime`,
//!   `env::var*`, `HashMap`/`HashSet`, `thread::current`), and panic
//!   sites (the P1 family).
//!
//! Everything it cannot parse it skips without error: an unrecognized
//! item contributes no functions and no edges, which keeps the analysis
//! conservative-but-lossy rather than wrong. Comments and `#[cfg(test)]`
//! items are excluded exactly as in the per-file rule engine.

use crate::lexer::{lex, TokKind, Token};
use crate::rules::{self, Markers};
use std::collections::BTreeMap;

/// Everything the parser recovered from one source file.
#[derive(Debug)]
pub(crate) struct FileItems {
    /// Crate directory name under `crates/`.
    pub(crate) crate_name: String,
    /// Workspace-relative path, as used in diagnostics.
    pub(crate) file: String,
    /// Whether this is a binary target (exempt from the panic report).
    pub(crate) is_bin: bool,
    /// Functions defined in the file, in source order.
    pub(crate) fns: Vec<FnItem>,
    /// The file's marker comments (suppressions, hot markers).
    pub(crate) markers: Markers,
}

/// One `fn` definition.
#[derive(Debug)]
pub(crate) struct FnItem {
    /// The function's bare name.
    pub(crate) name: String,
    /// 1-based line of the `fn` keyword.
    pub(crate) line: u32,
    /// Self-type name of the enclosing `impl` block, if any.
    pub(crate) impl_ty: Option<String>,
    /// Trait name, for methods of `impl Trait for …` and `trait …` blocks.
    pub(crate) trait_name: Option<String>,
    /// Defined inside an `impl` or `trait` block → method-call candidate.
    pub(crate) in_container: bool,
    /// Carries a `pub` (any form: `pub`, `pub(crate)`, …).
    pub(crate) is_pub: bool,
    /// Inside a `#[cfg(test)]` / `#[test]` item — excluded from the graph.
    pub(crate) is_test: bool,
    /// Carries the `hot` kernel marker comment.
    pub(crate) is_hot: bool,
    /// Call expressions in the body.
    pub(crate) calls: Vec<Call>,
    /// Allocation facts in the body (the H2 family).
    pub(crate) allocs: Vec<Fact>,
    /// Determinism-taint source facts in the body (the T1 family).
    pub(crate) taints: Vec<Fact>,
    /// Panic-site facts in the body (the P1 family, reported by R1).
    pub(crate) panics: Vec<Fact>,
}

/// One call expression.
#[derive(Debug)]
pub(crate) struct Call {
    /// Callee name, `use … as …` aliases resolved.
    pub(crate) name: String,
    /// How the call site is shaped, which drives candidate resolution.
    pub(crate) kind: CallKind,
}

/// Call-site shape.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum CallKind {
    /// `name(…)` — resolves to free functions.
    Free,
    /// `x.name(…)`, or a qualified call whose qualifier is opaque
    /// (`<T as Trait>::name(…)`) — resolves to every method candidate.
    Method,
    /// `Qual::name(…)` with an identifier qualifier: methods of impls on
    /// `Qual`, falling back to free functions (module-qualified calls).
    Qualified(String),
}

/// A line-anchored body fact (allocation, taint source, or panic site).
#[derive(Debug)]
pub(crate) struct Fact {
    /// Human-readable description of the offending construct.
    pub(crate) what: String,
    /// 1-based source line.
    pub(crate) line: u32,
}

/// Rust keywords that can precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "Self", "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else",
    "enum", "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod",
    "move", "mut", "pub", "ref", "return", "self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while", "yield",
];

/// Method-style allocation names (preceded by `.`, followed by a call).
const ALLOC_METHODS: &[&str] = &["clone", "collect", "to_string", "to_vec"];

/// Parses one file. Never fails: unparseable constructs are skipped.
pub(crate) fn parse_file(crate_name: &str, file: &str, src: &str, is_bin: bool) -> FileItems {
    let toks = lex(src);
    // A0 for malformed markers is reported by the per-file rule scan;
    // here we only need the marker facts.
    let mut a0_sink = Vec::new();
    let markers = rules::collect_markers(file, &toks, &mut a0_sink);
    let tmask = rules::test_mask(&toks);

    let mut code: Vec<Token<'_>> = Vec::new();
    let mut test: Vec<bool> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        code.push(*t);
        test.push(tmask[i]);
    }

    let mut p = Parser { code, test, markers: &markers, aliases: BTreeMap::new(), fns: Vec::new() };
    p.collect_aliases();
    let end = p.code.len();
    p.parse_items(0, end, &Container::default(), None);

    FileItems {
        crate_name: crate_name.to_string(),
        file: file.to_string(),
        is_bin,
        fns: p.fns,
        markers,
    }
}

/// The enclosing `impl` / `trait` context while walking items.
#[derive(Debug, Default, Clone)]
struct Container {
    impl_ty: Option<String>,
    trait_name: Option<String>,
    in_container: bool,
}

struct Parser<'a> {
    code: Vec<Token<'a>>,
    test: Vec<bool>,
    markers: &'a Markers,
    /// `use x::y as z;` → `z → y`.
    aliases: BTreeMap<String, String>,
    fns: Vec<FnItem>,
}

impl<'a> Parser<'a> {
    fn punct(&self, i: usize, p: &str) -> bool {
        self.code.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    }

    /// The ident text at `i`, borrowed from the *source* (not `self`),
    /// so callers can hold it across `&mut self` calls.
    fn ident(&self, i: usize) -> Option<&'a str> {
        self.code.get(i).and_then(|t| (t.kind == TokKind::Ident).then_some(t.text))
    }

    fn ident_is(&self, i: usize, s: &str) -> bool {
        self.ident(i) == Some(s)
    }

    /// Index just past the `}` matching the `{` at `open` (or the end of
    /// the stream for unbalanced input).
    fn skip_braces(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while let Some(t) = self.code.get(i) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        i
    }

    /// Index just past the `>` matching the `<` at `open`.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while let Some(t) = self.code.get(i) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "<" => depth += 1,
                    ">" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                    // `->` in a generic default or an fn-pointer type:
                    // the `>` of the arrow must not close the angle.
                    "-" if self.punct(i + 1, ">") => i += 1,
                    _ => {}
                }
            }
            i += 1;
        }
        i
    }

    /// Index just past an attribute starting at `#` (handles `#[…]` and
    /// `#![…]` with nested brackets).
    fn skip_attr(&self, at: usize) -> usize {
        let mut i = at + 1;
        if self.punct(i, "!") {
            i += 1;
        }
        if !self.punct(i, "[") {
            return i;
        }
        let mut depth = 0usize;
        while let Some(t) = self.code.get(i) {
            if t.kind == TokKind::Punct {
                match t.text {
                    "[" => depth += 1,
                    "]" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            return i + 1;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        i
    }

    /// Pre-pass: collect `use … as …` aliases anywhere in the file.
    fn collect_aliases(&mut self) {
        let mut i = 0usize;
        while i < self.code.len() {
            if !self.ident_is(i, "use") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            while j < self.code.len() && !self.punct(j, ";") {
                if self.ident_is(j, "as") {
                    if let (Some(orig), Some(alias)) = (self.ident(j - 1), self.ident(j + 1)) {
                        if alias != "_" {
                            self.aliases.insert(alias.to_string(), orig.to_string());
                        }
                    }
                }
                j += 1;
            }
            i = j + 1;
        }
    }

    fn resolve_alias<'s>(&'s self, name: &'s str) -> &'s str {
        self.aliases.get(name).map_or(name, String::as_str)
    }

    /// Walks `[start, end)` as item context; when `enclosing_fn` is set,
    /// non-item tokens get call/fact scanning attributed to that fn.
    fn parse_items(
        &mut self,
        start: usize,
        end: usize,
        ctx: &Container,
        enclosing_fn: Option<usize>,
    ) {
        let mut i = start;
        while i < end {
            if self.punct(i, "#") {
                i = self.skip_attr(i);
                continue;
            }
            match self.ident(i) {
                Some("impl") if enclosing_fn.is_none() => i = self.parse_impl(i, end),
                Some("trait") if enclosing_fn.is_none() => i = self.parse_trait(i, end),
                Some("mod") => {
                    // `mod name { … }` keeps the current container context
                    // (there is none to inherit — impls do not nest mods).
                    let mut j = i + 1;
                    while j < end && !self.punct(j, "{") && !self.punct(j, ";") {
                        j += 1;
                    }
                    if self.punct(j, "{") {
                        let body_end = self.skip_braces(j);
                        self.parse_items(j + 1, body_end - 1, &Container::default(), None);
                        i = body_end;
                    } else {
                        i = j + 1;
                    }
                }
                Some("fn") if self.ident(i + 1).is_some() => i = self.parse_fn(i, end, ctx),
                _ => {
                    if let Some(f) = enclosing_fn {
                        i = self.scan_expr_token(i, f);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Parses `impl …` at `i`; returns the index past the impl body.
    fn parse_impl(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.punct(j, "<") {
            j = self.skip_angles(j);
        }
        // Header: everything to the body `{`, split at a top-level `for`.
        let mut before_for: Option<String> = None; // trait part's last ident
        let mut last_ident: Option<String> = None;
        let mut angle = 0usize;
        while j < end {
            if self.punct(j, "{") {
                break;
            }
            if self.punct(j, "<") {
                angle += 1;
            } else if self.punct(j, ">") {
                angle = angle.saturating_sub(1);
            } else if angle == 0 {
                match self.ident(j) {
                    Some("for") => before_for = last_ident.take(),
                    Some("where") => {
                        // The where clause adds bounds, not names; stop
                        // collecting and fast-forward to the body.
                        while j < end && !self.punct(j, "{") {
                            j += 1;
                        }
                        break;
                    }
                    Some(id) if !matches!(id, "mut" | "dyn" | "ref") => {
                        last_ident = Some(id.to_string());
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        if !self.punct(j, "{") {
            return j + 1; // malformed; skip what we scanned
        }
        let (trait_name, impl_ty) = match before_for {
            Some(t) => (Some(t), last_ident),
            None => (None, last_ident),
        };
        let body_end = self.skip_braces(j);
        let ctx = Container { impl_ty, trait_name, in_container: true };
        self.parse_items(j + 1, body_end - 1, &ctx, None);
        body_end
    }

    /// Parses `trait Name … { … }` at `i`; returns the index past it.
    fn parse_trait(&mut self, i: usize, end: usize) -> usize {
        let name = self.ident(i + 1).map(str::to_string);
        let mut j = i + 1;
        while j < end && !self.punct(j, "{") && !self.punct(j, ";") {
            j += 1;
        }
        if !self.punct(j, "{") {
            return j + 1; // trait alias or malformed
        }
        let body_end = self.skip_braces(j);
        let ctx = Container { impl_ty: None, trait_name: name, in_container: true };
        self.parse_items(j + 1, body_end - 1, &ctx, None);
        body_end
    }

    /// Parses `fn name …` at `i` (the `fn` token); returns the index past
    /// the body (or the `;` of a bodiless trait method).
    fn parse_fn(&mut self, i: usize, end: usize, ctx: &Container) -> usize {
        let name = self.ident(i + 1).unwrap_or_default().to_string();
        let line = self.code[i].line;
        let idx = self.fns.len();
        self.fns.push(FnItem {
            name,
            line,
            impl_ty: ctx.impl_ty.clone(),
            trait_name: ctx.trait_name.clone(),
            in_container: ctx.in_container,
            is_pub: self.is_pub_before(i),
            is_test: self.test[i],
            is_hot: self.markers.is_hot_fn_line(line),
            calls: Vec::new(),
            allocs: Vec::new(),
            taints: Vec::new(),
            panics: Vec::new(),
        });
        // Signature runs to the body `{` or a `;` (trait signature).
        let mut j = i + 2;
        while j < end && !self.punct(j, "{") && !self.punct(j, ";") {
            j += 1;
        }
        if !self.punct(j, "{") {
            return j + 1;
        }
        let body_end = self.skip_braces(j);
        self.parse_items(j + 1, body_end - 1, ctx, Some(idx));
        body_end
    }

    /// Whether the `fn` at `i` carries a `pub` qualifier (scans back over
    /// `const`/`unsafe`/`async`/`extern "abi"`/`pub(crate)` tokens).
    fn is_pub_before(&self, i: usize) -> bool {
        let mut j = i;
        for _ in 0..10 {
            if j == 0 {
                return false;
            }
            j -= 1;
            let t = &self.code[j];
            match (t.kind, t.text) {
                (TokKind::Ident, "pub") => return true,
                (TokKind::Ident, "const" | "unsafe" | "async" | "extern") => {}
                (TokKind::Ident, "crate" | "super" | "self" | "in") => {}
                (TokKind::Str, _) => {} // extern "C"
                (TokKind::Punct, "(" | ")") => {}
                _ => return false,
            }
        }
        false
    }

    /// Scans one expression token inside fn `f`, recording calls and
    /// facts; returns the next index to look at.
    fn scan_expr_token(&mut self, i: usize, f: usize) -> usize {
        let Some(name) = self.ident(i) else {
            return i + 1;
        };
        let line = self.code[i].line;

        // Path-shaped taint sources and allocations first: these do not
        // need call shape (a `use std::time::Instant` import is already a
        // hidden-input liability worth tracing).
        match name {
            "Instant" | "SystemTime" => {
                self.fact(f, FactKind::Taint, name, line);
            }
            "HashMap" | "HashSet" => {
                self.fact(f, FactKind::Taint, &format!("{name} (hash iteration order)"), line);
            }
            "std"
                if self.punct(i + 1, ":")
                    && self.punct(i + 2, ":")
                    && self.ident_is(i + 3, "time") =>
            {
                self.fact(f, FactKind::Taint, "std::time", line);
            }
            "env" if self.punct(i + 1, ":") && self.punct(i + 2, ":") => {
                if let Some(v) = self.ident(i + 3) {
                    if v.starts_with("var") {
                        self.fact(f, FactKind::Taint, &format!("env::{v}"), line);
                    }
                }
            }
            "thread"
                if self.punct(i + 1, ":")
                    && self.punct(i + 2, ":")
                    && self.ident_is(i + 3, "current") =>
            {
                self.fact(f, FactKind::Taint, "thread::current", line);
            }
            "Vec" | "Box"
                if self.punct(i + 1, ":")
                    && self.punct(i + 2, ":")
                    && self.ident_is(i + 3, "new") =>
            {
                self.fact(f, FactKind::Alloc, &format!("{name}::new"), line);
            }
            "format" if self.punct(i + 1, "!") => {
                self.fact(f, FactKind::Alloc, "format!", line);
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if self.punct(i + 1, "!") && !(i > 0 && self.punct(i - 1, ".")) =>
            {
                self.fact(f, FactKind::Panic, &format!("{name}!"), line);
            }
            _ => {}
        }

        // Call shape: `name(`, `name::<T>(`, after `.` or `Qual::`.
        let open = self.after_turbofish(i);
        if !self.punct(open, "(") || KEYWORDS.contains(&name) {
            return i + 1;
        }
        let dotted = i > 0 && self.punct(i - 1, ".");
        if dotted {
            match name {
                "unwrap" | "expect" => self.fact(f, FactKind::Panic, &format!(".{name}()"), line),
                n if ALLOC_METHODS.contains(&n) => {
                    self.fact(f, FactKind::Alloc, &format!(".{name}()"), line);
                }
                _ => {}
            }
        }
        let kind = if dotted {
            CallKind::Method
        } else if i >= 2 && self.punct(i - 1, ":") && self.punct(i - 2, ":") {
            match self.code.get(i.wrapping_sub(3)) {
                Some(t) if t.kind == TokKind::Ident && t.text == "Self" => {
                    match &self.fns[f].impl_ty {
                        Some(ty) => CallKind::Qualified(ty.clone()),
                        None => CallKind::Method,
                    }
                }
                Some(t) if t.kind == TokKind::Ident => {
                    CallKind::Qualified(self.resolve_alias(t.text).to_string())
                }
                // `<T as Trait>::name(` and friends: opaque qualifier,
                // resolve conservatively like a method call.
                _ => CallKind::Method,
            }
        } else {
            CallKind::Free
        };
        let resolved = self.resolve_alias(name).to_string();
        self.fns[f].calls.push(Call { name: resolved, kind });
        i + 1
    }

    fn after_turbofish(&self, i: usize) -> usize {
        if !(self.punct(i + 1, ":") && self.punct(i + 2, ":") && self.punct(i + 3, "<")) {
            return i + 1;
        }
        self.skip_angles(i + 3)
    }

    fn fact(&mut self, f: usize, kind: FactKind, what: &str, line: u32) {
        let fact = Fact { what: what.to_string(), line };
        let item = &mut self.fns[f];
        match kind {
            FactKind::Alloc => item.allocs.push(fact),
            FactKind::Taint => item.taints.push(fact),
            FactKind::Panic => item.panics.push(fact),
        }
    }
}

enum FactKind {
    Alloc,
    Taint,
    Panic,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileItems {
        parse_file("core", "crates/core/src/x.rs", src, false)
    }

    fn fn_named<'a>(items: &'a FileItems, name: &str) -> &'a FnItem {
        items.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn free_fns_and_calls() {
        let items = parse(
            "pub fn a() { b(); helper::c(); }\n\
             fn b() {}\n",
        );
        assert_eq!(items.fns.len(), 2);
        let a = fn_named(&items, "a");
        assert!(a.is_pub && !a.in_container && !a.is_test && !a.is_hot);
        assert_eq!(a.calls.len(), 2);
        assert_eq!(a.calls[0].name, "b");
        assert_eq!(a.calls[0].kind, CallKind::Free);
        assert_eq!(a.calls[1].kind, CallKind::Qualified("helper".to_string()));
        assert!(!fn_named(&items, "b").is_pub);
    }

    #[test]
    fn impl_methods_carry_self_type_and_trait() {
        let items = parse(
            "impl Foo {\n    pub fn step(&mut self) { self.tick(); }\n}\n\
             impl chainiq_ckpt::Snapshot for Foo {\n    fn save(&self) {}\n}\n\
             impl<Q: Queue> Pipeline<Q> where Q: Sized {\n    fn run(&mut self) {}\n}\n",
        );
        let step = fn_named(&items, "step");
        assert_eq!(step.impl_ty.as_deref(), Some("Foo"));
        assert_eq!(step.trait_name, None);
        assert!(step.in_container && step.is_pub);
        assert_eq!(step.calls.len(), 1);
        assert_eq!(step.calls[0].kind, CallKind::Method);
        let save = fn_named(&items, "save");
        assert_eq!(save.impl_ty.as_deref(), Some("Foo"));
        assert_eq!(save.trait_name.as_deref(), Some("Snapshot"));
        let run = fn_named(&items, "run");
        assert_eq!(run.impl_ty.as_deref(), Some("Pipeline"));
        assert_eq!(run.trait_name, None);
    }

    #[test]
    fn trait_default_methods_are_candidates() {
        let items = parse(
            "trait Queue {\n    fn drain(&mut self) { self.step(); }\n    fn step(&mut self);\n}\n",
        );
        let drain = fn_named(&items, "drain");
        assert!(drain.in_container);
        assert_eq!(drain.trait_name.as_deref(), Some("Queue"));
        let step = fn_named(&items, "step");
        assert!(step.calls.is_empty(), "bodiless signature has no calls");
    }

    #[test]
    fn alloc_taint_and_panic_facts() {
        let items = parse(
            "fn f(v: &[u32]) -> Vec<u32> {\n\
             let a = v.to_vec();\n\
             let b: Vec<u32> = v.iter().copied().collect::<Vec<u32>>();\n\
             let c = Vec::new();\n\
             let d = Box::new(1);\n\
             let e = format!(\"x\");\n\
             let f2 = std::env::var(\"X\");\n\
             let g = std::time::Instant::now();\n\
             let h = std::thread::current();\n\
             let i: std::collections::HashMap<u8, u8> = Default::default();\n\
             v.first().unwrap();\n\
             panic!(\"no\");\n\
             a\n}",
        );
        let f = fn_named(&items, "f");
        let allocs: Vec<&str> = f.allocs.iter().map(|a| a.what.as_str()).collect();
        assert_eq!(allocs, vec![".to_vec()", ".collect()", "Vec::new", "Box::new", "format!"]);
        let taints: Vec<&str> = f.taints.iter().map(|t| t.what.as_str()).collect();
        assert!(taints.contains(&"env::var"), "{taints:?}");
        assert!(taints.contains(&"std::time"), "{taints:?}");
        assert!(taints.contains(&"Instant"), "{taints:?}");
        assert!(taints.contains(&"thread::current"), "{taints:?}");
        assert!(taints.iter().any(|t| t.starts_with("HashMap")), "{taints:?}");
        let panics: Vec<&str> = f.panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(panics, vec![".unwrap()", "panic!"]);
    }

    #[test]
    fn hot_marker_and_test_mask() {
        let items = parse(
            "// chainiq-analyze: hot\n\
             fn tick() { helper(); }\n\
             fn helper() {}\n\
             #[cfg(test)]\n\
             mod tests {\n    fn t() { tick(); }\n}\n",
        );
        assert!(fn_named(&items, "tick").is_hot);
        assert!(!fn_named(&items, "helper").is_hot);
        assert!(fn_named(&items, "t").is_test);
    }

    #[test]
    fn use_aliases_resolve() {
        let items = parse(
            "use crate::queue::advance as adv;\n\
             use crate::wheel::{Wheel as W, spin};\n\
             fn f() { adv(); W::turn(); spin(); }\n",
        );
        let f = fn_named(&items, "f");
        assert_eq!(f.calls[0].name, "advance");
        assert_eq!(f.calls[1].kind, CallKind::Qualified("Wheel".to_string()));
        assert_eq!(f.calls[2].name, "spin");
    }

    #[test]
    fn nested_fns_and_fn_pointer_types() {
        let items = parse(
            "fn outer() {\n\
             fn inner() { leaf(); }\n\
             let g: fn(u32) -> u32 = std::convert::identity;\n\
             inner();\n\
             }\n",
        );
        let outer = fn_named(&items, "outer");
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
        let inner = fn_named(&items, "inner");
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].name, "leaf");
    }

    #[test]
    fn self_qualified_calls_resolve_to_impl_type() {
        let items = parse("impl Foo { fn a() { Self::b(); } fn b() {} }");
        let a = fn_named(&items, "a");
        assert_eq!(a.calls[0].kind, CallKind::Qualified("Foo".to_string()));
    }

    #[test]
    fn macros_and_struct_literals_are_not_calls() {
        let items = parse("fn f() { assert!(true); let _x = Foo { a: 1 }; let _y = Some(2); }\n");
        let f = fn_named(&items, "f");
        let names: Vec<&str> = f.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["Some"], "{names:?}");
    }

    #[test]
    fn turbofish_free_call() {
        let items = parse("fn f() { parse::<u64>(\"1\"); }\n");
        let f = fn_named(&items, "f");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].name, "parse");
    }
}
