//! A tiny hand-rolled Rust lexer — just enough token structure for the
//! analysis rules.
//!
//! This is deliberately *not* a parser: the rules only need to know
//! whether a name like `HashMap` appears in *code* (as opposed to a
//! string literal or a comment), on which line it appears, and what its
//! immediate neighbours are (`.` before, `(` or `!` after). What the
//! lexer must get right, therefore, is the *boundaries* of the regions
//! it skips or classifies:
//!
//! * line comments (including `///` and `//!` doc comments),
//! * block comments with nesting (`/* /* */ */`),
//! * cooked strings with escapes (`"say \"hi\""`),
//! * raw strings with hash fences (`r#"…"#`), byte, byte-raw, C-string
//!   (`c"…"`) and raw C-string (`cr#"…"#`) literals,
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * numeric literals (so `0.iter` inside `1.0e-5` cannot confuse a
//!   rule).
//!
//! Everything else is an identifier or a one-byte punctuation token.

/// Token classes produced by [`lex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// One punctuation byte (`::` is two `Punct(':')` tokens).
    Punct,
    /// String literal of any flavour: cooked, raw, byte, byte-raw.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// `// …` to end of line, doc comments included.
    LineComment,
    /// `/* … */`, nesting-aware.
    BlockComment,
}

/// One token: its class, source text, and 1-based line of its first
/// character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: &'a str,
    /// 1-based line number where the token starts.
    pub line: u32,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Unterminated constructs (a string or block comment
/// running to end of file) produce a final token covering the rest of
/// the input rather than an error — the rules degrade gracefully and
/// `cargo check` will have rejected such a file anyway.
#[must_use]
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.push(Token {
                    kind: TokKind::LineComment,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: TokKind::BlockComment,
                    text: &src[start..i],
                    line: start_line,
                });
            }
            b'"' => {
                i = cooked_string_end(b, i, &mut line);
                out.push(Token { kind: TokKind::Str, text: &src[start..i], line: start_line });
            }
            b'\'' => {
                // Lifetime iff the next char starts an identifier and the
                // char after that is not a closing quote ('a' is a char
                // literal, 'a is a lifetime).
                let next = b.get(i + 1).copied().unwrap_or(0);
                if is_ident_start(next) && b.get(i + 2) != Some(&b'\'') {
                    i += 2;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.push(Token {
                        kind: TokKind::Lifetime,
                        text: &src[start..i],
                        line: start_line,
                    });
                } else {
                    i = char_literal_end(b, i, &mut line);
                    out.push(Token { kind: TokKind::Char, text: &src[start..i], line: start_line });
                }
            }
            b'r' | b'b' | b'c' if raw_or_byte_prefix(b, i).is_some() => {
                let (kind, literal_start) =
                    raw_or_byte_prefix(b, i).expect("checked by the match guard");
                let end = match kind {
                    PrefixKind::Raw => raw_string_end(b, literal_start, &mut line),
                    PrefixKind::CookedStr => cooked_string_end(b, literal_start, &mut line),
                    PrefixKind::CharLit => char_literal_end(b, literal_start, &mut line),
                };
                i = end;
                let tok_kind =
                    if kind == PrefixKind::CharLit { TokKind::Char } else { TokKind::Str };
                out.push(Token { kind: tok_kind, text: &src[start..i], line: start_line });
            }
            _ if is_ident_start(c) => {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Token { kind: TokKind::Ident, text: &src[start..i], line: start_line });
            }
            _ if c.is_ascii_digit() => {
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if is_ident_continue(d) {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        // Consume the dot of `1.5` but not of `1..5` or
                        // `0.iter()`.
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        // Exponent sign of `1e-5`.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token { kind: TokKind::Num, text: &src[start..i], line: start_line });
            }
            _ => {
                i += 1;
                out.push(Token { kind: TokKind::Punct, text: &src[start..i], line: start_line });
            }
        }
    }
    out
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PrefixKind {
    /// `r"…"`, `r#"…"#`, `br"…"`, `br#"…"#`, `cr"…"`, `cr#"…"#` — starts
    /// at the first `#` or the quote.
    Raw,
    /// `b"…"` / `c"…"` — a cooked byte or C string, starts at the quote.
    CookedStr,
    /// `b'…'` — a byte literal, starts at the quote.
    CharLit,
}

/// If position `i` begins a raw/byte/C string or byte literal, returns
/// its kind and the index of the fence (`#` or quote). Returns `None`
/// for a plain identifier that merely starts with `r`, `b` or `c` (so
/// `crate`, whose first two bytes look like a raw-C-string prefix, stays
/// an identifier).
fn raw_or_byte_prefix(b: &[u8], i: usize) -> Option<(PrefixKind, usize)> {
    match b[i] {
        b'r' => match b.get(i + 1) {
            Some(&b'"') | Some(&b'#') if raw_fence_ok(b, i + 1) => Some((PrefixKind::Raw, i + 1)),
            _ => None,
        },
        b'b' | b'c' => match b.get(i + 1) {
            Some(&b'"') => Some((PrefixKind::CookedStr, i + 1)),
            Some(&b'\'') if b[i] == b'b' => Some((PrefixKind::CharLit, i + 1)),
            Some(&b'r') => match b.get(i + 2) {
                Some(&b'"') | Some(&b'#') if raw_fence_ok(b, i + 2) => {
                    Some((PrefixKind::Raw, i + 2))
                }
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

/// From a position at `#`* or `"`, checks the hashes are followed by a
/// quote (so `r#foo` raw identifiers are not mistaken for raw strings).
fn raw_fence_ok(b: &[u8], mut i: usize) -> bool {
    while b.get(i) == Some(&b'#') {
        i += 1;
    }
    b.get(i) == Some(&b'"')
}

/// Scans a cooked string starting at its opening quote; returns the index
/// one past the closing quote.
fn cooked_string_end(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            // Clamp: a backslash as the very last byte must not step past
            // the end (the returned index is used to slice the source).
            // An escaped newline (line continuation) still ends a line.
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans a char/byte literal starting at its opening quote; returns the
/// index one past the closing quote.
fn char_literal_end(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i = (i + 2).min(b.len());
            }
            b'\'' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Scans a raw string from its fence (`#`* then `"`); returns the index
/// one past the closing fence.
fn raw_string_end(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote, checked by raw_fence_ok
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        assert_eq!(
            kinds("let x = map.iter();"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Ident, "map"),
                (TokKind::Punct, "."),
                (TokKind::Ident, "iter"),
                (TokKind::Punct, "("),
                (TokKind::Punct, ")"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn string_content_is_not_code() {
        let toks = kinds(r#"let s = "HashMap::new() // not code";"#);
        assert!(toks.iter().all(|(_, t)| !t.contains("HashMap") || *t != "HashMap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let toks = kinds(r#"let s = "say \"HashMap\""; let t = 1;"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && *t == "1"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"let s = r#"a "quoted" HashMap"#; let n = 2;"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "HashMap"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && *t == "2"));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let toks = kinds(r#"let a = b"bytes"; let b2 = br"raw"; let c = b'x';"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn c_strings_are_strings_not_code() {
        // A HashMap inside a c-string must classify as Str, not scan as
        // code (it would false-positive D1 otherwise).
        let toks = kinds(r##"let a = c"HashMap bytes\0"; let b = cr#"raw "c" HashMap"#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2, "{toks:?}");
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "HashMap"));
    }

    #[test]
    fn cr_prefix_without_fence_is_an_identifier() {
        let toks = kinds("crate::foo(cr8, c)");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "crate"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "cr8"));
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Str));
    }

    #[test]
    fn c_followed_by_char_literal_is_not_a_byte_literal() {
        let toks = kinds("let c = 'x'; f(c, 'y')");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "c"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = kinds("let r#type = 1; br#ident");
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Str));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Ident).map(|(_, t)| *t).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::BlockComment).count(), 1);
    }

    #[test]
    fn line_comments_and_doc_comments() {
        let toks = kinds("/// doc with HashMap\n//! inner doc\nfn f() {} // trailing");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::LineComment).count(), 3);
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "HashMap"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; let q = '\\''; }");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn multiline_string_advances_line_numbers() {
        let toks = lex("let s = \"line one\nline two\";\nfn f() {}");
        let f = toks.iter().find(|t| t.text == "fn").expect("fn token present");
        assert_eq!(f.line, 3);
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let toks = kinds("let x = 1.0e-5; let y = 0..10; let z = 3.max(4);");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && *t == "1.0e-5"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && *t == "max"));
        assert!(toks.iter().filter(|(k, t)| *k == TokKind::Num && *t == "10").count() == 1);
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = lex("let s = \"never closed");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::Str));
    }

    #[test]
    fn escaped_newline_in_string_still_counts_the_line() {
        // Also found by the fuzz suite: `\` + newline (a line
        // continuation) was consumed by the escape fast-path without
        // bumping the line counter.
        let toks = lex("let s = \"a\\\nb\";\nfn f() {}");
        let f = toks.iter().find(|t| t.text == "fn").expect("fn token present");
        assert_eq!(f.line, 3);
    }

    #[test]
    fn trailing_backslash_in_unterminated_literals_does_not_panic() {
        // Found by the seeded fuzz suite: the escape fast-path used to
        // step two bytes past a backslash even at end of input, and the
        // resulting index sliced out of bounds.
        assert_eq!(lex("\"abc\\").last().map(|t| t.kind), Some(TokKind::Str));
        assert_eq!(lex("'\\").last().map(|t| t.kind), Some(TokKind::Char));
        assert_eq!(lex("b'\\").last().map(|t| t.kind), Some(TokKind::Char));
    }

    #[test]
    fn unterminated_block_comment_does_not_panic() {
        let toks = lex("a /* runs off the end");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::BlockComment));
    }
}
