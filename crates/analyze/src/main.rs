//! CLI for `chainiq-analyze`.
//!
//! ```text
//! cargo run -p chainiq-analyze --offline               # check, exit 1 on findings
//! cargo run -p chainiq-analyze --offline -- --write-baseline
//! cargo run -p chainiq-analyze --offline -- --root /path/to/workspace
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use chainiq_analyze::rules::RuleId;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
chainiq-analyze: enforce chainiq's determinism, hermeticity and panic-hygiene invariants

USAGE:
    chainiq-analyze [--root DIR] [--write-baseline]

OPTIONS:
    --root DIR         analyze the workspace at DIR (default: walk up from cwd)
    --write-baseline   regenerate analyze-baseline.toml from current panic-site counts
    --help             print this help

Diagnostics are `file:line: rule-id: message`. Suppress a finding inline with
`// chainiq-analyze: allow(RULE, reason)` — the reason is mandatory. Mark a
per-cycle kernel function with `// chainiq-analyze: hot` to opt it into P2.
Rules: D1 hash collections in sim crates; D2 wall clocks outside bench/devtest;
D3 env reads outside bench's knob.rs; H1 registry dependencies; P1 panic-site
budget (ratcheted via analyze-baseline.toml); P2 allocation (.clone()/Vec::new/
.collect()) in hot-marked kernel functions; S1 wall-clock/env reads inside
Snapshot impls (any crate); U1 missing #![forbid(unsafe_code)];
A0 malformed suppression; B1 stale baseline entry.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--write-baseline" => write_baseline = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory argument"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root =
        match root.or_else(discover_root) {
            Some(r) => r,
            None => return usage_error(
                "no workspace root found walking up from the current directory; pass --root DIR",
            ),
        };

    if write_baseline {
        return run_write_baseline(&root);
    }
    run_check(&root)
}

fn discover_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    chainiq_analyze::find_workspace_root(&cwd)
}

fn run_check(root: &std::path::Path) -> ExitCode {
    let report = match chainiq_analyze::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chainiq-analyze: error: {e}");
            return ExitCode::from(2);
        }
    };
    for note in &report.notes {
        println!("note: {note}");
    }
    if report.diags.is_empty() {
        println!(
            "chainiq-analyze: {} files clean ({} baselined panic sites)",
            report.files_scanned,
            report.fresh_counts.values().sum::<u32>()
        );
        return ExitCode::SUCCESS;
    }
    for d in &report.diags {
        println!("{d}");
    }
    println!(
        "chainiq-analyze: {} finding(s) across {} files",
        report.diags.len(),
        report.files_scanned
    );
    ExitCode::from(1)
}

fn run_write_baseline(root: &std::path::Path) -> ExitCode {
    // Refuse to ratchet while non-P1 rules are failing: --write-baseline
    // must not become a way to bless a new HashMap or registry dep.
    let report = match chainiq_analyze::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chainiq-analyze: error: {e}");
            return ExitCode::from(2);
        }
    };
    let blocking: Vec<_> =
        report.diags.iter().filter(|d| !matches!(d.rule, RuleId::P1 | RuleId::B1)).collect();
    if !blocking.is_empty() {
        for d in &blocking {
            println!("{d}");
        }
        eprintln!("chainiq-analyze: fix the findings above before writing a new baseline");
        return ExitCode::from(1);
    }
    match chainiq_analyze::write_baseline(root) {
        Ok(path) => {
            println!(
                "chainiq-analyze: wrote {} ({} panic sites across {} files)",
                path.display(),
                report.fresh_counts.values().sum::<u32>(),
                report.fresh_counts.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chainiq-analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("chainiq-analyze: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
