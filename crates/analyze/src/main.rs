//! CLI for `chainiq-analyze`.
//!
//! ```text
//! cargo run -p chainiq-analyze --offline               # check, exit 1 on findings
//! cargo run -p chainiq-analyze --offline -- --write-baseline
//! cargo run -p chainiq-analyze --offline -- --check-tight --json report.json
//! cargo run -p chainiq-analyze --offline -- --explain H2
//! cargo run -p chainiq-analyze --offline -- --check-perf NEW.json HIST.jsonl OLD.json
//! ```
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use chainiq_analyze::rules::RuleId;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
chainiq-analyze: enforce chainiq's determinism, hermeticity and panic-hygiene invariants

USAGE:
    chainiq-analyze [--root DIR] [--check-tight] [--json PATH]
    chainiq-analyze --write-baseline
    chainiq-analyze --explain RULE|all
    chainiq-analyze --check-perf EMITTED.json HISTORY.jsonl COMMITTED.json
    chainiq-analyze --check-serve EMITTED.json HISTORY.jsonl COMMITTED.json

OPTIONS:
    --root DIR         analyze the workspace at DIR (default: walk up from cwd)
    --write-baseline   regenerate analyze-baseline.toml (panic/hot-alloc/taint budgets)
    --check-tight      also fail when a budget exceeds the actual count (ratchet slack)
    --json PATH        additionally write the machine-readable report to PATH
    --explain RULE     print one rule's rationale and suppression recipe (`all`: every rule)
    --check-perf A B C perf-gate artifact consistency check (emitted, history, committed)
    --check-serve A B C same gate for the serve-suite storm artifacts
    --help             print this help

Diagnostics are `file:line: rule-id: message`. Suppress a finding inline with
`// chainiq-analyze: allow(RULE, reason)` — the reason is mandatory. Mark a
per-cycle kernel function with `// chainiq-analyze: hot` (opts into P2 and the
transitive H2), a kernel file with `// chainiq-analyze: hot-path` (P3).
Rules: D1 hash collections in sim crates; D2 wall clocks outside bench/devtest/serve;
D3 env reads outside bench's knob.rs; H1 registry dependencies; H2 allocation
reachable from hot functions (call-graph, ratcheted); P1 panic-site budget
(ratcheted); P2 allocation in hot fn bodies; P3 tree maps in hot-path files;
R1 panic-reachability report (informational); S1 wall-clock/env reads inside
Snapshot impls; T1 determinism taint reaching Snapshot/Stats/sim-public sinks
(ratcheted); U1 missing #![forbid(unsafe_code)]; A0 malformed suppression;
B1 stale baseline entry. `--explain RULE` has the full story.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut check_tight = false;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--write-baseline" => write_baseline = true,
            "--check-tight" => check_tight = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage_error("--json needs an output path argument"),
            },
            "--explain" => {
                return match args.next() {
                    Some(rule) => run_explain(&rule),
                    None => usage_error("--explain needs a rule id (or `all`)"),
                };
            }
            "--check-perf" | "--check-serve" => {
                let (a, b, c) = match (args.next(), args.next(), args.next()) {
                    (Some(a), Some(b), Some(c)) => (a, b, c),
                    _ => {
                        return usage_error(&format!(
                            "{arg} needs three paths: emitted.json history.jsonl committed.json",
                        ))
                    }
                };
                return run_check_artifacts(arg == "--check-serve", &a, &b, &c);
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory argument"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root =
        match root.or_else(discover_root) {
            Some(r) => r,
            None => return usage_error(
                "no workspace root found walking up from the current directory; pass --root DIR",
            ),
        };

    if write_baseline {
        return run_write_baseline(&root);
    }
    run_check(&root, check_tight, json_path.as_deref())
}

fn discover_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    chainiq_analyze::find_workspace_root(&cwd)
}

fn run_check(
    root: &std::path::Path,
    check_tight: bool,
    json_path: Option<&std::path::Path>,
) -> ExitCode {
    let report = match chainiq_analyze::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chainiq-analyze: error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(path, chainiq_analyze::json::render_report(&report)) {
            eprintln!("chainiq-analyze: error writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    for note in &report.notes {
        println!("note: {note}");
    }
    let mut failures = report.diags.len();
    for d in &report.diags {
        println!("{d}");
    }
    if check_tight {
        for s in &report.slack {
            println!("{s} (failing under --check-tight)");
        }
        failures += report.slack.len();
    } else {
        for s in &report.slack {
            println!("note: {s}");
        }
    }
    if failures == 0 {
        println!(
            "chainiq-analyze: {} files clean ({} baselined panic sites; call graph: {} fns, {} \
             edges, {} hot roots)",
            report.files_scanned,
            report.fresh_counts.values().sum::<u32>(),
            report.callgraph.functions,
            report.callgraph.edges,
            report.callgraph.hot_roots,
        );
        return ExitCode::SUCCESS;
    }
    println!("chainiq-analyze: {failures} finding(s) across {} files", report.files_scanned);
    ExitCode::from(1)
}

fn run_write_baseline(root: &std::path::Path) -> ExitCode {
    // Refuse to ratchet while non-ratcheted rules are failing:
    // --write-baseline must not become a way to bless a new HashMap or
    // registry dep.
    let report = match chainiq_analyze::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chainiq-analyze: error: {e}");
            return ExitCode::from(2);
        }
    };
    let blocking: Vec<_> = report
        .diags
        .iter()
        .filter(|d| !matches!(d.rule, RuleId::P1 | RuleId::B1 | RuleId::H2 | RuleId::T1))
        .collect();
    if !blocking.is_empty() {
        for d in &blocking {
            println!("{d}");
        }
        eprintln!("chainiq-analyze: fix the findings above before writing a new baseline");
        return ExitCode::from(1);
    }
    match chainiq_analyze::write_baseline(root) {
        Ok(path) => {
            println!(
                "chainiq-analyze: wrote {} ({} panic sites across {} files; {} hot-alloc, {} \
                 taint entries)",
                path.display(),
                report.fresh_counts.values().sum::<u32>(),
                report.fresh_counts.len(),
                report.hot_alloc_counts.len(),
                report.taint_counts.len(),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chainiq-analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_explain(rule: &str) -> ExitCode {
    if rule == "all" {
        for (i, r) in RuleId::ALL.iter().enumerate() {
            if i > 0 {
                println!();
            }
            println!("{}", r.explain());
        }
        return ExitCode::SUCCESS;
    }
    match RuleId::parse(rule) {
        Some(r) => {
            println!("{}", r.explain());
            ExitCode::SUCCESS
        }
        None => usage_error(&format!(
            "unknown rule `{rule}`; known rules: {}",
            RuleId::ALL.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ")
        )),
    }
}

fn run_check_artifacts(serve: bool, emitted: &str, history: &str, committed: &str) -> ExitCode {
    let read = |p: &str| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("chainiq-analyze: error reading {p}: {e}");
            None
        }
    };
    let (Some(e), Some(h), Some(c)) = (read(emitted), read(history), read(committed)) else {
        return ExitCode::from(2);
    };
    let checked = if serve {
        chainiq_analyze::perfcheck::check_serve(&e, &h, &c)
    } else {
        chainiq_analyze::perfcheck::check_perf(&e, &h, &c)
    };
    match checked {
        Ok(summary) => {
            println!("chainiq-analyze: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("chainiq-analyze: perf gate inconsistency: {e}");
            ExitCode::from(1)
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("chainiq-analyze: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
