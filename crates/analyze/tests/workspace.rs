//! End-to-end tests for `chainiq-analyze` over fixture workspaces built
//! in a temp directory, plus a dogfood run over the real repo.

use chainiq_analyze::rules::RuleId;
use chainiq_analyze::{analyze_workspace, write_baseline};
use std::fs;
use std::path::{Path, PathBuf};

/// A throwaway fixture workspace; the directory is removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("chainiq-analyze-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create fixture root");
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
            .expect("write root manifest");
        Fixture { root }
    }

    /// Adds a crate with a clean workspace-local manifest and the given
    /// `src/lib.rs` body (a `#![forbid(unsafe_code)]` header is added so
    /// fixtures don't all trip U1).
    fn add_crate(&self, name: &str, lib_rs: &str) -> &Fixture {
        self.add_crate_raw(
            name,
            "[package]\nname = \"x\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n[dependencies]\n",
            &format!("#![forbid(unsafe_code)]\n{lib_rs}"),
        )
    }

    fn add_crate_raw(&self, name: &str, manifest: &str, lib_rs: &str) -> &Fixture {
        let dir = self.root.join("crates").join(name);
        fs::create_dir_all(dir.join("src")).expect("create crate dirs");
        fs::write(dir.join("Cargo.toml"), manifest).expect("write crate manifest");
        fs::write(dir.join("src/lib.rs"), lib_rs).expect("write lib.rs");
        self
    }

    fn write(&self, rel: &str, content: &str) -> &Fixture {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("rel path has a parent")).expect("mkdir");
        fs::write(path, content).expect("write fixture file");
        self
    }

    fn rules_found(&self) -> Vec<RuleId> {
        analyze_workspace(&self.root).expect("analysis runs").diags.iter().map(|d| d.rule).collect()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

// ---- acceptance criterion: HashMap in crates/core → nonzero exit ----

#[test]
fn hashmap_iteration_in_core_fails() {
    let fx = Fixture::new("d1-core");
    fx.add_crate(
        "core",
        "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n",
    );
    let rules = fx.rules_found();
    assert!(rules.contains(&RuleId::D1), "expected D1, got {rules:?}");
}

#[test]
fn clean_btreemap_core_passes() {
    let fx = Fixture::new("d1-clean");
    fx.add_crate(
        "core",
        "use std::collections::BTreeMap;\n\
         pub fn f(m: &BTreeMap<u32, u32>) -> u32 { m.values().sum() }\n",
    );
    assert!(fx.rules_found().is_empty());
}

// ---- acceptance criterion: registry dependency → nonzero exit ----

#[test]
fn registry_dependency_fails() {
    let fx = Fixture::new("h1");
    fx.add_crate_raw(
        "core",
        "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = \"1.0\"\n",
        "#![forbid(unsafe_code)]\n",
    );
    let rules = fx.rules_found();
    assert!(rules.contains(&RuleId::H1), "expected H1, got {rules:?}");
}

#[test]
fn registry_dep_in_root_workspace_manifest_fails() {
    let fx = Fixture::new("h1-root");
    fx.write(
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.dependencies]\nrand = \"0.8\"\n",
    );
    fx.add_crate("core", "");
    assert!(fx.rules_found().contains(&RuleId::H1));
}

// ---- baseline ratchet ----

#[test]
fn panic_count_increase_fails_and_decrease_passes_with_note() {
    let fx = Fixture::new("ratchet");
    fx.add_crate("core", "pub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n");

    // No baseline yet: 1 site vs budget 0 → P1.
    let rules = fx.rules_found();
    assert!(rules.contains(&RuleId::P1), "expected P1, got {rules:?}");

    // Ratchet, then the same tree passes.
    write_baseline(&fx.root).expect("write baseline");
    assert!(fx.rules_found().is_empty());

    // One more unwrap → over budget → P1 again.
    fx.write(
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(o: Option<u8>) -> u8 { o.unwrap().max(o.unwrap()) }\n",
    );
    assert!(fx.rules_found().contains(&RuleId::P1));

    // Cleanup below budget → passes, and notes suggest re-ratcheting.
    fx.write(
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n",
    );
    let report = analyze_workspace(&fx.root).expect("analysis runs");
    assert!(report.diags.is_empty(), "{:?}", report.diags);
    assert!(
        report.slack.iter().any(|n| n.contains("write-baseline")),
        "decrease should suggest re-ratcheting: {:?}",
        report.slack
    );
}

#[test]
fn stale_baseline_entry_fails() {
    let fx = Fixture::new("stale");
    fx.add_crate("core", "");
    fx.write("analyze-baseline.toml", "[panic-budget]\n\"crates/core/src/deleted.rs\" = 3\n");
    let rules = fx.rules_found();
    assert_eq!(rules, vec![RuleId::B1], "stale entry must fail: {rules:?}");
}

#[test]
fn corrupt_baseline_is_an_error_not_a_pass() {
    let fx = Fixture::new("corrupt");
    fx.add_crate("core", "");
    fx.write("analyze-baseline.toml", "[panic-budget]\nnot a kv line\n");
    assert!(analyze_workspace(&fx.root).is_err());
}

// ---- other rules end to end ----

#[test]
fn wall_clock_and_env_read_fail_missing_forbid_fails() {
    let fx = Fixture::new("d2d3u1");
    fx.add_crate("cpu", "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n");
    fx.add_crate_raw(
        "mem",
        "[package]\nname = \"m\"\nversion = \"0.1.0\"\n\n[dependencies]\n",
        "pub fn knob() -> Option<String> { std::env::var(\"X\").ok() }\n", // no forbid header
    );
    let rules = fx.rules_found();
    assert!(rules.contains(&RuleId::D2), "{rules:?}");
    assert!(rules.contains(&RuleId::D3), "{rules:?}");
    assert!(rules.contains(&RuleId::U1), "{rules:?}");
}

#[test]
fn suppressed_findings_pass_reasonless_suppression_fails() {
    let fx = Fixture::new("suppress");
    fx.add_crate(
        "core",
        "// chainiq-analyze: allow(D1, lookup-only table, never iterated)\n\
         use std::collections::HashMap;\n\
         pub fn get(m: &HashMap<u32, u32>, k: u32) -> Option<u32> { m.get(&k).copied() } // chainiq-analyze: allow(D1, lookup-only)\n",
    );
    assert!(fx.rules_found().is_empty());

    let fx2 = Fixture::new("suppress-bad");
    fx2.add_crate("core", "// chainiq-analyze: allow(D1)\nuse std::collections::HashMap;\n");
    let rules = fx2.rules_found();
    assert!(rules.contains(&RuleId::A0), "{rules:?}");
    assert!(rules.contains(&RuleId::D1), "reasonless allow must not suppress: {rules:?}");
}

#[test]
fn write_baseline_refuses_while_rule_findings_exist() {
    // write_baseline itself writes unconditionally (library level); the
    // CLI gates it. At the library level, verify baselining P1 debt does
    // not mask a D1 finding on the next run.
    let fx = Fixture::new("no-bless");
    fx.add_crate(
        "core",
        "use std::collections::HashMap;\npub fn f(o: Option<u8>) -> u8 { o.unwrap() }\n",
    );
    write_baseline(&fx.root).expect("write baseline");
    let rules = fx.rules_found();
    assert!(rules.contains(&RuleId::D1), "baseline must not bless D1: {rules:?}");
    assert!(!rules.contains(&RuleId::P1), "P1 debt is baselined: {rules:?}");
}

// ---- flow rules end-to-end: H2 / T1 / R1 over fixture workspaces ----

#[test]
fn h2_transitive_allocation_fails_and_site_allow_passes() {
    let fx = Fixture::new("h2-e2e");
    fx.add_crate(
        "core",
        "// chainiq-analyze: hot\n\
         pub fn tick(v: &[u8]) -> usize { helper(v) }\n\
         fn helper(v: &[u8]) -> usize { v.to_vec().len() }\n",
    );
    let report = analyze_workspace(&fx.root).expect("analysis runs");
    let h2: Vec<_> = report.diags.iter().filter(|d| d.rule == RuleId::H2).collect();
    assert_eq!(h2.len(), 1, "{:?}", report.diags);
    assert!(
        h2[0].message.contains("(tick) →"),
        "witness path names the hot root: {}",
        h2[0].message
    );
    assert!(h2[0].message.contains("(helper)"), "witness path names the callee: {}", h2[0].message);

    // An allow(H2) at the allocation site clears the finding; the hot
    // fn's own body stays P2 territory (depth 0 is not H2's).
    fx.write(
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // chainiq-analyze: hot\n\
         pub fn tick(v: &[u8]) -> usize { helper(v) }\n\
         // chainiq-analyze: allow(H2, scratch copy measured cold in EXPERIMENTS.md)\n\
         fn helper(v: &[u8]) -> usize { v.to_vec().len() }\n",
    );
    assert!(fx.rules_found().is_empty(), "{:?}", fx.rules_found());
}

#[test]
fn t1_cross_crate_taint_fails_and_source_allow_kills_every_flow() {
    // A wall-clock read in `bench` (D2-exempt) reached by a public sim
    // fn in `core` through a path dependency: T1 at the sink, witness
    // path crossing the crate boundary.
    let taint = |marker: &str| {
        let fx = Fixture::new(&format!("t1-e2e{}", marker.len()));
        fx.add_crate_raw(
            "bench",
            "[package]\nname = \"bench\"\nversion = \"0.1.0\"\n\n[dependencies]\n",
            &format!(
                "#![forbid(unsafe_code)]\n\
                 pub fn now_ms() -> u128 {{\n\
                     {marker}std::time::Instant::now().elapsed().as_millis()\n\
                 }}\n"
            ),
        );
        fx.add_crate_raw(
            "core",
            "[package]\nname = \"core\"\nversion = \"0.1.0\"\n\n\
             [dependencies]\nbench = { path = \"../bench\" }\n",
            "#![forbid(unsafe_code)]\npub fn stamp() -> u128 { now_ms() }\n",
        );
        analyze_workspace(&fx.root).expect("analysis runs")
    };

    let report = taint("");
    let t1: Vec<_> = report.diags.iter().filter(|d| d.rule == RuleId::T1).collect();
    assert_eq!(t1.len(), 1, "{:?}", report.diags);
    assert!(t1[0].file.contains("core"), "T1 anchors at the sink: {}", t1[0].file);
    assert!(
        t1[0].message.contains("(now_ms) →"),
        "witness crosses into the source crate: {}",
        t1[0].message
    );
    assert!(
        t1[0].message.contains("at crates/bench/src/lib.rs"),
        "witness ends at the source read: {}",
        t1[0].message
    );

    // One allow(T1) at the source read kills every flow out of it.
    let report = taint("// chainiq-analyze: allow(T1, bench timing is outside the model)\n");
    assert!(report.diags.is_empty(), "{:?}", report.diags);
}

#[test]
fn t1_without_dependency_edge_does_not_link_same_named_fns() {
    // `core` has a fn named like `other`'s tainted pub fn but no dep on
    // it: the visibility filter must keep the crates apart.
    let fx = Fixture::new("t1-nodep");
    fx.add_crate_raw(
        "bench",
        "[package]\nname = \"bench\"\nversion = \"0.1.0\"\n\n[dependencies]\n",
        "#![forbid(unsafe_code)]\n\
         pub fn now_ms() -> u128 { std::time::Instant::now().elapsed().as_millis() }\n",
    );
    fx.add_crate_raw(
        "core",
        "[package]\nname = \"core\"\nversion = \"0.1.0\"\n\n[dependencies]\n",
        "#![forbid(unsafe_code)]\n\
         fn now_ms() -> u128 { 0 }\n\
         pub fn stamp() -> u128 { now_ms() }\n",
    );
    let report = analyze_workspace(&fx.root).expect("analysis runs");
    assert!(report.diags.is_empty(), "{:?}", report.diags);
}

#[test]
fn h2_ratchet_budget_covers_sites_and_surplus_is_slack() {
    let fx = Fixture::new("h2-ratchet");
    fx.add_crate(
        "core",
        "// chainiq-analyze: hot\n\
         pub fn tick(v: &[u8]) -> usize { helper(v) }\n\
         fn helper(v: &[u8]) -> usize { v.to_vec().len() }\n",
    );
    fx.write(
        "analyze-baseline.toml",
        "[panic-budget]\n[hot-alloc-budget]\n\"crates/core/src/lib.rs\" = 1\n[taint-budget]\n",
    );
    let report = analyze_workspace(&fx.root).expect("analysis runs");
    assert!(report.diags.is_empty(), "budgeted site must pass: {:?}", report.diags);

    // Budget above the actual count → slack, surfaced for --check-tight.
    fx.write(
        "analyze-baseline.toml",
        "[panic-budget]\n[hot-alloc-budget]\n\"crates/core/src/lib.rs\" = 2\n[taint-budget]\n",
    );
    let report = analyze_workspace(&fx.root).expect("analysis runs");
    assert!(report.diags.is_empty(), "{:?}", report.diags);
    assert!(
        report.slack.iter().any(|s| s.contains("crates/core/src/lib.rs")),
        "surplus budget must surface as slack: {:?}",
        report.slack
    );
}

#[test]
fn r1_reports_hot_reachable_panics_without_failing() {
    let fx = Fixture::new("r1-e2e");
    fx.add_crate(
        "core",
        "// chainiq-analyze: hot\n\
         pub fn tick(o: Option<u8>) -> u8 { pick(o) }\n\
         fn pick(o: Option<u8>) -> u8 { o.unwrap() }\n\
         fn cold(o: Option<u8>) -> u8 { o.unwrap_or(9) }\n",
    );
    fx.write("analyze-baseline.toml", "[panic-budget]\n\"crates/core/src/lib.rs\" = 1\n");
    let report = analyze_workspace(&fx.root).expect("analysis runs");
    assert!(report.diags.is_empty(), "R1 never fails a run: {:?}", report.diags);
    assert_eq!(report.panic_report.len(), 1, "{:?}", report.panic_report);
    let entry = &report.panic_report[0];
    assert!(entry.hot_reachable, "{entry:?}");
    assert!(
        entry.witness.as_deref().is_some_and(|w| w.contains("(tick)")),
        "witness leads from the hot root: {entry:?}"
    );
    assert!(report.notes.iter().any(|n| n.contains("R1")), "{:?}", report.notes);
}

// ---- dogfood: the real repo must be clean ----

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root")
        .to_path_buf();
    let report = analyze_workspace(&root).expect("analysis of the real repo runs");
    assert!(
        report.diags.is_empty(),
        "the committed workspace must be clean:\n{}",
        report.diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 50, "sanity: scanned {} files", report.files_scanned);
}
