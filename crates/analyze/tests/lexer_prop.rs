//! Seeded property tests for the hand-rolled lexer.
//!
//! Two attack angles:
//!
//! 1. **Token soup** — arbitrary byte strings over a structure-rich
//!    alphabet (quotes, slashes, hashes, raw-prefix letters, escapes).
//!    The lexer must never panic, and its output must *cover* the
//!    input: every non-whitespace byte belongs to exactly one token, in
//!    order, and each token's line number must equal the number of
//!    newlines before it — checked against an independent count.
//! 2. **Round-trip** — render a stream of known-kind fragments
//!    (identifiers, numbers, every string flavour, chars, lifetimes,
//!    comments) and assert the lexer recovers exactly that kind
//!    sequence.
//!
//! Everything is seeded through `chainiq-devtest`'s `prop_check!`, so a
//! failure prints a `CHAINIQ_PROP_SEED=…` reproduction line.

use chainiq_analyze::lexer::{lex, TokKind};
use chainiq_devtest::{prop_assert, prop_assert_eq, prop_check, Gen};

/// A byte from the soup alphabet: heavy on the characters that drive the
/// lexer's state machine.
fn soup_byte(g: &mut Gen) -> u8 {
    const ALPHABET: &[u8] = b"\"'/*#rbc\\\n aZ_019.:(){}<>!-+eE\t";
    ALPHABET[g.pick(ALPHABET.len())]
}

fn soup(g: &mut Gen) -> String {
    let bytes = g.vec(0..200, soup_byte);
    String::from_utf8(bytes).expect("alphabet is pure ASCII")
}

prop_check! {
    fn lexer_covers_arbitrary_soup_with_accurate_lines(g) {
        let src = soup(g);
        let toks = lex(&src);

        // Walk the source alongside the token stream: between tokens
        // only ASCII whitespace may appear, each token's text must match
        // the source exactly at its position, and its recorded line must
        // agree with a newline count the lexer had no hand in.
        let b = src.as_bytes();
        let mut p = 0usize;
        let mut line = 1u32;
        for t in &toks {
            while p < b.len() && b[p].is_ascii_whitespace() && !src[p..].starts_with(t.text) {
                if b[p] == b'\n' {
                    line += 1;
                }
                p += 1;
            }
            prop_assert!(
                src[p..].starts_with(t.text),
                "token {:?} does not match source at byte {} of {:?}",
                t,
                p,
                src
            );
            prop_assert_eq!(t.line, line, "line drift at byte {} of {:?}", p, src);
            line += t.text.matches('\n').count() as u32;
            p += t.text.len();
        }
        while p < b.len() {
            prop_assert!(
                b[p].is_ascii_whitespace(),
                "byte {} ({:?}) of {:?} is covered by no token",
                p,
                b[p] as char,
                src
            );
            p += 1;
        }
    }

    fn lexing_is_deterministic(g) {
        let src = soup(g);
        prop_assert_eq!(lex(&src), lex(&src));
    }
}

/// One renderable fragment with its expected token kind(s).
fn fragment(g: &mut Gen) -> (String, Vec<TokKind>) {
    // Inner content alphabets avoid the construct's own terminator so
    // the expected-kind model stays trivially right; the soup property
    // above covers the adversarial cases.
    let word = |g: &mut Gen, n: usize| -> String {
        let letters = b"azHM_";
        (0..g.usize(1..n)).map(|_| letters[g.pick(letters.len())] as char).collect()
    };
    match g.pick(10) {
        0 => (word(g, 8), vec![TokKind::Ident]),
        1 => {
            let n = ["0", "42", "1.5", "1.0e-5", "0x_ffu32", "10"][g.pick(6)];
            (n.to_string(), vec![TokKind::Num])
        }
        2 => (format!("\"{} \\\"{}\\\" \"", word(g, 6), word(g, 6)), vec![TokKind::Str]),
        3 => (format!("r#\"{} \"quoted\" {}\"#", word(g, 6), word(g, 6)), vec![TokKind::Str]),
        4 => {
            let flavors = ["b", "c", "br#", "cr#"];
            let f = flavors[g.pick(flavors.len())];
            let close = if f.ends_with('#') { "\"#" } else { "\"" };
            (format!("{f}\"{}{close}", word(g, 6)), vec![TokKind::Str])
        }
        5 => (format!("'{}'", (b'a' + g.u8(0..26)) as char), vec![TokKind::Char]),
        6 => (format!("b'{}'", (b'a' + g.u8(0..26)) as char), vec![TokKind::Char]),
        7 => (format!("'{}", word(g, 6)), vec![TokKind::Lifetime]),
        8 => (format!("// {} {}\n", word(g, 6), word(g, 6)), vec![TokKind::LineComment]),
        _ => (format!("/* {} /* {} */ */", word(g, 6), word(g, 6)), vec![TokKind::BlockComment]),
    }
}

prop_check! {
    fn rendered_fragment_streams_round_trip(g) {
        let mut src = String::new();
        let mut expected = Vec::new();
        for _ in 0..g.usize(0..30) {
            let (text, kinds) = fragment(g);
            src.push_str(&text);
            // Separate fragments so adjacency cannot fuse them (`c` +
            // `"…"` would otherwise lex as a C-string).
            src.push(if g.bool() { ' ' } else { '\n' });
            expected.extend(kinds);
        }
        let got: Vec<TokKind> = lex(&src).iter().map(|t| t.kind).collect();
        prop_assert_eq!(got, expected, "kind stream drift for {:?}", src);
    }

    fn string_flavors_are_opaque_to_code_scanning(g) {
        // Whatever identifier we smuggle into any string flavour, it
        // must never surface as an Ident token.
        let name = ["HashMap", "Instant", "unwrap", "env"][g.pick(4)];
        let wrapped = match g.pick(6) {
            0 => format!("\"{name}\""),
            1 => format!("r\"{name}\""),
            2 => format!("r#\"{name}\"#"),
            3 => format!("b\"{name}\""),
            4 => format!("c\"{name}\""),
            _ => format!("cr#\"{name}\"#"),
        };
        let src = format!("let x = {wrapped};");
        let toks = lex(&src);
        prop_assert!(
            !toks.iter().any(|t| t.kind == TokKind::Ident && t.text == name),
            "{:?} leaked out of {:?}",
            name,
            src
        );
        prop_assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }
}
