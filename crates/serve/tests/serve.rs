//! End-to-end tests over a loopback socket: single-flight dedupe,
//! byte-identity across worker counts and submission orders, typed
//! backpressure, and cache persistence across daemon restarts.

use std::net::SocketAddr;
use std::path::Path;

use chainiq::Bench;
use chainiq_bench::{ideal, segmented, PredictorConfig, RunSpec, DEFAULT_SEED};
use chainiq_serve::{spec_key, Client, Server, ServerConfig, Submission};

fn spec(bench: Bench, i: u64) -> RunSpec {
    let iq = if i % 2 == 0 { segmented(256, Some(64)) } else { ideal(128) };
    RunSpec::new(bench, iq, PredictorConfig::ALL[i as usize % 4], 2_000).with_seed(DEFAULT_SEED + i)
}

fn start(cache_dir: &Path, workers: usize, queue_depth: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers,
        queue_depth,
        cache_dir: cache_dir.to_path_buf(),
        cache_max_bytes: None,
        warmup_cache: None,
    })
    .expect("server starts on an ephemeral port")
}

fn submit_ok(addr: SocketAddr, specs: &[RunSpec]) -> Vec<Vec<u8>> {
    let mut client = Client::connect(addr).expect("connect");
    match client.submit(specs).expect("submit") {
        Submission::Done(reply) => {
            reply.decode(specs).expect("every image decodes against its spec");
            reply.images
        }
        Submission::Busy { queued, cap } => panic!("unexpected Busy {{ {queued}/{cap} }}"),
    }
}

/// N concurrent submissions of the same spec run exactly one
/// simulation; every caller gets byte-identical results.
#[test]
fn concurrent_identical_submissions_simulate_once() {
    let dir = tempdir("single-flight");
    let server = start(&dir, 2, 64);
    let addr = server.addr();
    let one = spec(Bench::Swim, 0);

    let images: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..8).map(|_| scope.spawn(move || submit_ok(addr, &[one]))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread")[0].clone()).collect()
    });

    for image in &images[1..] {
        assert_eq!(image, &images[0], "all callers must see identical bytes");
    }
    let stats = server.stop();
    assert_eq!(stats.simulated, 1, "single-flight: one simulation for 8 submissions");
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.hits + stats.joined, 7, "the other 7 joined in flight or hit the cache");
}

/// The same mixed grid, submitted in different orders against servers
/// with 1 and 4 workers, yields byte-identical per-spec results — and
/// those bytes match a local, in-process encoding of the same run.
#[test]
fn results_are_byte_identical_across_workers_and_order() {
    let grid: Vec<RunSpec> = [Bench::Swim, Bench::Mgrid, Bench::Twolf, Bench::Equake, Bench::Ammp]
        .iter()
        .enumerate()
        .map(|(i, &b)| spec(b, i as u64))
        .collect();
    let mut reversed = grid.clone();
    reversed.reverse();

    let dir1 = tempdir("ident-jobs1");
    let server1 = start(&dir1, 1, 64);
    let forward = submit_ok(server1.addr(), &grid);
    let _ = server1.stop();

    let dir4 = tempdir("ident-jobs4");
    let server4 = start(&dir4, 4, 64);
    let backward = submit_ok(server4.addr(), &reversed);
    let _ = server4.stop();

    for (i, s) in grid.iter().enumerate() {
        let j = reversed.iter().position(|r| spec_key(r) == spec_key(s)).unwrap();
        assert_eq!(
            forward[i],
            backward[j],
            "spec {} must serialize identically at 1 and 4 workers",
            s.label()
        );
        let local = chainiq_serve::proto::encode_result(spec_key(s), s.sample, &s.execute());
        assert_eq!(forward[i], local, "served bytes must match a local encode of {}", s.label());
    }
}

/// A grid that would overflow the pending queue is refused atomically
/// with a typed `Busy`; a grid that fits still succeeds afterwards.
#[test]
fn overflowing_grid_is_refused_with_busy() {
    let dir = tempdir("busy");
    let server = start(&dir, 1, 2);
    let mut client = Client::connect(server.addr()).expect("connect");

    let big: Vec<RunSpec> = (0..3).map(|i| spec(Bench::Applu, i)).collect();
    match client.submit(&big).expect("submit") {
        Submission::Busy { queued, cap } => {
            assert_eq!((queued, cap), (0, 2), "refused against an empty queue of depth 2");
        }
        Submission::Done(_) => panic!("3 fresh jobs must not fit a depth-2 queue"),
    }

    let ok: Vec<RunSpec> = big[..2].to_vec();
    match client.submit(&ok).expect("submit") {
        Submission::Done(reply) => assert_eq!(reply.images.len(), 2),
        Submission::Busy { .. } => panic!("2 fresh jobs fit a depth-2 queue"),
    }

    let stats = server.stop();
    assert_eq!(stats.busy, 1);
    assert_eq!(stats.simulated, 2, "the refused grid must leave no queued work behind");
}

/// The result cache persists: a restarted daemon over the same cache
/// directory answers everything from disk without simulating.
#[test]
fn cache_survives_daemon_restart() {
    let dir = tempdir("restart");
    let grid: Vec<RunSpec> = (0..3).map(|i| spec(Bench::Vortex, i)).collect();

    let first = start(&dir, 2, 64);
    let cold = submit_ok(first.addr(), &grid);
    assert_eq!(first.stop().simulated, 3);

    let second = start(&dir, 2, 64);
    let warm = submit_ok(second.addr(), &grid);
    let stats = second.stop();
    assert_eq!(stats.simulated, 0, "restart must answer entirely from the persisted cache");
    assert_eq!(stats.hits, 3);
    assert_eq!(warm, cold, "hit-path bytes must equal the original miss-path bytes");
}

/// Under a cache too small to hold every result, entries get evicted —
/// and re-simulation after eviction reproduces the original bytes.
#[test]
fn eviction_then_resimulation_reproduces_bytes() {
    let dir = tempdir("evict");
    let grid: Vec<RunSpec> = (0..4).map(|i| spec(Bench::Gcc, i)).collect();

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".parse().unwrap(),
        workers: 1,
        queue_depth: 64,
        cache_dir: dir.clone(),
        // Roughly one result image: every store evicts a predecessor.
        cache_max_bytes: Some(256),
        warmup_cache: None,
    })
    .expect("server starts");

    let first = submit_ok(server.addr(), &grid);
    let again = submit_ok(server.addr(), &grid);
    let stats = server.stop();
    assert!(stats.evicted > 0, "a 256-byte cache cannot hold 4 results");
    assert!(stats.simulated > 4, "evicted entries must be re-simulated on resubmission");
    assert_eq!(again, first, "re-simulated results must be byte-identical to the originals");
}

/// A fresh daemon reports zeroed counters, and a client speaking a
/// different protocol version is refused cleanly instead of hanging.
#[test]
fn stats_roundtrip_and_version_guard() {
    use chainiq_serve::proto::{read_frame, write_frame, ServerMsg};

    let dir = tempdir("stats");
    let server = start(&dir, 1, 64);
    let mut client = Client::connect(server.addr()).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.submitted, 0);
    drop(client);

    // A future-version Hello, hand-rolled on a raw socket: tag 0,
    // MAGIC, then a version this server does not speak.
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect raw");
    let mut hello = vec![0u8];
    hello.extend_from_slice(b"CHAINIQS");
    hello.extend_from_slice(&(chainiq_serve::PROTO_VERSION + 1).to_le_bytes());
    write_frame(&mut stream, &hello).expect("send future hello");
    match ServerMsg::decode(&read_frame(&mut stream).expect("refusal frame")) {
        Ok(ServerMsg::Error(msg)) => assert!(msg.contains("version"), "got: {msg}"),
        other => panic!("expected a version refusal, got {other:?}"),
    }

    let _ = server.stop();
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chainiq-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test cache dir");
    dir
}
